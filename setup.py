"""Setuptools shim.

The environment's setuptools lacks the ``wheel`` package that PEP 660
editable installs require, so ``pip install -e . --no-use-pep517`` falls
back to this legacy path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
