"""Columnar vectorized engine vs the object path on the paper's grid.

The tentpole claim of the columnar format (docs/guide.md, "Columnar
traces"): the exact all-capacities LRU ladder — every cache size of
the paper's Figure-2 axis answered from *one* byte-weighted
stack-distance pass — runs as numpy column operations over the mmap'd
trace, at least an order of magnitude faster than driving
per-``Request`` simulators, with bit-identical results.  This bench
writes a synthetic DFN-like workload as ``.rcol``, sweeps the paper's
0.5 %–4 % size range at ladder resolution (32 capacities — dense
sampling is precisely what the one-pass ladder makes affordable),
measures the vectorized ladder against the classic per-cell loop
single-core, reports the paper's mixed-policy grid as a secondary,
and writes the comparison to ``BENCH_columnar.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs single-round;
the equivalence assertions always hold.
"""

import json
import os
from dataclasses import replace
from pathlib import Path
from time import perf_counter

import pytest

from repro.simulation.engine import run_cells
from repro.simulation.simulator import CacheSimulator, SimulationConfig
from repro.simulation.sweep import (
    PAPER_SIZE_FRACTIONS,
    cache_sizes_from_fractions,
)
from repro.trace.columnar import open_columnar, write_columnar
from repro.types import Trace

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 1 if SMOKE else 3
#: Acceptance floor for the vectorized LRU ladder against the classic
#: per-cell object loop on the dense paper-range size axis (measured
#: ~20x on a shared box; one Fenwick pass serves every capacity, so
#: the margin grows with ladder resolution).
LADDER_SPEEDUP_FLOOR = 10.0
#: Ladder resolution: capacities spanning the paper's 0.5 %-4 % range.
LADDER_POINTS = 32
#: Mixed-policy grids still drive real policy objects per reference,
#: so the win there is decode/resolve amortization, not vectorization.
GRID_SPEEDUP_FLOOR = 1.0 if SMOKE else 1.1
#: Largest cacheable object.  Real proxies cap this (squid's
#: ``maximum_object_size``); here it also guarantees every paper-range
#: capacity admits every document — the no-bypass precondition both
#: engines require before answering LRU cells from a ladder.
MAX_OBJECT_BYTES = 200_000

MIXED_POLICIES = ("lru", "lfu-da", "gds(1)", "gd*(1)")


@pytest.fixture(scope="module")
def stable_trace(dfn_trace):
    """The DFN workload with stable, size-capped documents.

    The generator models modifications; pinning each document at its
    first-seen (capped) size makes every LRU cell ladder-eligible,
    which is the configuration the paper's Figure-2 grid sweeps.
    """
    first = {}
    requests = []
    for request in dfn_trace.requests:
        size = first.setdefault(request.url,
                                min(request.size, MAX_OBJECT_BYTES))
        requests.append(replace(
            request, size=size,
            transfer_size=min(request.transfer_size, size) or size))
    return Trace(requests, name="dfn-stable")


@pytest.fixture(scope="module")
def columnar_trace(stable_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-col") / "dfn.rcol"
    write_columnar(path, stable_trace.requests, name=stable_trace.name)
    with open_columnar(path) as trace:
        yield trace


def _configs(policies, capacities):
    return [SimulationConfig(capacity_bytes=capacity, policy=policy)
            for policy in policies for capacity in capacities]


def _time(fn, rounds=ROUNDS):
    best, value = float("inf"), None
    for _ in range(rounds):
        started = perf_counter()
        value = fn()
        best = min(best, perf_counter() - started)
    return best, value


def _flat(results):
    return [result.as_dict() for result in results]


def test_vectorized_ladder_floor(stable_trace, columnar_trace,
                                 bench_scale):
    low, high = min(PAPER_SIZE_FRACTIONS), max(PAPER_SIZE_FRACTIONS)
    step = (high - low) / (LADDER_POINTS - 1)
    capacities = cache_sizes_from_fractions(
        stable_trace, [low + step * i for i in range(LADDER_POINTS)])
    cells = len(capacities)
    name = stable_trace.name

    def object_percell():
        return [CacheSimulator(config).run(stable_trace,
                                           trace_name=name)
                for config in _configs(["lru"], capacities)]

    def columnar_ladder():
        return run_cells(columnar_trace, _configs(["lru"], capacities),
                         trace_name=name)

    # Warm both paths (imports, mmap pages, allocator) before timing.
    columnar_ladder()
    object_percell()

    object_s, object_results = _time(object_percell)
    ladder_s, ladder_results = _time(columnar_ladder)
    assert _flat(ladder_results) == _flat(object_results)
    ladder_speedup = object_s / ladder_s

    # Secondary: the paper's four-size mixed-policy grid, where only
    # decode and resolution vectorize (policies run per reference).
    grid_capacities = cache_sizes_from_fractions(stable_trace,
                                                 PAPER_SIZE_FRACTIONS)
    grid = _configs(MIXED_POLICIES, grid_capacities)

    def object_grid():
        return [CacheSimulator(config).run(stable_trace,
                                           trace_name=name)
                for config in _configs(MIXED_POLICIES, grid_capacities)]

    def columnar_grid():
        return run_cells(columnar_trace,
                         _configs(MIXED_POLICIES, grid_capacities),
                         trace_name=name)

    grid_object_s, grid_object_results = _time(object_grid)
    grid_columnar_s, grid_columnar_results = _time(columnar_grid)
    assert _flat(grid_columnar_results) == _flat(grid_object_results)
    grid_speedup = grid_object_s / grid_columnar_s

    n = len(stable_trace)
    report = {
        "bench": "columnar-engine",
        "scale": bench_scale,
        "smoke": SMOKE,
        "trace_requests": n,
        "capacities": list(capacities),
        "rounds": ROUNDS,
        "lru_ladder": {
            "cells": cells,
            "object_percell": {
                "seconds": round(object_s, 6),
                "requests_per_second": round(n * cells / object_s, 1)},
            "columnar_vectorized": {
                "seconds": round(ladder_s, 6),
                "requests_per_second": round(n * cells / ladder_s, 1)},
            "speedup": round(ladder_speedup, 3),
            "floor": LADDER_SPEEDUP_FLOOR,
        },
        "mixed_grid": {
            "cells": len(grid),
            "policies": list(MIXED_POLICIES),
            "object_percell": {
                "seconds": round(grid_object_s, 6)},
            "columnar_batched": {
                "seconds": round(grid_columnar_s, 6)},
            "speedup": round(grid_speedup, 3),
            "floor": GRID_SPEEDUP_FLOOR,
        },
    }
    Path("BENCH_columnar.json").write_text(json.dumps(report, indent=2)
                                           + "\n")
    assert ladder_speedup >= LADDER_SPEEDUP_FLOOR, report
    assert grid_speedup >= GRID_SPEEDUP_FLOOR, report
