"""Shared fixtures for the benchmark harness.

Two kinds of benchmarks live here:

* ``bench_table*.py`` / ``bench_fig*.py`` / ``bench_rtp.py`` — the
  paper-artifact regeneration benches: each times one experiment from
  :mod:`repro.experiments` end to end (single round; the point is the
  artifact plus a wall-clock number, not statistics).
* ``bench_policies.py`` / ``bench_components.py`` — micro-benchmarks of
  the hot paths (policy ops/second, parser and generator throughput).

Scale: benches default to the "tiny" experiment scale so the whole
suite completes in minutes; set ``REPRO_BENCH_SCALE=small`` (or
``medium``/``paper``) to rerun at larger scales.
"""

import os

import pytest

from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like, rtp_like

#: Experiment scale for the artifact benches.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def dfn_trace():
    """DFN-like trace for micro-benchmarks (fixed 1/256 scale)."""
    return generate_trace(dfn_like(scale=1.0 / 256.0))


@pytest.fixture(scope="session")
def rtp_trace():
    return generate_trace(rtp_like(scale=1.0 / 256.0))


def run_and_report(benchmark, experiment_id, scale):
    """Time one experiment once and attach its data to the benchmark."""
    from repro.experiments.runner import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(experiment_id,),
        kwargs={"scale": scale}, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["scale"] = scale
    return result
