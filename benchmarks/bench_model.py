"""Analytical model vs simulated sweep on a 16-point capacity curve.

The tentpole claim of :mod:`repro.model`: once a catalog is calibrated
(one streaming pass, reusable across every policy and capacity
question), a whole capacity→hit-rate curve costs microseconds per
point — versus the shared-pass engine, which still has to walk the
trace once and update one cache per grid cell.  This bench times a
16-point LRU curve both ways on the same DFN-like workload, asserts
the analytical side is ≥ 100× faster, and writes the comparison (plus
the curves' agreement) to ``BENCH_model.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs single-round;
the speedup floor holds in both modes — the gap is four orders of
magnitude, not a close race.
"""

import json
import os
from pathlib import Path
from time import perf_counter

from repro.model.catalog import catalog_from_trace
from repro.model.che import hit_rate_curve
from repro.simulation.engine import SimulationConfig, run_cells

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 1 if SMOKE else 3
N_POINTS = 16
#: The analytical curve must beat the equivalent simulated sweep by
#: at least this factor (calibration pass excluded: it is paid once
#: and amortized over every curve asked of the catalog).
SPEEDUP_FLOOR = 100.0


def _capacity_ladder(total_bytes: int) -> list:
    """16 log-spaced capacities from 0.1% to 40% of the working set."""
    low, high = 1e-3, 0.4
    ratio = (high / low) ** (1.0 / (N_POINTS - 1))
    return [max(int(total_bytes * low * ratio ** i), 1)
            for i in range(N_POINTS)]


def _best_seconds(fn, rounds=ROUNDS):
    best, value = float("inf"), None
    for _ in range(rounds):
        started = perf_counter()
        value = fn()
        best = min(best, perf_counter() - started)
    return best, value


def test_model_curve_vs_simulated_sweep(dfn_trace, bench_scale):
    total_bytes = dfn_trace.metadata().total_size_bytes
    capacities = _capacity_ladder(total_bytes)

    calibration_s, catalog = _best_seconds(
        lambda: catalog_from_trace(dfn_trace), rounds=1)

    # Warm both paths before timing.
    hit_rate_curve(catalog, capacities[:1])
    configs = [SimulationConfig(capacity_bytes=c, policy="lru")
               for c in capacities]
    run_cells(dfn_trace, configs[:1])

    model_s, predictions = _best_seconds(
        lambda: hit_rate_curve(catalog, capacities))
    simulated_s, results = _best_seconds(
        lambda: run_cells(dfn_trace, configs))

    errors = [abs(p.hit_rate - r.hit_rate())
              for p, r in zip(predictions, results)]
    speedup = simulated_s / model_s
    report = {
        "bench": "model-curve",
        "scale": bench_scale,
        "smoke": SMOKE,
        "points": N_POINTS,
        "trace_requests": len(dfn_trace),
        "catalog_documents": catalog.n_documents,
        "rounds": ROUNDS,
        "calibration_seconds": round(calibration_s, 6),
        "model_curve_seconds": round(model_s, 6),
        "model_microseconds_per_point":
            round(model_s / N_POINTS * 1e6, 3),
        "simulated_sweep_seconds": round(simulated_s, 6),
        "speedup": round(speedup, 1),
        "speedup_including_calibration":
            round(simulated_s / (model_s + calibration_s), 1),
        "speedup_floor": SPEEDUP_FLOOR,
        "hit_rate_mean_abs_error":
            round(sum(errors) / len(errors), 4),
        "hit_rate_max_abs_error": round(max(errors), 4),
    }
    Path("BENCH_model.json").write_text(json.dumps(report, indent=2)
                                        + "\n")
    assert speedup >= SPEEDUP_FLOOR, report
