"""Micro-benchmarks for the non-policy components.

Covers every stage a full experiment passes through: trace generation,
log parsing, preprocessing, characterization, and the β estimator.
"""

import io

import pytest

from repro.analysis.characterize import characterize, type_breakdown
from repro.analysis.correlation import estimate_beta
from repro.analysis.popularity import estimate_alpha
from repro.core.beta_estimator import OnlineBetaEstimator
from repro.trace.csvtrace import CsvTraceParser, dumps
from repro.trace.pipeline import TracePipeline
from repro.trace.squid import SquidParser, format_squid_line
from repro.trace.record import LogRecord
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like, uniform_profile
from repro.workload.temporal import PowerLawGapSampler


def test_trace_generation(benchmark):
    profile = dfn_like(scale=1.0 / 512.0)
    trace = benchmark.pedantic(generate_trace, args=(profile,),
                               rounds=3, iterations=1)
    benchmark.extra_info["requests"] = len(trace)
    assert len(trace) == profile.n_requests


@pytest.fixture(scope="module")
def squid_lines(dfn_trace):
    lines = []
    for request in dfn_trace.requests[:20_000]:
        record = LogRecord(
            timestamp=request.timestamp, url=request.url,
            status=request.status, size=request.transfer_size,
            content_type=request.content_type, client="10.0.0.1",
            elapsed_ms=5)
        lines.append(format_squid_line(record))
    return lines


def test_squid_parse_throughput(benchmark, squid_lines):
    def run():
        return sum(1 for _ in SquidParser().parse(squid_lines))

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    assert count == len(squid_lines)


def test_csv_round_trip_throughput(benchmark, dfn_trace):
    text = dumps(dfn_trace.requests[:20_000])

    def run():
        return sum(1 for _ in CsvTraceParser().parse(io.StringIO(text)))

    assert benchmark.pedantic(run, rounds=3, iterations=1) == 20_000


def test_preprocess_pipeline_throughput(benchmark, squid_lines):
    records = list(SquidParser().parse(squid_lines))

    def run():
        pipeline = TracePipeline()
        return sum(1 for _ in pipeline.process(records))

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_characterize_throughput(benchmark, dfn_trace):
    char = benchmark.pedantic(characterize, args=(dfn_trace,),
                              rounds=1, iterations=1)
    assert char.metadata.total_requests == len(dfn_trace)


def test_type_breakdown_throughput(benchmark, dfn_trace):
    breakdown = benchmark.pedantic(type_breakdown, args=(dfn_trace,),
                                   rounds=3, iterations=1)
    assert sum(breakdown.total_requests.values()) > 99.0


def test_alpha_estimation(benchmark, dfn_trace):
    alpha = benchmark.pedantic(estimate_alpha, args=(dfn_trace,),
                               rounds=3, iterations=1)
    assert alpha > 0


def test_beta_estimation(benchmark, dfn_trace):
    beta = benchmark.pedantic(
        estimate_beta, args=(dfn_trace,), kwargs={"max_refs": 100},
        rounds=3, iterations=1)
    assert beta > 0


def test_online_beta_estimator_throughput(benchmark):
    sampler = PowerLawGapSampler(0.5, 10 ** 5, seed=3)
    distances = sampler.sample_many(100_000).tolist()

    def run():
        estimator = OnlineBetaEstimator()
        observe = estimator.observe
        for distance in distances:
            observe(distance)
        return estimator.beta

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0
