"""Serving-layer throughput: the online cache under load replay.

The claim this bench enforces: wrapping the replacement policies in
the serving layer (per-shard lock, stats, thread handoff) keeps the
in-process replay path fast enough to drive real experiments — at
least 100k requests/second aggregate through a 4-shard LRU cache on
one box.  That floor is what makes replay-based validation affordable
in CI and what the ``serving_started``-to-``replay_finished`` numbers
in telemetry are judged against.

Also reported (not gated): per-policy single-shard rates — the cost
of the lock + policy structures per request — and replay latency
quantiles from the sampled histogram.  Writes ``BENCH_serving.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs single-round on
the session trace; the throughput floor still applies.
"""

import json
import os
from pathlib import Path
from time import perf_counter

from repro.serving.cache import ServedCache
from repro.serving.replay import ReplayConfig, replay

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 1 if SMOKE else 3

#: Aggregate replay floor (req/s) through 4 shards, one thread per
#: shard.  Measured ~250-350k on shared CI boxes; 100k leaves margin
#: for noisy neighbours while still catching a lock-granularity or
#: hot-path regression of 2.5x+.
REPLAY_FLOOR_RPS = 100_000.0

#: Single-shard, single-thread policy-op floor (req/s).  A request is
#: one lock acquire + dict lookup + policy touch; even heap policies
#: clear this by a wide margin.
SINGLE_SHARD_FLOOR_RPS = 100_000.0

SINGLE_SHARD_POLICIES = ("lru", "lfu-da", "gds(1)", "gdsf(1)")

#: Aggregate capacity as a fraction of the workload's distinct bytes
#: (the paper's mid-range cache size).
SIZE_FRACTION = 0.02


def _capacity(trace) -> int:
    unique = {r.url: r.size for r in trace.requests}
    return max(int(sum(unique.values()) * SIZE_FRACTION), 4)


def test_serving_replay_floor(dfn_trace, bench_scale):
    capacity = _capacity(dfn_trace)
    config = ReplayConfig(capacity_bytes=capacity, n_shards=4)

    best = None
    for _ in range(ROUNDS):
        report = replay(dfn_trace, config)
        if best is None or (report.requests_per_second
                            > best.requests_per_second):
            best = report

    # Secondary: raw single-shard request rate per policy (no
    # threads, no ring — the per-request lock + policy cost).
    single_shard = {}
    for policy in SINGLE_SHARD_POLICIES:
        rate = 0.0
        for _ in range(ROUNDS):
            cache = ServedCache(capacity // 4, policy)
            started = perf_counter()
            for request in dfn_trace.requests:
                cache.request(request.url, request.size,
                              request.doc_type)
            elapsed = perf_counter() - started
            rate = max(rate, len(dfn_trace.requests) / elapsed)
        single_shard[policy] = round(rate, 1)

    payload = {
        "bench": "serving",
        "scale": bench_scale,
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "trace_requests": best.requests,
        "capacity_bytes": capacity,
        "replay": {
            "shards": best.n_shards,
            "policy": best.policy,
            "requests_per_second": round(best.requests_per_second, 1),
            "hit_rate": round(best.hit_rate, 6),
            "latency_quantiles_us": {
                name: round(value * 1e6, 3)
                for name, value in best.latency_quantiles.items()},
            "latency_samples": best.latency_samples,
            "floor_requests_per_second": REPLAY_FLOOR_RPS,
        },
        "single_shard_requests_per_second": single_shard,
        "single_shard_floor": SINGLE_SHARD_FLOOR_RPS,
    }
    Path("BENCH_serving.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert best.requests_per_second >= REPLAY_FLOOR_RPS, (
        f"sharded replay ran {best.requests_per_second:,.0f} req/s, "
        f"floor is {REPLAY_FLOOR_RPS:,.0f}")
    for policy, rate in single_shard.items():
        assert rate >= SINGLE_SHARD_FLOOR_RPS, (
            f"{policy} served {rate:,.0f} req/s single-shard, floor "
            f"is {SINGLE_SHARD_FLOOR_RPS:,.0f}")
