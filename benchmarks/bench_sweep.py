"""Per-cell vs shared-pass sweep engine on the paper's figure grid.

The tentpole claim of the shared-pass engine (docs/guide.md,
"Architecture: the shared-pass engine"): a sweep over a trace *file*
pays the trace tax — decode, preprocessing, size resolution — once per
cell under the per-cell engine (``O(cells × requests)`` decode work)
but once per *pass* under the batched engine, so the paper's 4-policy
× 4-size grid finishes at least twice as fast at the same worker
count — with bit-identical results.  This bench writes a synthetic
DFN-like workload to a canonical trace file, measures both engines
head to head (file-backed and in-memory), and writes the comparison
to ``BENCH_sweep.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs single-round
and drops the speedup floor; the equivalence assertions always hold.
"""

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.simulation.sweep import (
    PAPER_SIZE_FRACTIONS,
    cache_sizes_from_fractions,
    run_sweep,
)
from repro.trace.writer import write_trace

#: The constant-cost policy set of the paper's DFN figures (Figure 2).
POLICIES = ("lru", "lfu-da", "gds(1)", "gd*(1)")
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 1 if SMOKE else 3
#: Acceptance floor for the shared-pass engine on the file-backed
#: paper grid.  Loose in smoke mode: shared CI boxes are noisy and the
#: tiny smoke trace underweights the per-cell decode tax.
SPEEDUP_FLOOR = 1.2 if SMOKE else 2.0


@pytest.fixture(scope="module")
def capacities(dfn_trace):
    return cache_sizes_from_fractions(dfn_trace, PAPER_SIZE_FRACTIONS)


@pytest.fixture(scope="module")
def trace_file(dfn_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-sweep") / "dfn.csv"
    write_trace(path, dfn_trace.requests)
    return path


def _best_seconds(source, capacities, engine, rounds=ROUNDS):
    """Best-of-N wall clock; also returns the last sweep for checks."""
    best, sweep = float("inf"), None
    for _ in range(rounds):
        started = perf_counter()
        sweep = run_sweep(source, POLICIES, capacities, engine=engine)
        best = min(best, perf_counter() - started)
    return best, sweep


def test_engines_head_to_head(dfn_trace, capacities, trace_file,
                              bench_scale):
    # Warm both code paths before timing either side.
    warm_caps = capacities[:1]
    run_sweep(trace_file, POLICIES[:1], warm_caps)
    run_sweep(trace_file, POLICIES[:1], warm_caps, engine="batched")

    cells = len(POLICIES) * len(capacities)
    requests = len(dfn_trace) * cells

    # The paper workflow: sweep a trace file with bounded memory.
    file_percell_s, percell = _best_seconds(trace_file, capacities,
                                            "percell")
    file_batched_s, batched = _best_seconds(trace_file, capacities,
                                            "batched")
    # The speedup is only meaningful because results are identical.
    assert batched.as_dict() == percell.as_dict()

    # Secondary: the same grid over an already-materialized trace,
    # where only iteration/resolution (not decoding) is amortized.
    mem_percell_s, mem_percell = _best_seconds(dfn_trace, capacities,
                                               "percell")
    mem_batched_s, mem_batched = _best_seconds(dfn_trace, capacities,
                                               "batched")
    assert mem_batched.as_dict() == mem_percell.as_dict()

    speedup = file_percell_s / file_batched_s
    report = {
        "bench": "sweep-engine",
        "scale": bench_scale,
        "smoke": SMOKE,
        "policies": list(POLICIES),
        "capacities": list(capacities),
        "cells": cells,
        "trace_requests": len(dfn_trace),
        "rounds": ROUNDS,
        "file_backed": {
            "percell": {
                "seconds": round(file_percell_s, 6),
                "requests_per_second":
                    round(requests / file_percell_s, 1)},
            "batched": {
                "seconds": round(file_batched_s, 6),
                "requests_per_second":
                    round(requests / file_batched_s, 1)},
            "speedup": round(speedup, 3),
        },
        "in_memory": {
            "percell": {
                "seconds": round(mem_percell_s, 6),
                "requests_per_second":
                    round(requests / mem_percell_s, 1)},
            "batched": {
                "seconds": round(mem_batched_s, 6),
                "requests_per_second":
                    round(requests / mem_batched_s, 1)},
            "speedup": round(mem_percell_s / mem_batched_s, 3),
        },
        "speedup_floor": SPEEDUP_FLOOR,
    }
    Path("BENCH_sweep.json").write_text(json.dumps(report, indent=2)
                                        + "\n")
    assert speedup >= SPEEDUP_FLOOR, report
