"""Regenerates Figure 1: per-type cache occupancy of the GD* family."""

from benchmarks.conftest import run_and_report


def test_fig1(benchmark, bench_scale):
    report = run_and_report(benchmark, "fig1", bench_scale)
    print("\n" + report.text)
    constant = report.data["policies"]["gd*(1)"]
    packet = report.data["policies"]["gd*(p)"]
    # The adaptability contrast: the packet-cost variant retains far
    # more multimedia+application bytes than the constant-cost one.
    constant_large = (constant["multimedia"]["mean_byte_fraction"]
                      + constant["application"]["mean_byte_fraction"])
    packet_large = (packet["multimedia"]["mean_byte_fraction"]
                    + packet["application"]["mean_byte_fraction"])
    assert packet_large > constant_large
    assert len(report.artifacts) == 8
