"""Regenerates Figure 2: DFN-like, constant cost, per-type HR/BHR sweeps."""

from benchmarks.conftest import run_and_report


def test_fig2(benchmark, bench_scale):
    report = run_and_report(benchmark, "fig2", bench_scale)
    print("\n" + report.text)
    hit_rate = report.data["hit_rate"]
    # Paper shape: GD*(1) tops overall hit rate; large caches beat small.
    at_largest = {policy: rates[-1]
                  for policy, rates in hit_rate["overall"].items()}
    assert max(at_largest, key=at_largest.get) == "gd*(1)"
    for rates in hit_rate["overall"].values():
        assert rates[-1] >= rates[0]
    assert len(report.artifacts) == 10  # 5 panels x {hr, bhr}
