"""Ablation benches for the design choices DESIGN.md calls out.

* β estimation: online vs pinned values (GD*'s adaptivity knob);
* warm-up fraction: sensitivity of reported rates to the 10 % rule;
* modification rule: the paper's 5 %-delta rule vs Jin & Bestavros'
  any-change rule — the paper's stated source of its one disagreement
  with the GD* paper.
"""

from benchmarks.conftest import run_and_report


def test_ablation_beta(benchmark, bench_scale):
    report = run_and_report(benchmark, "ablation-beta", bench_scale)
    print("\n" + report.text)
    assert report.data["beta=1.0"]["final_beta"] == 1.0
    # Every arm produces a sane hit rate.
    for arm in report.data.values():
        assert 0.0 <= arm["hit_rate"] <= 1.0


def test_ablation_warmup(benchmark, bench_scale):
    report = run_and_report(benchmark, "ablation-warmup", bench_scale)
    print("\n" + report.text)
    # Counting cold-start misses (warm-up 0) can only lower the
    # reported hit rate relative to the paper's 10 % warm-up.
    assert report.data["lru@0.0"]["hit_rate"] <= \
        report.data["lru@0.1"]["hit_rate"] + 0.02


def test_ablation_modification(benchmark, bench_scale):
    report = run_and_report(benchmark, "ablation-modification",
                            bench_scale)
    print("\n" + report.text)
    # The any-change rule manufactures invalidations out of interrupted
    # transfers; the paper's rule does not.
    assert report.data["gds(1)/any-change"]["invalidations"] > \
        report.data["gds(1)/paper-rule"]["invalidations"]
