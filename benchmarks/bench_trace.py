"""Overhead of span tracing on a shared-pass sweep.

The contract (docs/guide.md, "Watching and comparing runs"): tracing
is a zero-overhead no-op until enabled, and even *enabled* it stays
within 1% of the untraced floor on a sweep, because spans wrap phases
and cells — never individual requests — so a whole grid emits a few
hundred events at most.  This bench measures the paper's 4-policy ×
4-size grid untraced vs traced (spans enabled, events appended to a
real ``events.jsonl``) and writes the comparison to
``BENCH_trace.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs fewer rounds
and loosens the floor; shared CI boxes are noisy at the 1% level.
"""

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.observability.events import EventLog, set_event_sink
from repro.observability.trace import disable_tracing, enable_tracing
from repro.simulation.sweep import (
    PAPER_SIZE_FRACTIONS,
    cache_sizes_from_fractions,
    run_sweep,
)

POLICIES = ("lru", "lfu-da", "gds(1)", "gd*(1)")
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 3 if SMOKE else 7
#: Span emission must stay within this of the untraced floor.  The
#: acceptance target is 1%; smoke mode loosens it because a tiny
#: trace finishes in milliseconds where scheduler jitter dominates.
OVERHEAD_FLOOR_PCT = 10.0 if SMOKE else 1.0


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    set_event_sink(None)
    disable_tracing()


@pytest.fixture(scope="module")
def capacities(dfn_trace):
    return cache_sizes_from_fractions(dfn_trace, PAPER_SIZE_FRACTIONS)


def _best_seconds(trace, capacities, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        run_sweep(trace, POLICIES, capacities, engine="batched")
        best = min(best, perf_counter() - started)
    return best


def test_span_overhead_report(dfn_trace, capacities, bench_scale,
                              tmp_path):
    cells = len(POLICIES) * len(capacities)
    run_sweep(dfn_trace, POLICIES[:1], capacities[:1],
              engine="batched")  # warm before either side

    disable_tracing()
    set_event_sink(None)
    untraced = _best_seconds(dfn_trace, capacities)

    log = EventLog(tmp_path / "events.jsonl")
    set_event_sink(log)
    enable_tracing()
    traced = _best_seconds(dfn_trace, capacities)
    set_event_sink(None)
    disable_tracing()
    log.close()

    span_events = sum(1 for line in
                      (tmp_path / "events.jsonl").open(encoding="utf-8")
                      if '"span"' in line)
    assert span_events > 0, "traced sweep emitted no span events"

    overhead_pct = 100.0 * (traced - untraced) / untraced
    requests = len(dfn_trace) * cells
    report = {
        "bench": "trace-spans",
        "scale": bench_scale,
        "smoke": SMOKE,
        "policies": list(POLICIES),
        "cells": cells,
        "trace_requests": len(dfn_trace),
        "rounds": ROUNDS,
        "untraced": {"seconds": round(untraced, 6),
                     "requests_per_second":
                         round(requests / untraced, 1)},
        "traced": {"seconds": round(traced, 6),
                   "requests_per_second":
                       round(requests / traced, 1),
                   "span_events": span_events},
        "overhead_pct": round(overhead_pct, 3),
        "overhead_floor_pct": OVERHEAD_FLOOR_PCT,
    }
    Path("BENCH_trace.json").write_text(json.dumps(report, indent=2)
                                        + "\n")
    assert overhead_pct < OVERHEAD_FLOOR_PCT, report
