"""Regenerates the Section 4.4 RTP summaries (both cost models)."""

from benchmarks.conftest import run_and_report


def test_rtp_constant_cost(benchmark, bench_scale):
    report = run_and_report(benchmark, "rtp-const", bench_scale)
    print("\n" + report.text)
    hit_rate = report.data["hit_rate"]["overall"]
    # Same ordering as DFN: GD*(1) leads overall hit rate.
    at_largest = {policy: rates[-1] for policy, rates in hit_rate.items()}
    assert at_largest["gd*(1)"] >= at_largest["lru"]


def test_rtp_packet_cost(benchmark, bench_scale):
    report = run_and_report(benchmark, "rtp-packet", bench_scale)
    print("\n" + report.text)
    byte_rate = report.data["byte_hit_rate"]["overall"]
    at_largest = {policy: rates[-1] for policy, rates in byte_rate.items()}
    # All schemes produce sane byte hit rates on the RTP-like mix.
    assert all(0.0 <= value <= 1.0 for value in at_largest.values())
