"""Regenerates Table 1: aggregate properties of both traces."""

from benchmarks.conftest import run_and_report


def test_table1(benchmark, bench_scale):
    report = run_and_report(benchmark, "table1", bench_scale)
    print("\n" + report.text)
    assert report.data["DFN-like"]["total_requests"] > 0
    assert report.data["RTP-like"]["distinct_documents"] > 0
