"""Durable-service overhead vs direct in-process execution.

The service wraps every trial in durability machinery — lease acquire
/ heartbeat / release, an fsync'd CRC'd store append, and a done
marker — and the acceptance claim (docs/guide.md, "Running a standing
experiment program") is that all of it is noise next to the simulation
itself: under 2% of direct execution time for the benched grid.

Simulation wall clock jitters by several percent run to run, which
would drown a 2% gate in noise if we compared end-to-end times, so
the gate isolates the machinery: the same grid is drained through the
full queue+store pipeline with the executor stubbed to a constant,
and that pure-machinery time is divided by the direct execution time.
The end-to-end comparison is measured and reported alongside, and
everything lands in ``BENCH_service.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs single-round
and loosens the ceiling: shared CI boxes have noisy fsync latency,
and the tiny smoke grid underweights the simulation work the
overhead is amortized against.
"""

import json
import os
from pathlib import Path
from time import perf_counter

import repro.experiments.service as service_module
from repro.experiments.service import (
    TrialSpec,
    enqueue_grid,
    execute_trial,
    open_service,
    work,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 1 if SMOKE else 3
#: Acceptance ceiling: machinery seconds / direct-execution seconds.
OVERHEAD_CEILING = 0.10 if SMOKE else 0.02

#: The benched grid: one trace at a bench-friendly scale, the paper's
#: constant-cost DFN policies, three seeded replicas.
SCALE = 1.0 / 256.0
POLICIES = ("lru", "lfu-da", "gds(1)", "gd*(1)")
SIZE_FRACTIONS = (0.01,)
SEEDS = (42, 1042, 2042)


def _specs():
    return [TrialSpec(trace="dfn", scale=SCALE, policy=policy,
                      size_fraction=fraction, seed=seed)
            for policy in POLICIES
            for fraction in SIZE_FRACTIONS
            for seed in SEEDS]


def _direct_seconds(specs):
    started = perf_counter()
    for spec in specs:
        execute_trial(spec)
    return perf_counter() - started


def _service_seconds(root, n_trials):
    queue, store = open_service(root)
    enqueue_grid(queue, traces=["dfn"], scale=SCALE,
                 policies=list(POLICIES),
                 size_fractions=list(SIZE_FRACTIONS),
                 seeds=list(SEEDS))
    started = perf_counter()
    executed = work(queue, store, git_hash="bench")
    elapsed = perf_counter() - started
    assert executed == n_trials
    return elapsed


def test_service_overhead(tmp_path, monkeypatch):
    specs = _specs()
    # Warm the per-process trace cache so neither side pays generation.
    for spec in specs:
        execute_trial(spec)

    direct_s = min(_direct_seconds(specs) for _ in range(ROUNDS))
    end_to_end_s = min(
        _service_seconds(tmp_path / f"svc-{i}", len(specs))
        for i in range(ROUNDS))

    # The gated number: claim + heartbeat + append + marker + release
    # with execution stubbed out, i.e. the durability tax alone.
    monkeypatch.setattr(
        service_module, "execute_trial",
        lambda spec: {"spec": spec.as_dict(), "capacity_bytes": 1,
                      "hit_rate": 0.5, "byte_hit_rate": 0.5})
    machinery_s = min(
        _service_seconds(tmp_path / f"mach-{i}", len(specs))
        for i in range(ROUNDS))

    overhead = machinery_s / direct_s
    report = {
        "bench": "service-overhead",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "trials": len(specs),
        "scale": SCALE,
        "policies": list(POLICIES),
        "direct_seconds": round(direct_s, 6),
        "service_seconds": round(end_to_end_s, 6),
        "machinery_seconds": round(machinery_s, 6),
        "seconds_per_trial_direct": round(direct_s / len(specs), 6),
        "seconds_per_trial_machinery":
            round(machinery_s / len(specs), 6),
        "end_to_end_overhead":
            round(end_to_end_s / direct_s - 1.0, 4),
        "overhead": round(overhead, 4),
        "overhead_ceiling": OVERHEAD_CEILING,
    }
    Path("BENCH_service.json").write_text(json.dumps(report, indent=2)
                                          + "\n")
    assert overhead <= OVERHEAD_CEILING, report
