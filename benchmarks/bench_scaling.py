"""Scaling benches: throughput as the workload grows.

Backs the "paper-scale budget" section of EXPERIMENTS.md: simulation
throughput should stay near-flat as the trace grows (per-request work
is O(log resident-documents)), so paper-scale runtime is predictable
by linear extrapolation from these numbers.
"""

import pytest

from repro.core.cache import Cache
from repro.core.registry import make_policy
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like

SCALES = {"1/512": 1 / 512, "1/128": 1 / 128}


@pytest.mark.parametrize("label", list(SCALES))
@pytest.mark.parametrize("policy_name", ["lru", "gd*(1)"])
def test_simulation_scaling(benchmark, label, policy_name):
    trace = generate_trace(dfn_like(scale=SCALES[label]))
    capacity = int(trace.metadata().total_size_bytes * 0.02)
    workload = [(r.url, r.size, r.doc_type) for r in trace.requests]

    def run():
        cache = Cache(capacity, make_policy(policy_name))
        reference = cache.reference
        for url, size, doc_type in workload:
            reference(url, size, doc_type)
        return cache.hits

    hits = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["requests"] = len(workload)
    benchmark.extra_info["requests_per_second_hint"] = (
        round(len(workload) / benchmark.stats.stats.mean))
    assert hits > 0


def test_generation_scaling(benchmark):
    profile = dfn_like(scale=1 / 128)
    trace = benchmark.pedantic(generate_trace, args=(profile,),
                               rounds=2, iterations=1)
    benchmark.extra_info["requests"] = len(trace)
    assert len(trace) == profile.n_requests
