"""Regenerates Table 2: DFN-like trace type breakdown."""

import pytest

from benchmarks.conftest import run_and_report


def test_table2(benchmark, bench_scale):
    report = run_and_report(benchmark, "table2", bench_scale)
    print("\n" + report.text)
    requests = report.data["total_requests"]
    # Paper: images + HTML carry ~95 % of requests.
    assert requests["image"] + requests["html"] > 85.0
    assert sum(requests.values()) == pytest.approx(100.0)
