"""Regenerates Figure 3: DFN-like, packet cost, per-type HR/BHR sweeps."""

from benchmarks.conftest import run_and_report


def test_fig3(benchmark, bench_scale):
    report = run_and_report(benchmark, "fig3", bench_scale)
    print("\n" + report.text)
    hit_rate = report.data["hit_rate"]
    at_largest = {policy: rates[-1]
                  for policy, rates in hit_rate["overall"].items()}
    # Paper shape: GD*(P) tops overall hit rate under packet cost.
    assert max(at_largest, key=at_largest.get) == "gd*(p)"
    assert len(report.artifacts) == 10
