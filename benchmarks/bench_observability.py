"""Overhead of the observability layer on the simulator hot path.

The contract (docs/guide.md, "Observability"): instrumentation costs
essentially nothing until it is switched on, because the simulator
batches its metric updates (one ``inc(n)`` per run, never one per
request) and the default registry is a shared no-op.  This bench
measures simulator throughput with metrics disabled vs enabled and
writes the comparison to ``BENCH_observability.json``.
"""

import json
from pathlib import Path
from time import perf_counter

import pytest

from repro.observability.metrics import disable_metrics, enable_metrics
from repro.simulation import cache_sizes_from_fractions, simulate

POLICY = "gd*(1)"
CAPACITY_FRACTION = 0.02
ROUNDS = 5


@pytest.fixture(autouse=True)
def _metrics_off_after():
    yield
    disable_metrics()


@pytest.fixture(scope="module")
def capacity(dfn_trace):
    (size,) = cache_sizes_from_fractions(dfn_trace,
                                         [CAPACITY_FRACTION])
    return size


def _run(trace, capacity):
    return simulate(trace, policy=POLICY, capacity_bytes=capacity)


def _best_seconds(trace, capacity, rounds=ROUNDS):
    """Best-of-N wall clock, the usual micro-bench noise filter."""
    best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        _run(trace, capacity)
        best = min(best, perf_counter() - started)
    return best


def test_simulate_metrics_disabled(benchmark, dfn_trace, capacity):
    disable_metrics()
    result = benchmark.pedantic(_run, args=(dfn_trace, capacity),
                                rounds=3, iterations=1)
    benchmark.extra_info["metrics"] = "disabled"
    benchmark.extra_info["requests"] = len(dfn_trace)
    assert result.counted_requests > 0


def test_simulate_metrics_enabled(benchmark, dfn_trace, capacity):
    registry = enable_metrics()
    result = benchmark.pedantic(_run, args=(dfn_trace, capacity),
                                rounds=3, iterations=1)
    benchmark.extra_info["metrics"] = "enabled"
    assert result.counted_requests > 0
    # The run published its batched counters.
    assert registry.as_dict()


def test_overhead_report(dfn_trace, capacity, bench_scale):
    """Measure both modes head to head and write the comparison."""
    disable_metrics()
    _run(dfn_trace, capacity)  # warm caches before either side

    disabled = _best_seconds(dfn_trace, capacity)
    enable_metrics()
    enabled = _best_seconds(dfn_trace, capacity)
    disable_metrics()

    overhead_pct = 100.0 * (enabled - disabled) / disabled
    rate = len(dfn_trace) / disabled
    report = {
        "bench": "observability",
        "scale": bench_scale,
        "policy": POLICY,
        "requests": len(dfn_trace),
        "rounds": ROUNDS,
        "disabled": {"seconds": round(disabled, 6),
                     "requests_per_second": round(rate, 1)},
        "enabled": {"seconds": round(enabled, 6),
                    "requests_per_second":
                        round(len(dfn_trace) / enabled, 1)},
        "overhead_pct": round(overhead_pct, 2),
    }
    Path("BENCH_observability.json").write_text(
        json.dumps(report, indent=2) + "\n")
    # Batched updates keep even metrics-*enabled* overhead tiny; the
    # bound is loose because shared CI boxes are noisy.
    assert overhead_pct < 15.0, report
