"""Regenerates Table 5: RTP-like per-type sizes and temporal locality."""

import math

from benchmarks.conftest import run_and_report


def test_table5(benchmark, bench_scale):
    report = run_and_report(benchmark, "table5", bench_scale)
    print("\n" + report.text)
    # Paper: image popularity most skewed (largest alpha) within a
    # trace.  Compare against HTML — the other class populous enough
    # for a stable fit at every scale.
    image_alpha = report.data["image"]["alpha"]
    html_alpha = report.data["html"]["alpha"]
    assert not math.isnan(image_alpha)
    assert image_alpha > html_alpha
