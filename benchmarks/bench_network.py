"""Cache-network cascade vs the object walk on an 8-node tree.

The claim (docs/guide.md, "Cache networks"): an LRU/LCE network over
a columnar trace runs as a cascade of per-node LRU passes — no cache
objects, no per-request python dispatch — bit-identical to the
engine's object walk and fast enough to sweep topology grids: the
7-cache binary tree (plus the origin: 8 network nodes) must clear
≥1M aggregate node-visits per second on a single core, several times
the object walk's pace.  This bench builds the tree, drives the
DFN-like workload through both paths, asserts equality always, and
writes the comparison to ``BENCH_network.json``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) runs single-round
and skips the absolute-throughput floor (shared runners); the
equality and relative-speedup assertions always hold.
"""

import json
import os
from dataclasses import replace
from pathlib import Path
from time import perf_counter

import pytest

from repro.network.engine import NetworkConfig, NetworkSimulator
from repro.network.fastpath import fastpath_eligible, run_fastpath
from repro.network.topology import tree
from repro.trace.columnar import open_columnar, write_columnar
from repro.types import Trace

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
ROUNDS = 1 if SMOKE else 3
#: Aggregate node-visits/second the cascade must sustain on the
#: 8-node tree (measured ~1.5M on this single-core container).
#: Relative floor below guards smoke runs on noisy shared runners.
VISITS_PER_SECOND_FLOOR = 1_000_000
#: Cascade vs object walk on the same cell (measured ~7x).
SPEEDUP_FLOOR = 1.5 if SMOKE else 3.0
#: Largest cacheable object (squid's ``maximum_object_size`` idiom);
#: also guarantees every node admits every document — the no-bypass
#: precondition of the fast path.
MAX_OBJECT_BYTES = 200_000

#: Per-level capacities of the depth-3 binary tree: leaves hold the
#: least, the root the most (the usual hierarchy provisioning).
TOTAL_CAPACITY = MAX_OBJECT_BYTES * 60
LEVEL_CAPACITIES = (TOTAL_CAPACITY // 14, TOTAL_CAPACITY // 7,
                    TOTAL_CAPACITY * 2 // 7)


@pytest.fixture(scope="module")
def stable_trace(dfn_trace):
    """The DFN workload with stable, size-capped documents (the
    generator models modifications; the fast path requires one size
    per document)."""
    first = {}
    requests = []
    for request in dfn_trace.requests:
        size = first.setdefault(request.url,
                                min(request.size, MAX_OBJECT_BYTES))
        requests.append(replace(request, size=size, transfer_size=size))
    return Trace(requests, name="dfn-stable")


@pytest.fixture(scope="module")
def columnar_trace(stable_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-net") / "dfn.rcol"
    write_columnar(path, stable_trace.requests, name=stable_trace.name)
    with open_columnar(path) as trace:
        yield trace


def _time(fn, rounds=ROUNDS):
    best, value = float("inf"), None
    for _ in range(rounds):
        started = perf_counter()
        value = fn()
        best = min(best, perf_counter() - started)
    return best, value


def _node_dicts(result):
    return {name: node.as_dict()
            for name, node in sorted(result.nodes.items())}


def test_network_cascade_floor(columnar_trace, bench_scale):
    topology = tree(LEVEL_CAPACITIES, branching=2)
    config = NetworkConfig(topology=topology, strategy="lce")
    assert fastpath_eligible(columnar_trace, config)

    # Warm both paths (imports, mmap pages, allocator) before timing.
    run_fastpath(columnar_trace, config)
    object_walk = NetworkSimulator(config).run(columnar_trace)

    fast_s, fast = _time(lambda: run_fastpath(columnar_trace, config))
    object_s, object_result = _time(
        lambda: NetworkSimulator(config).run(columnar_trace))

    assert _node_dicts(fast) == _node_dicts(object_result)
    assert fast.network.as_dict() == object_result.network.as_dict()
    assert _node_dicts(fast) == _node_dicts(object_walk)

    visits = sum(node.hits + node.misses
                 for node in fast.nodes.values())
    visits_per_second = visits / fast_s
    speedup = object_s / fast_s

    report = {
        "bench": "network-cascade",
        "scale": bench_scale,
        "smoke": SMOKE,
        "trace_requests": len(columnar_trace),
        "rounds": ROUNDS,
        "topology": topology.describe(),
        "network_nodes": topology.n_caches + 1,    # + the origin
        "aggregate_node_visits": visits,
        "object_walk": {
            "seconds": round(object_s, 6),
            "visits_per_second": round(visits / object_s, 1)},
        "cascade": {
            "seconds": round(fast_s, 6),
            "visits_per_second": round(visits_per_second, 1)},
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "visits_per_second_floor": VISITS_PER_SECOND_FLOOR,
    }
    Path("BENCH_network.json").write_text(json.dumps(report, indent=2)
                                          + "\n")
    assert speedup >= SPEEDUP_FLOOR, report
    if not SMOKE:
        assert visits_per_second >= VISITS_PER_SECOND_FLOOR, report
