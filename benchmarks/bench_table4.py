"""Regenerates Table 4: DFN-like per-type sizes and temporal locality."""

from benchmarks.conftest import run_and_report


def test_table4(benchmark, bench_scale):
    report = run_and_report(benchmark, "table4", bench_scale)
    print("\n" + report.text)
    # Paper: multimedia has the largest mean transfer sizes; application
    # documents pair large means with small medians.
    mm = report.data["multimedia"]
    app = report.data["application"]
    image = report.data["image"]
    assert mm["transfer_mean_kb"] > image["transfer_mean_kb"]
    assert app["doc_mean_kb"] > 2 * app["doc_median_kb"]
