"""Micro-benchmarks: simulated requests/second per replacement policy.

These are the hot path of every experiment; regressions here multiply
directly into experiment wall-clock.
"""

import pytest

from repro.core.cache import Cache
from repro.core.registry import POLICY_NAMES, make_policy
from repro.simulation.sweep import cache_sizes_from_fractions

#: Policies worth tracking individually (the paper's four plus extremes).
TRACKED = ("lru", "fifo", "lfu", "lfu-da", "size", "rand", "lru-2",
           "gds(1)", "gdsf(1)", "gd*(1)", "gds(p)", "gd*(p)")


@pytest.fixture(scope="module")
def workload(dfn_trace):
    """Pre-extracted (url, size, type) tuples: benchmark only the cache."""
    return [(r.url, r.size, r.doc_type) for r in dfn_trace.requests]


@pytest.mark.parametrize("policy_name", TRACKED)
def test_policy_throughput(benchmark, workload, dfn_trace, policy_name):
    capacity = cache_sizes_from_fractions(dfn_trace, [0.02])[0]

    def run():
        cache = Cache(capacity, make_policy(policy_name))
        reference = cache.reference
        for url, size, doc_type in workload:
            reference(url, size, doc_type)
        return cache.hits

    hits = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["requests"] = len(workload)
    benchmark.extra_info["hits"] = hits
    assert hits > 0


def test_belady_throughput(benchmark, workload, dfn_trace):
    """The clairvoyant bound costs one precomputation pass plus a heap."""
    from repro.core.belady import BeladyPolicy, compute_next_uses

    capacity = cache_sizes_from_fractions(dfn_trace, [0.02])[0]
    next_uses = compute_next_uses(dfn_trace.requests)

    def run():
        cache = Cache(capacity, BeladyPolicy(next_uses))
        for url, size, doc_type in workload:
            cache.reference(url, size, doc_type)
        return cache.hits

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0
