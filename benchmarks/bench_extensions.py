"""Benches for the extension features.

* the two extra ablation experiments (static type partitioning, IRM);
* the one-pass Mattson stack-distance analysis vs per-size simulation;
* the hierarchy simulator;
* the extended policy zoo on the DFN-like mix.
"""

import pytest

from benchmarks.conftest import run_and_report


def test_ablation_partition(benchmark, bench_scale):
    report = run_and_report(benchmark, "ablation-partition", bench_scale)
    print("\n" + report.text)
    # Partitioning LRU by request shares must not be catastrophically
    # worse than monolithic LRU on hit rate.
    assert report.data["partitioned-lru"]["hit_rate"] > \
        0.5 * report.data["lru"]["hit_rate"]


def test_ablation_irm(benchmark, bench_scale):
    report = run_and_report(benchmark, "ablation-irm", bench_scale)
    print("\n" + report.text)
    # Removing temporal correlation cannot help LRU (it lives off it).
    assert report.data["lru / irm"]["hit_rate"] <= \
        report.data["lru / power-law gaps"]["hit_rate"] + 0.02


def test_ablation_typed_beta(benchmark, bench_scale):
    report = run_and_report(benchmark, "ablation-typed-beta", bench_scale)
    print("\n" + report.text)
    # Per-type beta must never destroy overall performance.
    for trace_label in ("dfn", "rtp"):
        aggregate = report.data[f"gd*(1) / {trace_label}"]["hit_rate"]
        typed = report.data[f"gd*t(1) / {trace_label}"]["hit_rate"]
        assert typed > 0.5 * aggregate


def test_ablation_seeds(benchmark, bench_scale):
    report = run_and_report(benchmark, "ablation-seeds", bench_scale)
    print("\n" + report.text)
    assert report.data["orderings_held"] >= report.data["seeds"] - 1


def test_policy_zoo(benchmark, bench_scale):
    report = run_and_report(benchmark, "policy-zoo", bench_scale)
    print("\n" + report.text)
    belady = report.data["belady"]["hit_rate"]
    assert all(stats["hit_rate"] <= belady + 1e-9
               for stats in report.data.values())


def test_future_workload(benchmark, bench_scale):
    report = run_and_report(benchmark, "future-workload", bench_scale)
    print("\n" + report.text)
    # Packet-cost byte hit rates stay sane on the heavy-multimedia mix.
    future = report.data["future"]["byte_hit_rate_packet"]
    assert all(0.0 <= value <= 1.0 for value in future.values())


def test_verify_claims(benchmark, bench_scale):
    report = run_and_report(benchmark, "verify-claims", bench_scale)
    print("\n" + report.text)
    passed = sum(1 for claim in report.data.values() if claim["passed"])
    assert passed >= 7  # all ten at small scale; tiny is noise-limited


def test_stack_distance_one_pass(benchmark, dfn_trace):
    """The Mattson pass replaces one simulation *per cache size*."""
    from repro.analysis.stack_distance import stack_profile

    profile = benchmark.pedantic(stack_profile,
                                 args=(dfn_trace.requests,),
                                 rounds=3, iterations=1)
    benchmark.extra_info["requests"] = len(dfn_trace)
    curve = profile.curve([2 ** k for k in range(2, 15)])
    rates = [rate for _, rate in curve]
    assert rates == sorted(rates)


def test_hierarchy_simulation(benchmark, dfn_trace):
    from repro.simulation.hierarchy import simulate_hierarchy

    total = dfn_trace.metadata().total_size_bytes

    def run():
        return simulate_hierarchy(
            dfn_trace, int(total * 0.005), int(total * 0.02),
            n_children=4)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.hierarchy_hit_rate >= result.child_hit_rate


@pytest.mark.parametrize("policy_name", [
    "slru", "lru-threshold", "landlord(1)", "hyperbolic(1)"])
def test_extended_policy_throughput(benchmark, dfn_trace, policy_name):
    from repro.core.cache import Cache
    from repro.core.registry import make_policy
    from repro.simulation.sweep import cache_sizes_from_fractions

    capacity = cache_sizes_from_fractions(dfn_trace, [0.02])[0]
    workload = [(r.url, r.size, r.doc_type) for r in dfn_trace.requests]

    def run():
        cache = Cache(capacity, make_policy(policy_name))
        for url, size, doc_type in workload:
            cache.reference(url, size, doc_type)
        return cache.hits

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0
