"""Regenerates Table 3: RTP-like trace type breakdown."""

import pytest

from benchmarks.conftest import run_and_report


def test_table3(benchmark, bench_scale):
    report = run_and_report(benchmark, "table3", bench_scale)
    print("\n" + report.text)
    # Paper: RTP has more multimedia and HTML traffic than DFN.
    assert report.data["total_requests"]["html"] > 30.0
    assert sum(report.data["requested_data"].values()) == \
        pytest.approx(100.0)
