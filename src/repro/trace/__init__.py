"""Trace ingestion substrate.

Raw proxy logs (Squid native access.log, Common Log Format, or the
library's canonical CSV trace format) are parsed into
:class:`~repro.trace.record.LogRecord` objects, filtered for
cacheability, classified by document type, and emitted as
:class:`~repro.types.Request` streams ready for simulation.

The composable entry point is :class:`~repro.trace.pipeline.TracePipeline`;
:func:`~repro.trace.pipeline.load_trace` is the one-call convenience.
"""

from repro.trace.record import LogRecord
from repro.trace.classify import (
    classify,
    classify_content_type,
    classify_extension,
    classify_url,
)
from repro.trace.preprocess import (
    CACHEABLE_STATUS_CODES,
    CacheabilityFilter,
    is_cacheable_status,
    is_uncacheable_url,
)
from repro.trace.modification import ModificationDetector, ModificationPolicy
from repro.trace.squid import SquidParser, format_squid_line
from repro.trace.clf import CLFParser, format_clf_line
from repro.trace.csvtrace import CsvTraceParser, CsvTraceWriter
from repro.trace.reader import open_trace, detect_format
from repro.trace.writer import write_trace
from repro.trace.columnar import (
    COLUMNAR_SUFFIX,
    ColumnarFormatError,
    ColumnarHeader,
    ColumnarTrace,
    ColumnarWriter,
    convert_to_columnar,
    inspect_columnar,
    is_columnar_file,
    open_columnar,
    read_header,
    write_columnar,
)
from repro.trace.pipeline import (
    TracePipeline,
    count_requests,
    iter_trace,
    load_trace,
)
from repro.trace.validation import Finding, Severity, validate_trace
from repro.trace.sampling import (
    anonymize,
    filter_by_type,
    filter_requests,
    head,
    interleave,
    sample,
    split,
    thin,
    time_slice,
)

__all__ = [
    "LogRecord",
    "classify",
    "classify_content_type",
    "classify_extension",
    "classify_url",
    "CACHEABLE_STATUS_CODES",
    "CacheabilityFilter",
    "is_cacheable_status",
    "is_uncacheable_url",
    "ModificationDetector",
    "ModificationPolicy",
    "SquidParser",
    "format_squid_line",
    "CLFParser",
    "format_clf_line",
    "CsvTraceParser",
    "CsvTraceWriter",
    "open_trace",
    "detect_format",
    "write_trace",
    "COLUMNAR_SUFFIX",
    "ColumnarFormatError",
    "ColumnarHeader",
    "ColumnarTrace",
    "ColumnarWriter",
    "convert_to_columnar",
    "inspect_columnar",
    "is_columnar_file",
    "open_columnar",
    "read_header",
    "write_columnar",
    "TracePipeline",
    "count_requests",
    "iter_trace",
    "load_trace",
    "validate_trace",
    "Finding",
    "Severity",
    "anonymize",
    "filter_by_type",
    "filter_requests",
    "head",
    "thin",
    "sample",
    "time_slice",
    "split",
    "interleave",
]
