"""Raw log record: one parsed proxy-log line, before preprocessing.

A :class:`LogRecord` keeps everything the downstream filters need to make
their decisions (URL for the cacheability heuristics, status code for the
status filter, MIME type and URL for classification) without committing
to a document type yet.  The preprocessing pipeline turns records into
:class:`~repro.types.Request` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LogRecord:
    """One proxy-log line.

    Attributes:
        timestamp: Seconds since the epoch (fractional permitted).
        url: Requested URL, as logged.
        status: HTTP response status code.
        size: Bytes transferred to the client for this response, as logged
            by the proxy.  Note proxy logs record the *transfer* size; the
            full document size is reconstructed by the modification
            detector from the largest transfer observed.
        method: HTTP method (default GET).
        content_type: MIME type of the response, when the log carries one
            (Squid native format does; CLF does not).
        client: Client host or ip, when logged.
        elapsed_ms: Request service time in milliseconds, when logged.
    """

    timestamp: float
    url: str
    status: int
    size: int
    method: str = "GET"
    content_type: Optional[str] = None
    client: Optional[str] = None
    elapsed_ms: Optional[int] = None
