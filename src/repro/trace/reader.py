"""Trace file opening with format auto-detection.

Supports plain and gzip-compressed files in any of the three text
formats (squid, clf, csv) plus the binary columnar format
(:mod:`repro.trace.columnar`).  Binary detection checks the file's
magic bytes; text detection reads the first non-blank line and asks
each parser's ``sniff``.  An explicit format name always wins.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Callable, Iterator, Optional, Union

from repro.errors import TraceFormatError
from repro.observability.logs import get_logger
from repro.trace.clf import CLFParser
from repro.trace.csvtrace import CsvTraceParser
from repro.trace.record import LogRecord
from repro.trace.squid import SquidParser

_PARSERS = {
    "squid": SquidParser,
    "clf": CLFParser,
    "csv": CsvTraceParser,
}

_logger = get_logger("trace.reader")

PathLike = Union[str, Path]


def _open_text(path: PathLike) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def detect_format(first_line: str) -> str:
    """Guess the trace format of a line; raises TraceFormatError if none."""
    if CsvTraceParser.sniff(first_line):
        return "csv"
    if SquidParser.sniff(first_line):
        return "squid"
    if CLFParser.sniff(first_line):
        return "clf"
    raise TraceFormatError(
        f"cannot detect trace format from line: {first_line[:120]!r}")


def open_trace(path: PathLike, fmt: Optional[str] = None,
               strict: bool = False,
               max_errors: Optional[int] = None,
               on_error: Optional[Callable[[TraceFormatError], None]]
               = None) -> Iterator:
    """Open a trace file, yielding records (or Requests for csv format).

    Args:
        path: File path; ``.gz`` files are decompressed transparently.
        fmt: One of ``"squid"``, ``"clf"``, ``"csv"``; auto-detected from
            the first line when omitted.
        strict: Raise on malformed lines instead of skipping.
        max_errors: Lenient-mode error budget: abort with
            :class:`~repro.errors.TraceFormatError` once more than this
            many lines are malformed (``None`` = unlimited).  A trace
            that is mostly garbage should fail loudly, not load as a
            sliver of itself.
        on_error: Quarantine callback invoked with the
            :class:`~repro.errors.TraceFormatError` for each skipped
            line (lenient mode only), so malformed input is observable.

    Yields :class:`~repro.trace.record.LogRecord` for raw-log formats and
    :class:`~repro.types.Request` for the canonical csv and binary
    columnar formats.
    """
    from repro.trace.columnar import is_columnar_file, open_columnar

    if fmt == "columnar" or (fmt is None and is_columnar_file(path)):
        columnar = open_columnar(path, verify=True)
        try:
            yield from columnar.iter_requests()
        finally:
            columnar.close()
        return
    stream = _open_text(path)
    try:
        if fmt is None:
            first = stream.readline()
            while first and not first.strip():
                first = stream.readline()
            if not first:
                stream.close()
                return
            fmt = detect_format(first)
            _logger.debug("detected %s format for %s", fmt, path,
                          extra={"format": fmt, "path": str(path)})
            stream.close()
            stream = _open_text(path)
        if fmt not in _PARSERS:
            raise TraceFormatError(f"unknown trace format: {fmt!r}")
        parser = _PARSERS[fmt](strict=strict, max_errors=max_errors,
                               on_error=on_error)
        yield from parser.parse(stream)
    finally:
        stream.close()


def read_records(path: PathLike, fmt: Optional[str] = None,
                 strict: bool = False,
                 max_errors: Optional[int] = None,
                 on_error: Optional[Callable[[TraceFormatError], None]]
                 = None) -> Iterator[LogRecord]:
    """Like :func:`open_trace` but only for raw-log formats."""
    if fmt in ("csv", "columnar"):
        raise TraceFormatError(
            f"{fmt} traces contain Requests, not LogRecords")
    yield from open_trace(path, fmt=fmt, strict=strict,
                          max_errors=max_errors, on_error=on_error)
