"""Document modification vs interrupted transfer (paper Section 4.1).

Proxy logs record the bytes *transferred*, not the document's full size.
When the logged size of a URL changes between successive requests, the
paper distinguishes two causes:

* the size changed by **less than 5 %** → the document was *modified* on
  the origin server; the request counts as a miss and any cached copy is
  stale;
* the size changed by **5 % or more** → the client *interrupted* the
  transfer; the document itself is unchanged and a cached copy remains
  valid.

(The direction of the rule is deliberate: edits to a page typically
change its size slightly, while an aborted download of a large file moves
the logged size by a lot.)  The paper contrasts this with Jin &
Bestavros' treatment, where *any* size change counts as a modification —
that difference explains the one result where the two studies disagree,
and is exposed here as :attr:`ModificationPolicy.ANY_CHANGE` for the
ablation benchmark.

One asymmetric refinement: when the logged size *grows* past the
tolerance, the earlier observation must itself have been a partial
transfer, so the detector raises its canonical full size and reports the
grow event; a cached (shorter) copy cannot serve the full document, so
the simulator treats it like an invalidation as well.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class ModificationPolicy(enum.Enum):
    """How size changes between successive requests are interpreted."""

    #: The paper's rule: < 5 % delta = modification, >= 5 % = interruption.
    PAPER = "paper"
    #: Jin & Bestavros' rule: any size change is a modification.
    ANY_CHANGE = "any-change"


class SizeEvent(enum.Enum):
    """Classification of one request's size relative to the last one."""

    FIRST = "first"              # first request to this URL
    UNCHANGED = "unchanged"      # same size as before
    MODIFIED = "modified"        # document changed; cached copy stale
    INTERRUPTED = "interrupted"  # partial transfer; cached copy valid
    GREW = "grew"                # earlier observation was partial


@dataclass(frozen=True)
class SizeObservation:
    """Outcome of feeding one request's logged size to the detector.

    Attributes:
        event: What this size change means.
        document_size: Detector's current belief of the full document
            size (canonical size) after this request.
        invalidates: True when a cached copy must be treated as stale
            (modification, or a grow revealing the cached copy as
            incomplete).
    """

    event: SizeEvent
    document_size: int
    invalidates: bool


class ModificationDetector:
    """Tracks per-URL canonical sizes and classifies size changes.

    The detector is fed *every* request (hit or miss, cached or not), as
    the paper's simulator does, so the canonical size reflects the full
    history of each document.
    """

    def __init__(self, tolerance: float = 0.05,
                 policy: ModificationPolicy = ModificationPolicy.PAPER):
        if not 0.0 < tolerance < 1.0:
            raise ValueError("tolerance must be in (0, 1)")
        self.tolerance = tolerance
        self.policy = policy
        self._sizes: Dict[str, int] = {}
        self.counts: Dict[SizeEvent, int] = {event: 0 for event in SizeEvent}

    def __len__(self) -> int:
        return len(self._sizes)

    def observe(self, url: str, logged_size: int) -> SizeObservation:
        """Classify one request's logged size and update state."""
        previous = self._sizes.get(url)
        if previous is None:
            self._sizes[url] = logged_size
            return self._emit(SizeEvent.FIRST, logged_size, False)
        if logged_size == previous:
            return self._emit(SizeEvent.UNCHANGED, previous, False)

        if self.policy is ModificationPolicy.ANY_CHANGE:
            self._sizes[url] = logged_size
            return self._emit(SizeEvent.MODIFIED, logged_size, True)

        delta = abs(logged_size - previous) / previous
        if delta < self.tolerance:
            self._sizes[url] = logged_size
            return self._emit(SizeEvent.MODIFIED, logged_size, True)
        if logged_size > previous:
            self._sizes[url] = logged_size
            return self._emit(SizeEvent.GREW, logged_size, True)
        return self._emit(SizeEvent.INTERRUPTED, previous, False)

    def canonical_size(self, url: str) -> int:
        """Current full-size belief for a URL (KeyError when unseen)."""
        return self._sizes[url]

    def _emit(self, event: SizeEvent, size: int,
              invalidates: bool) -> SizeObservation:
        self.counts[event] += 1
        return SizeObservation(event, size, invalidates)

    def summary(self) -> Dict[str, int]:
        """Event counts by name, for reporting."""
        return {event.value: count for event, count in self.counts.items()}


def split_sizes(observation: SizeObservation,
                logged_size: int) -> Tuple[int, int]:
    """(document_size, transfer_size) pair implied by an observation."""
    return observation.document_size, logged_size
