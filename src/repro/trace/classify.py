"""Document-type classification (paper Section 2).

The paper classifies by the HTTP ``Content-Type`` header when present and
falls back to guessing from the URL's file extension.  Four main classes
are distinguished — text/HTML, images, multimedia, application — plus
"other" for everything unrecognized.  Plain-text source files (``.tex``,
``.java``, ...) are folded into the HTML class, following the paper.
"""

from __future__ import annotations

from typing import Optional
from urllib.parse import urlparse

from repro.types import DocumentType

# --- MIME prefix / exact-type tables ---------------------------------------

_MIME_EXACT = {
    "text/html": DocumentType.HTML,
    "text/plain": DocumentType.HTML,
    "text/xml": DocumentType.HTML,
    "text/css": DocumentType.HTML,
    "application/xhtml+xml": DocumentType.HTML,
    # Application types that are really audio/video containers.
    "application/x-shockwave-flash": DocumentType.MULTIMEDIA,
    "application/vnd.rn-realmedia": DocumentType.MULTIMEDIA,
    "application/x-pn-realaudio": DocumentType.MULTIMEDIA,
    "application/ogg": DocumentType.MULTIMEDIA,
    "application/mp4": DocumentType.MULTIMEDIA,
}

_MIME_PREFIXES = (
    ("image/", DocumentType.IMAGE),
    ("audio/", DocumentType.MULTIMEDIA),
    ("video/", DocumentType.MULTIMEDIA),
    ("text/", DocumentType.HTML),
    ("application/", DocumentType.APPLICATION),
)

# --- extension tables -------------------------------------------------------

_IMAGE_EXTENSIONS = frozenset({
    "gif", "jpg", "jpeg", "jpe", "png", "bmp", "tif", "tiff", "xbm",
    "ico", "pnm", "pbm", "pgm", "ppm", "svg", "webp",
})

_HTML_EXTENSIONS = frozenset({
    "html", "htm", "shtml", "xhtml", "txt", "text", "xml", "css", "asc",
    # Paper: text files are added to the HTML class.
    "tex", "java", "c", "h", "cc", "cpp", "py", "pl", "js", "md",
})

_MULTIMEDIA_EXTENSIONS = frozenset({
    "mp3", "mp2", "mpa", "wav", "au", "aiff", "aif", "ra", "ram", "rm",
    "mid", "midi", "ogg", "wma", "m4a", "flac",
    "mpg", "mpeg", "mpe", "mp4", "mov", "qt", "avi", "wmv", "asf",
    "flv", "webm", "mkv", "swf", "viv", "vivo",
})

_APPLICATION_EXTENSIONS = frozenset({
    "ps", "eps", "pdf", "zip", "gz", "tgz", "z", "bz2", "tar", "rar",
    "7z", "exe", "dll", "bin", "iso", "dmg", "rpm", "deb", "jar", "msi",
    "doc", "docx", "xls", "xlsx", "ppt", "pptx", "rtf", "dvi", "class",
    "hqx", "sit", "arj", "lha", "cab",
})


def classify_content_type(content_type: Optional[str]) -> Optional[DocumentType]:
    """Classify by MIME type; None when no type is given or recognized."""
    if not content_type:
        return None
    mime = content_type.split(";", 1)[0].strip().lower()
    if not mime:
        return None
    exact = _MIME_EXACT.get(mime)
    if exact is not None:
        return exact
    for prefix, doc_type in _MIME_PREFIXES:
        if mime.startswith(prefix):
            return doc_type
    return None


def classify_extension(extension: str) -> Optional[DocumentType]:
    """Classify by bare file extension (no leading dot), or None."""
    ext = extension.lower().lstrip(".")
    if ext in _IMAGE_EXTENSIONS:
        return DocumentType.IMAGE
    if ext in _HTML_EXTENSIONS:
        return DocumentType.HTML
    if ext in _MULTIMEDIA_EXTENSIONS:
        return DocumentType.MULTIMEDIA
    if ext in _APPLICATION_EXTENSIONS:
        return DocumentType.APPLICATION
    return None


def classify_url(url: str) -> Optional[DocumentType]:
    """Classify from the URL path's file extension, or None.

    A path ending in ``/`` (or with no extension) is treated as an HTML
    page, matching common proxy-study practice: directory URLs serve
    index documents.
    """
    try:
        path = urlparse(url).path
    except ValueError:
        return None
    if not path or path.endswith("/"):
        return DocumentType.HTML
    last = path.rsplit("/", 1)[-1]
    if "." not in last:
        return DocumentType.HTML
    return classify_extension(last.rsplit(".", 1)[-1])


def classify(url: str, content_type: Optional[str] = None) -> DocumentType:
    """Full classification: MIME type first, then extension, else OTHER."""
    doc_type = classify_content_type(content_type)
    if doc_type is not None:
        return doc_type
    doc_type = classify_url(url)
    if doc_type is not None:
        return doc_type
    return DocumentType.OTHER
