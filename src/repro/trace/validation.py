"""Trace sanity checking.

Real logs arrive broken in boring ways — clock skew, negative sizes,
transfer sizes above document sizes, size oscillation that would
register as a modification storm.  :func:`validate_trace` runs a fixed
battery of checks and returns structured findings instead of failing,
so ingest pipelines can decide what is fatal; ``python -m repro.trace
validate`` exposes it on the command line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List

from repro.types import Request


class Severity(enum.Enum):
    ERROR = "error"      # the simulator's assumptions are violated
    WARNING = "warning"  # legal but suspicious; results may mislead


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    check: str
    severity: Severity
    count: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"[{self.severity.value}] {self.check}: {self.detail} "
                f"({self.count:,} occurrences)")


#: Size oscillation: this many distinct sizes for one URL smells like
#: a session id leaking into the size field.
OSCILLATION_THRESHOLD = 10


def validate_trace(trace: Iterable[Request]) -> List[Finding]:
    """Run every check; returns an empty list for a clean trace."""
    findings: List[Finding] = []
    previous_timestamp = None
    out_of_order = 0
    overlong_transfers = 0
    zero_size = 0
    first_bad_ts = ""
    sizes_per_url = {}
    total = 0

    for request in trace:
        total += 1
        if previous_timestamp is not None \
                and request.timestamp < previous_timestamp:
            out_of_order += 1
            if not first_bad_ts:
                first_bad_ts = (f"{request.url} at {request.timestamp} "
                                f"after {previous_timestamp}")
        previous_timestamp = request.timestamp
        if request.transfer_size > request.size:
            overlong_transfers += 1
        if request.size == 0:
            zero_size += 1
        seen = sizes_per_url.setdefault(request.url, set())
        if len(seen) <= OSCILLATION_THRESHOLD:
            seen.add(request.size)

    if total == 0:
        return [Finding("empty-trace", Severity.ERROR, 1,
                        "trace contains no requests")]

    if out_of_order:
        findings.append(Finding(
            "timestamp-order", Severity.WARNING, out_of_order,
            f"timestamps go backwards (first: {first_bad_ts}); "
            "reuse-distance and TTL analyses assume ordering"))
    if overlong_transfers:
        findings.append(Finding(
            "transfer-exceeds-size", Severity.ERROR, overlong_transfers,
            "transfer_size above document size; byte accounting "
            "clamps these, but the source data is inconsistent"))
    if zero_size:
        findings.append(Finding(
            "zero-size-documents", Severity.WARNING, zero_size,
            "zero-byte documents occupy no cache space and distort "
            "hit rates upward"))

    oscillating = sum(1 for seen in sizes_per_url.values()
                      if len(seen) > OSCILLATION_THRESHOLD)
    if oscillating:
        findings.append(Finding(
            "size-oscillation", Severity.WARNING, oscillating,
            f"documents with > {OSCILLATION_THRESHOLD} distinct sizes; "
            "each change registers as a modification miss"))
    return findings


def render_findings(findings: List[Finding]) -> str:
    """Human-readable report (\"clean\" for no findings)."""
    if not findings:
        return "trace is clean: all checks passed"
    lines = [f"{len(findings)} finding(s):"]
    for finding in findings:
        lines.append(f"  [{finding.severity.value:7s}] "
                     f"{finding.check}: {finding.detail} "
                     f"({finding.count:,}x)")
    return "\n".join(lines)
