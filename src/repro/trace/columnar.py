"""Compact binary columnar trace format (``.rcol``).

A columnar trace is an mmap-able numpy record file: one packed record
per request (interned doc-id, size, transfer, type code, timestamp,
modification epoch, status, content-type id) followed by the url and
content-type string tables, all behind a small versioned header that
carries request/byte counts and per-type histograms.  The layout makes
three things cheap that the text formats cannot offer:

* ``count_requests`` and ``Trace.metadata()`` become O(1) header reads;
* a simulation pass can mmap the file and run the resolver and the
  policy fast paths as numpy column operations instead of streaming
  Python :class:`~repro.types.Request` objects;
* parallel sweeps share one OS page-cache copy of the trace across
  worker processes instead of re-decoding text per batch.

File layout (all little-endian)::

    [fixed header | header json] ... pad to 4096
    [record 0][record 1]...[record n-1]          # numpy record array
    [url offsets: (n_urls+1) u8][url utf-8 blob]
    [ctype offsets: (n_ctypes+1) u8][ctype utf-8 blob]

Integrity: ``header_crc`` covers the fixed header (with the crc field
zeroed) plus the json extras; ``data_crc`` covers the record section
and both string tables.  Truncated files are detected by comparing the
actual file size against ``data_end``.

Versioning: ``version`` is the format version the writer produced;
``min_reader`` is the oldest reader version able to decode it.  Readers
accept any file whose ``min_reader`` is not newer than themselves and
ignore unknown json fields, so additive format revisions stay readable.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.observability.logs import get_logger
from repro.types import (DOCUMENT_TYPES, DocumentType, Request,
                         TraceMetadata)

PathLike = Union[str, Path]

_logger = get_logger("trace.columnar")

#: First bytes of every columnar trace file.
MAGIC = b"RPROCOLT"
#: Format version this module writes.
FORMAT_VERSION = 1
#: Oldest reader version able to decode files this module writes.
MIN_READER = 1
#: Reader version this module implements.
READER_VERSION = 1
#: The header (fixed struct + json extras) lives in this reserve so the
#: record section can start at a fixed, page-aligned offset and the
#: writer can stream records before the counts are known.
HEADER_RESERVE = 4096
#: Canonical file suffix for columnar traces.
COLUMNAR_SUFFIX = ".rcol"

#: One packed record per request.  ``doc`` indexes the url string
#: table; ``ctype`` is 0 for "no content type" else 1 + the index into
#: the content-type table; ``type`` indexes ``DOCUMENT_TYPES``;
#: ``epoch`` counts how many size changes this document had seen by
#: this request (the modification epoch).
RECORD_DTYPE = np.dtype([
    ("timestamp", "<f8"),
    ("size", "<i8"),
    ("transfer", "<i8"),
    ("doc", "<u4"),
    ("ctype", "<u4"),
    ("epoch", "<u4"),
    ("status", "<i4"),
    ("type", "u1"),
], align=False)

# magic, version, min_reader, header_len, json_len,
# n_records, n_urls, n_ctypes, requested_bytes, total_size_bytes,
# records_offset, strings_offset, data_end, data_crc, header_crc
_FIXED = struct.Struct("<8sIIIIQQQQQQQQII")

_TYPE_CODE = {doc_type: code for code, doc_type in
              enumerate(DOCUMENT_TYPES)}
_MAX_I8 = 2 ** 63 - 1
_MAX_U4 = 2 ** 32 - 1
_FLUSH_ROWS = 65536


class ColumnarFormatError(TraceFormatError):
    """A columnar trace file is malformed, truncated, or unreadable."""


@dataclass
class ColumnarHeader:
    """Decoded columnar file header: counts, offsets, and extras."""

    version: int
    min_reader: int
    n_records: int
    n_urls: int
    n_ctypes: int
    requested_bytes: int
    total_size_bytes: int
    records_offset: int
    strings_offset: int
    data_end: int
    data_crc: int
    extra: dict = field(default_factory=dict)

    @property
    def type_requests(self) -> List[int]:
        """Per-type request counts, in ``DOCUMENT_TYPES`` order."""
        return list(self.extra.get(
            "type_requests", [0] * len(DOCUMENT_TYPES)))

    @property
    def type_bytes(self) -> List[int]:
        """Per-type requested (transfer) bytes, ``DOCUMENT_TYPES`` order."""
        return list(self.extra.get(
            "type_bytes", [0] * len(DOCUMENT_TYPES)))


def is_columnar_file(path: PathLike) -> bool:
    """True when ``path`` starts with the columnar magic bytes."""
    try:
        with open(path, "rb") as stream:
            return stream.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _pack_header(header: ColumnarHeader) -> bytes:
    """Serialize a header (fixed struct + json) with both CRCs set."""
    json_bytes = json.dumps(
        header.extra, separators=(",", ":"), sort_keys=True,
    ).encode("utf-8")
    header_len = _FIXED.size + len(json_bytes)
    if header_len > HEADER_RESERVE:
        raise ColumnarFormatError(
            f"header extras too large: {header_len} bytes exceed the "
            f"{HEADER_RESERVE}-byte reserve")
    fields = [MAGIC, header.version, header.min_reader, header_len,
              len(json_bytes), header.n_records, header.n_urls,
              header.n_ctypes, header.requested_bytes,
              header.total_size_bytes, header.records_offset,
              header.strings_offset, header.data_end, header.data_crc]
    without_crc = _FIXED.pack(*fields, 0)
    header_crc = zlib.crc32(without_crc + json_bytes)
    return _FIXED.pack(*fields, header_crc) + json_bytes


def _unpack_header(raw: bytes, path: Path) -> ColumnarHeader:
    if len(raw) < _FIXED.size or raw[:len(MAGIC)] != MAGIC:
        raise ColumnarFormatError(
            f"{path}: not a columnar trace (bad magic)")
    (magic, version, min_reader, header_len, json_len, n_records,
     n_urls, n_ctypes, requested_bytes, total_size_bytes,
     records_offset, strings_offset, data_end, data_crc,
     header_crc) = _FIXED.unpack_from(raw)
    if header_len > len(raw) or header_len != _FIXED.size + json_len:
        raise ColumnarFormatError(
            f"{path}: truncated or inconsistent header")
    json_bytes = raw[_FIXED.size:header_len]
    without_crc = _FIXED.pack(
        magic, version, min_reader, header_len, json_len, n_records,
        n_urls, n_ctypes, requested_bytes, total_size_bytes,
        records_offset, strings_offset, data_end, data_crc, 0)
    if zlib.crc32(without_crc + json_bytes) != header_crc:
        raise ColumnarFormatError(f"{path}: header CRC mismatch")
    if min_reader > READER_VERSION:
        raise ColumnarFormatError(
            f"{path}: written by format v{version}, needs reader "
            f">= v{min_reader} (this reader is v{READER_VERSION})")
    try:
        extra = json.loads(json_bytes.decode("utf-8")) if json_bytes \
            else {}
    except ValueError as exc:
        raise ColumnarFormatError(
            f"{path}: corrupt header extras: {exc}") from exc
    itemsize = extra.get("record_itemsize", RECORD_DTYPE.itemsize)
    if itemsize != RECORD_DTYPE.itemsize:
        raise ColumnarFormatError(
            f"{path}: record layout mismatch (file itemsize {itemsize}"
            f", reader expects {RECORD_DTYPE.itemsize})")
    return ColumnarHeader(
        version=version, min_reader=min_reader, n_records=n_records,
        n_urls=n_urls, n_ctypes=n_ctypes,
        requested_bytes=requested_bytes,
        total_size_bytes=total_size_bytes,
        records_offset=records_offset, strings_offset=strings_offset,
        data_end=data_end, data_crc=data_crc, extra=extra)


def read_header(path: PathLike) -> ColumnarHeader:
    """Read and CRC-check just the header of a columnar trace — O(1).

    This is what makes ``count_requests`` and metadata lookups free:
    request/byte counts and per-type histograms live in the header.
    """
    path = Path(path)
    try:
        with open(path, "rb") as stream:
            raw = stream.read(HEADER_RESERVE)
    except OSError as exc:
        raise ColumnarFormatError(f"{path}: {exc}") from exc
    header = _unpack_header(raw, path)
    try:
        actual = path.stat().st_size
    except OSError as exc:  # pragma: no cover - raced deletion
        raise ColumnarFormatError(f"{path}: {exc}") from exc
    if actual < header.data_end:
        raise ColumnarFormatError(
            f"{path}: truncated ({actual} bytes, header promises "
            f"{header.data_end})")
    return header


class ColumnarWriter:
    """Streaming columnar trace writer with append support.

    Records are buffered and flushed in blocks; counts, histograms, the
    string tables, and both CRCs are finalized into the header on
    :meth:`close`.  Use as a context manager, or via the module-level
    :func:`write_columnar` / :func:`convert_to_columnar` helpers.
    ``ColumnarWriter.open_append`` reopens an existing file and
    continues writing records after the ones already on disk.
    """

    def __init__(self, path: PathLike, name: Optional[str] = None):
        self.path = Path(path)
        self.name = name or self.path.stem
        self._stream = open(self.path, "wb")
        self._stream.write(b"\0" * HEADER_RESERVE)
        self._init_state()

    def _init_state(self) -> None:
        self._url_ids: dict = {}
        self._urls: List[bytes] = []
        self._ct_ids: dict = {}
        self._ctypes: List[bytes] = []
        self._last_size: List[int] = []      # per doc id
        self._epochs: List[int] = []         # per doc id
        self._count = 0
        self._requested_bytes = 0
        self._total_size_bytes = 0
        self._type_requests = [0] * len(DOCUMENT_TYPES)
        self._type_bytes = [0] * len(DOCUMENT_TYPES)
        self._records_crc = 0
        self._closed = False
        self._buf_ts: List[float] = []
        self._buf_size: List[int] = []
        self._buf_transfer: List[int] = []
        self._buf_doc: List[int] = []
        self._buf_ctype: List[int] = []
        self._buf_epoch: List[int] = []
        self._buf_status: List[int] = []
        self._buf_type: List[int] = []

    @classmethod
    def open_append(cls, path: PathLike) -> "ColumnarWriter":
        """Reopen an existing columnar trace for streaming append.

        The string tables are dropped (they are rebuilt on close), the
        per-document size/epoch state is reconstructed from the record
        columns, and new records continue the record section in place.
        """
        path = Path(path)
        trace = open_columnar(path, verify=True)
        try:
            header = trace.header
            writer = cls.__new__(cls)
            writer.path = path
            writer.name = trace.name
            writer._init_state()
            writer._urls = [u.encode("utf-8") for u in trace.urls()]
            writer._url_ids = {u: i for i, u
                              in enumerate(trace.urls())}
            writer._ctypes = [c.encode("utf-8")
                              for c in trace.content_types()]
            writer._ct_ids = {c: i for i, c
                              in enumerate(trace.content_types())}
            writer._count = header.n_records
            writer._requested_bytes = header.requested_bytes
            writer._total_size_bytes = header.total_size_bytes
            writer._type_requests = header.type_requests
            writer._type_bytes = header.type_bytes
            n_urls = header.n_urls
            writer._last_size = [0] * n_urls
            writer._epochs = [0] * n_urls
            if header.n_records:
                records = trace.records
                # Last-occurrence state per document: np.unique on the
                # reversed id column gives the first hit per doc, which
                # is the last occurrence in trace order.
                docs = records["doc"][::-1]
                unique, first = np.unique(docs, return_index=True)
                last = header.n_records - 1 - first
                for doc_id, row in zip(unique.tolist(), last.tolist()):
                    writer._last_size[doc_id] = int(
                        records["size"][row])
                    writer._epochs[doc_id] = int(records["epoch"][row])
        finally:
            trace.close()
        stream = open(path, "r+b")
        stream.truncate(header.strings_offset)
        stream.seek(header.strings_offset)
        writer._stream = stream
        # data_crc must keep covering the records already on disk:
        # re-derive the running record CRC with one sequential read.
        with open(path, "rb") as reread:
            reread.seek(header.records_offset)
            remaining = header.strings_offset - header.records_offset
            crc = 0
            while remaining > 0:
                block = reread.read(min(1 << 20, remaining))
                if not block:
                    raise ColumnarFormatError(
                        f"{path}: truncated record section")
                crc = zlib.crc32(block, crc)
                remaining -= len(block)
        writer._records_crc = crc
        return writer

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._stream.close()

    def append(self, request: Request) -> None:
        """Append one request; interning and histograms are updated."""
        size = request.size
        transfer = request.transfer_size
        if size > _MAX_I8 or transfer > _MAX_I8:
            raise ColumnarFormatError(
                f"size {max(size, transfer)} exceeds the columnar "
                f"format's 63-bit size field")
        doc_id = self._url_ids.get(request.url)
        if doc_id is None:
            doc_id = len(self._urls)
            if doc_id > _MAX_U4:
                raise ColumnarFormatError(
                    "more than 2**32 distinct documents")
            self._url_ids[request.url] = doc_id
            self._urls.append(request.url.encode("utf-8"))
            self._last_size.append(size)
            self._epochs.append(0)
            self._total_size_bytes += size
            epoch = 0
        else:
            previous = self._last_size[doc_id]
            if previous != size:
                # Count the document once at its most recent size,
                # matching Trace.metadata(), and open a new
                # modification epoch.
                self._total_size_bytes += size - previous
                self._last_size[doc_id] = size
                self._epochs[doc_id] += 1
            epoch = self._epochs[doc_id]
        content_type = request.content_type
        if content_type is None:
            ct_id = 0
        else:
            interned = self._ct_ids.get(content_type)
            if interned is None:
                interned = len(self._ctypes)
                self._ct_ids[content_type] = interned
                self._ctypes.append(content_type.encode("utf-8"))
            ct_id = interned + 1
        code = _TYPE_CODE[request.doc_type]
        self._count += 1
        self._requested_bytes += transfer
        self._type_requests[code] += 1
        self._type_bytes[code] += transfer
        self._buf_ts.append(request.timestamp)
        self._buf_size.append(size)
        self._buf_transfer.append(transfer)
        self._buf_doc.append(doc_id)
        self._buf_ctype.append(ct_id)
        self._buf_epoch.append(epoch)
        self._buf_status.append(request.status)
        self._buf_type.append(code)
        if len(self._buf_ts) >= _FLUSH_ROWS:
            self._flush()

    def write_all(self, requests: Iterable[Request]) -> int:
        """Append every request; returns how many were written."""
        before = self._count
        for request in requests:
            self.append(request)
        return self._count - before

    def _flush(self) -> None:
        if not self._buf_ts:
            return
        block = np.empty(len(self._buf_ts), dtype=RECORD_DTYPE)
        block["timestamp"] = self._buf_ts
        block["size"] = self._buf_size
        block["transfer"] = self._buf_transfer
        block["doc"] = self._buf_doc
        block["ctype"] = self._buf_ctype
        block["epoch"] = self._buf_epoch
        block["status"] = self._buf_status
        block["type"] = self._buf_type
        raw = block.tobytes()
        self._records_crc = zlib.crc32(raw, self._records_crc)
        self._stream.write(raw)
        for buf in (self._buf_ts, self._buf_size, self._buf_transfer,
                    self._buf_doc, self._buf_ctype, self._buf_epoch,
                    self._buf_status, self._buf_type):
            buf.clear()

    @staticmethod
    def _string_table(blobs: List[bytes]) -> bytes:
        offsets = np.zeros(len(blobs) + 1, dtype="<u8")
        total = 0
        for index, blob in enumerate(blobs):
            total += len(blob)
            offsets[index + 1] = total
        return offsets.tobytes() + b"".join(blobs)

    def close(self) -> ColumnarHeader:
        """Flush, write the string tables, and finalize the header."""
        if self._closed:
            raise ColumnarFormatError("writer already closed")
        self._flush()
        strings_offset = (HEADER_RESERVE
                          + self._count * RECORD_DTYPE.itemsize)
        tables = (self._string_table(self._urls)
                  + self._string_table(self._ctypes))
        data_crc = zlib.crc32(tables, self._records_crc)
        self._stream.seek(strings_offset)
        self._stream.write(tables)
        header = ColumnarHeader(
            version=FORMAT_VERSION, min_reader=MIN_READER,
            n_records=self._count, n_urls=len(self._urls),
            n_ctypes=len(self._ctypes),
            requested_bytes=self._requested_bytes,
            total_size_bytes=self._total_size_bytes,
            records_offset=HEADER_RESERVE,
            strings_offset=strings_offset,
            data_end=strings_offset + len(tables),
            data_crc=data_crc,
            extra={
                "name": self.name,
                "record_itemsize": RECORD_DTYPE.itemsize,
                "fields": [name for name in RECORD_DTYPE.names],
                "type_order": [t.value for t in DOCUMENT_TYPES],
                "type_requests": self._type_requests,
                "type_bytes": self._type_bytes,
            })
        self._stream.seek(0)
        self._stream.write(_pack_header(header))
        self._stream.truncate(header.data_end)
        self._stream.close()
        self._closed = True
        _logger.debug("wrote columnar trace %s: %d requests, %d urls",
                      self.path, self._count, len(self._urls),
                      extra={"path": str(self.path),
                             "requests": self._count})
        return header


class ColumnarTrace:
    """A read-only, mmap-backed columnar trace.

    Columns are zero-copy numpy views over the file mapping; the url
    and content-type string tables decode lazily on first use.  The
    object is duck-compatible with :class:`~repro.types.Trace` where it
    matters: ``len``, iteration/indexing (yielding ``Request``),
    ``name``, and ``metadata()`` — metadata comes straight from the
    header without touching the record section.
    """

    is_columnar = True

    def __init__(self, path: PathLike, verify: bool = True):
        import mmap

        self.path = Path(path)
        self.header = read_header(self.path)
        self.name = self.header.extra.get("name") or self.path.stem
        self._file = open(self.path, "rb")
        self._mmap = mmap.mmap(self._file.fileno(), 0,
                               access=mmap.ACCESS_READ)
        self.records = np.frombuffer(
            self._mmap, dtype=RECORD_DTYPE, count=self.header.n_records,
            offset=self.header.records_offset)
        self._url_list: Optional[List[str]] = None
        self._ctype_list: Optional[List[str]] = None
        if verify:
            self._verify_data_crc()

    def _verify_data_crc(self) -> None:
        crc = 0
        view = memoryview(self._mmap)
        position = self.header.records_offset
        while position < self.header.data_end:
            stop = min(position + (1 << 20), self.header.data_end)
            crc = zlib.crc32(view[position:stop], crc)
            position = stop
        if crc != self.header.data_crc:
            raise ColumnarFormatError(
                f"{self.path}: data CRC mismatch "
                f"(file corrupt or truncated)")

    # -- column views -------------------------------------------------
    @property
    def timestamps(self) -> np.ndarray:
        return self.records["timestamp"]

    @property
    def sizes(self) -> np.ndarray:
        return self.records["size"]

    @property
    def transfers(self) -> np.ndarray:
        return self.records["transfer"]

    @property
    def doc_ids(self) -> np.ndarray:
        return self.records["doc"]

    @property
    def type_codes(self) -> np.ndarray:
        return self.records["type"]

    @property
    def epochs(self) -> np.ndarray:
        """Per-request modification epoch (size changes seen so far)."""
        return self.records["epoch"]

    @property
    def statuses(self) -> np.ndarray:
        return self.records["status"]

    @property
    def ctype_ids(self) -> np.ndarray:
        return self.records["ctype"]

    # -- string tables ------------------------------------------------
    def _decode_table(self, offset: int, count: int):
        offsets = np.frombuffer(self._mmap, dtype="<u8",
                                count=count + 1, offset=offset)
        blob_start = offset + 8 * (count + 1)
        blob = bytes(self._mmap[blob_start:
                                blob_start + int(offsets[-1])])
        bounds = offsets.tolist()
        strings = [blob[bounds[i]:bounds[i + 1]].decode("utf-8")
                   for i in range(count)]
        return strings, blob_start + int(offsets[-1])

    def urls(self) -> List[str]:
        """The interned url table, index = doc id (decoded lazily)."""
        if self._url_list is None:
            self._url_list, after = self._decode_table(
                self.header.strings_offset, self.header.n_urls)
            self._ctype_offset = after
        return self._url_list

    def content_types(self) -> List[str]:
        """The interned content-type table (id 0 means "none")."""
        if self._ctype_list is None:
            self.urls()
            self._ctype_list, _ = self._decode_table(
                self._ctype_offset, self.header.n_ctypes)
        return self._ctype_list

    # -- Trace-compatible surface ------------------------------------
    @property
    def request_count(self) -> int:
        return self.header.n_records

    def __len__(self) -> int:
        return self.header.n_records

    def __iter__(self) -> Iterator[Request]:
        return self.iter_requests()

    def __getitem__(self, index: int) -> Request:
        if isinstance(index, slice):
            return [self[i] for i
                    in range(*index.indices(len(self)))]
        row = self.records[index]
        urls = self.urls()
        ctypes = self.content_types()
        ct_id = int(row["ctype"])
        return Request(
            timestamp=float(row["timestamp"]),
            url=urls[int(row["doc"])],
            size=int(row["size"]),
            transfer_size=int(row["transfer"]),
            doc_type=DOCUMENT_TYPES[int(row["type"])],
            status=int(row["status"]),
            content_type=None if ct_id == 0 else ctypes[ct_id - 1])

    def iter_requests(self) -> Iterator[Request]:
        """Decode the records back into ``Request`` objects, in order.

        Chunked column decode keeps this within ~2x of iterating an
        in-memory ``Trace`` while never holding more than one block of
        objects.
        """
        urls = self.urls()
        ctypes = [None] + self.content_types()
        types = DOCUMENT_TYPES
        for start in range(0, len(self), _FLUSH_ROWS):
            block = self.records[start:start + _FLUSH_ROWS]
            rows = zip(block["timestamp"].tolist(),
                       block["size"].tolist(),
                       block["transfer"].tolist(),
                       block["doc"].tolist(),
                       block["ctype"].tolist(),
                       block["status"].tolist(),
                       block["type"].tolist())
            for ts, size, transfer, doc, ct, status, code in rows:
                yield Request(timestamp=ts, url=urls[doc], size=size,
                              transfer_size=transfer,
                              doc_type=types[code], status=status,
                              content_type=ctypes[ct])

    def metadata(self) -> TraceMetadata:
        """Table-1 aggregates straight from the header — O(1)."""
        return TraceMetadata(
            name=self.name,
            total_requests=self.header.n_records,
            distinct_documents=self.header.n_urls,
            total_size_bytes=self.header.total_size_bytes,
            requested_bytes=self.header.requested_bytes)

    def type_histogram(self) -> dict:
        """Per-type request counts and transfer bytes from the header."""
        return {doc_type: {"requests": self.header.type_requests[code],
                           "requested_bytes":
                               self.header.type_bytes[code]}
                for code, doc_type in enumerate(DOCUMENT_TYPES)}

    def close(self) -> None:
        """Release the mapping (best-effort while views are alive)."""
        self.records = None
        self._url_list = self._url_list  # decoded strings stay valid
        try:
            self._mmap.close()
        except BufferError:  # pragma: no cover - views still exported
            pass
        self._file.close()

    def __enter__(self) -> "ColumnarTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_columnar(path: PathLike,
                  verify: bool = True) -> ColumnarTrace:
    """Open a columnar trace file (header CRC always checked;
    ``verify=True`` additionally CRCs the record and string sections).
    """
    return ColumnarTrace(path, verify=verify)


def write_columnar(path: PathLike, requests: Iterable[Request],
                   name: Optional[str] = None) -> int:
    """Write requests to a columnar trace file; returns the count."""
    with ColumnarWriter(path, name=name) as writer:
        return writer.write_all(requests)


def convert_to_columnar(source: PathLike, dest: Optional[PathLike]
                        = None, fmt: Optional[str] = None,
                        name: Optional[str] = None,
                        max_errors: Optional[int] = None) -> Path:
    """Convert any readable trace file to columnar; returns the path.

    ``dest`` defaults to the source path with a ``.rcol`` suffix.
    Streaming: the source is decoded once with bounded memory.
    """
    from repro.trace.pipeline import iter_trace

    source = Path(source)
    if dest is None:
        stem = source.name
        for suffix in (".gz", ".csv", ".log", ".txt"):
            if stem.endswith(suffix):
                stem = stem[:-len(suffix)]
        dest = source.with_name(stem + COLUMNAR_SUFFIX)
    dest = Path(dest)
    with ColumnarWriter(dest, name=name or source.stem) as writer:
        writer.write_all(iter_trace(source, fmt=fmt,
                                    max_errors=max_errors))
    return dest


def inspect_columnar(path: PathLike) -> dict:
    """Header summary of a columnar trace as a plain dict (for CLIs)."""
    header = read_header(path)
    return {
        "path": str(path),
        "format_version": header.version,
        "min_reader": header.min_reader,
        "name": header.extra.get("name"),
        "requests": header.n_records,
        "distinct_documents": header.n_urls,
        "content_types": header.n_ctypes,
        "requested_bytes": header.requested_bytes,
        "total_size_bytes": header.total_size_bytes,
        "record_bytes": header.strings_offset - header.records_offset,
        "file_bytes": header.data_end,
        "types": {doc_type.value: {
            "requests": header.type_requests[code],
            "requested_bytes": header.type_bytes[code]}
            for code, doc_type in enumerate(DOCUMENT_TYPES)},
    }
