"""Command-line trace tools: ``python -m repro.trace``.

Subcommands::

    convert       raw log (squid/clf) -> canonical CSV trace
    characterize  Section-2 style tables for any trace file
    stats         one-line summary (requests, documents, bytes)
    generate      write a synthetic dfn-like / rtp-like trace

Examples::

    python -m repro.trace convert access.log trace.csv.gz
    python -m repro.trace characterize trace.csv.gz
    python -m repro.trace generate dfn --scale 0.001 -o small.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.characterize import characterize
from repro.analysis.tables import (
    render_breakdown_table,
    render_properties_table,
    render_statistics_table,
)
from repro.observability.logs import LOG_LEVELS, configure, get_logger
from repro.trace.pipeline import load_trace
from repro.trace.writer import write_trace
from repro.workload.generator import generate_trace
from repro.workload.profiles import profile_by_name

_logger = get_logger("trace.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Proxy trace tools.")
    parser.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="info",
        help="diagnostic verbosity on stderr (default: info)")
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines instead of text")
    commands = parser.add_subparsers(dest="command", required=True)

    convert = commands.add_parser(
        "convert", help="raw log -> canonical CSV trace")
    convert.add_argument("source", help="input log (squid/clf/csv)")
    convert.add_argument("target", help="output CSV path (.gz ok)")
    convert.add_argument("--format", dest="fmt", default=None,
                         choices=["squid", "clf", "csv"],
                         help="input format (default: auto-detect)")

    character = commands.add_parser(
        "characterize", help="print Table 1-5 style statistics")
    character.add_argument("source")
    character.add_argument("--format", dest="fmt", default=None,
                           choices=["squid", "clf", "csv"])
    character.add_argument("--no-locality", action="store_true",
                           help="skip the (slower) alpha/beta fits")

    stats = commands.add_parser("stats", help="one-line trace summary")
    stats.add_argument("source")
    stats.add_argument("--format", dest="fmt", default=None,
                       choices=["squid", "clf", "csv"])

    generate = commands.add_parser(
        "generate", help="write a synthetic trace")
    generate.add_argument("profile", choices=["dfn", "rtp"])
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--scale", type=float, default=1.0 / 512.0,
                          help="fraction of the real trace volume "
                               "(default 1/512)")
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--irm", action="store_true",
                          help="independent reference model placement")

    validate = commands.add_parser(
        "validate", help="sanity-check a trace, report findings")
    validate.add_argument("source")
    validate.add_argument("--format", dest="fmt", default=None,
                          choices=["squid", "clf", "csv"])

    twin = commands.add_parser(
        "twin", help="fit a profile to a trace and write a synthetic "
                     "twin with the same statistics")
    twin.add_argument("source", help="trace to model (any format)")
    twin.add_argument("-o", "--output", required=True,
                      help="output CSV path for the twin")
    twin.add_argument("--format", dest="fmt", default=None,
                      choices=["squid", "clf", "csv"])
    twin.add_argument("--scale", type=float, default=1.0,
                      help="twin volume relative to the source "
                           "(default 1.0)")
    twin.add_argument("--seed", type=int, default=42)
    return parser


def _cmd_convert(args) -> int:
    trace = load_trace(args.source, fmt=args.fmt)
    count = write_trace(args.target, trace)
    _logger.info("wrote %s requests to %s", f"{count:,}", args.target,
                 extra={"requests": count, "target": str(args.target)})
    return 0


def _cmd_characterize(args) -> int:
    trace = load_trace(args.source, fmt=args.fmt)
    char = characterize(trace,
                        estimate_locality=not args.no_locality)
    print(render_properties_table({trace.name: char},
                                  title="Trace properties"))
    print()
    print(render_breakdown_table(char,
                                 title="Breakdown by document type"))
    print()
    print(render_statistics_table(char,
                                  title="Sizes and temporal locality"))
    return 0


def _cmd_stats(args) -> int:
    trace = load_trace(args.source, fmt=args.fmt)
    meta = trace.metadata()
    print(f"{trace.name}: {meta.total_requests:,} requests, "
          f"{meta.distinct_documents:,} documents, "
          f"{meta.total_size_gb:.3f} GB distinct, "
          f"{meta.requested_gb:.3f} GB requested")
    return 0


def _cmd_generate(args) -> int:
    profile = profile_by_name(args.profile, scale=args.scale,
                              seed=args.seed)
    trace = generate_trace(profile,
                           temporal_model="irm" if args.irm else "gaps")
    count = write_trace(args.output, trace)
    _logger.info("wrote %s %s requests to %s", f"{count:,}",
                 profile.name, args.output,
                 extra={"requests": count, "profile": profile.name,
                        "target": str(args.output)})
    return 0


def _cmd_twin(args) -> int:
    from repro.workload.fitting import fidelity_report, fit_profile

    original = load_trace(args.source, fmt=args.fmt)
    profile = fit_profile(original, seed=args.seed)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    twin = generate_trace(profile)
    count = write_trace(args.output, twin)
    _logger.info("wrote %s-request synthetic twin of %s to %s",
                 f"{count:,}", args.source, args.output,
                 extra={"requests": count, "source": str(args.source),
                        "target": str(args.output)})
    if args.scale == 1.0:
        report = fidelity_report(original, twin)
        print("fidelity (max per-type deviation, percentage points): "
              f"documents {report['distinct_documents_max_dev']:.2f}, "
              f"requests {report['total_requests_max_dev']:.2f}, "
              f"bytes {report['requested_data_max_dev']:.2f}")
    return 0


def _cmd_validate(args) -> int:
    from repro.trace.validation import (
        Severity, render_findings, validate_trace)

    trace = load_trace(args.source, fmt=args.fmt)
    findings = validate_trace(trace)
    print(render_findings(findings))
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


_COMMANDS = {
    "convert": _cmd_convert,
    "characterize": _cmd_characterize,
    "stats": _cmd_stats,
    "generate": _cmd_generate,
    "twin": _cmd_twin,
    "validate": _cmd_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure(level=args.log_level, json_lines=args.log_json)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
