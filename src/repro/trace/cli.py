"""Command-line trace tools: ``python -m repro.trace``.

Subcommands::

    convert       any trace format -> canonical CSV or columnar
    inspect       O(1) header summary of a columnar trace
    characterize  Section-2 style tables for any trace file
    stats         one-line summary (requests, documents, bytes)
    generate      write a synthetic dfn-like / rtp-like trace

Examples::

    python -m repro.trace convert access.log trace.csv.gz
    python -m repro.trace convert trace.csv.gz trace.rcol
    python -m repro.trace inspect trace.rcol
    python -m repro.trace characterize trace.csv.gz
    python -m repro.trace generate dfn --scale 0.001 -o small.rcol
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.characterize import characterize
from repro.analysis.tables import (
    render_breakdown_table,
    render_properties_table,
    render_statistics_table,
)
from repro.observability.logs import LOG_LEVELS, configure, get_logger
from repro.trace.pipeline import load_trace
from repro.trace.writer import write_trace
from repro.workload.generator import generate_trace
from repro.workload.profiles import profile_by_name

_logger = get_logger("trace.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Proxy trace tools.")
    parser.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="info",
        help="diagnostic verbosity on stderr (default: info)")
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines instead of text")
    commands = parser.add_subparsers(dest="command", required=True)

    convert = commands.add_parser(
        "convert", help="any trace -> canonical CSV or columnar")
    convert.add_argument("source",
                         help="input trace (squid/clf/csv/columnar)")
    convert.add_argument("target",
                         help="output path (.gz ok, .rcol = columnar)")
    convert.add_argument("--format", dest="fmt", default=None,
                         choices=["squid", "clf", "csv", "columnar"],
                         help="input format (default: auto-detect)")
    convert.add_argument("--to", dest="to", default=None,
                         choices=["csv", "columnar"],
                         help="output format (default: from the "
                              "target suffix)")

    inspect = commands.add_parser(
        "inspect", help="O(1) header summary of a columnar trace")
    inspect.add_argument("source", help="columnar (.rcol) trace")
    inspect.add_argument("--json", action="store_true",
                         help="emit the summary as JSON")

    character = commands.add_parser(
        "characterize", help="print Table 1-5 style statistics")
    character.add_argument("source")
    character.add_argument("--format", dest="fmt", default=None,
                           choices=["squid", "clf", "csv", "columnar"])
    character.add_argument("--no-locality", action="store_true",
                           help="skip the (slower) alpha/beta fits")

    stats = commands.add_parser("stats", help="one-line trace summary")
    stats.add_argument("source")
    stats.add_argument("--format", dest="fmt", default=None,
                       choices=["squid", "clf", "csv", "columnar"])

    generate = commands.add_parser(
        "generate", help="write a synthetic trace")
    generate.add_argument("profile", choices=["dfn", "rtp"])
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--scale", type=float, default=1.0 / 512.0,
                          help="fraction of the real trace volume "
                               "(default 1/512)")
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--irm", action="store_true",
                          help="independent reference model placement")
    generate.add_argument("--trace-format", dest="trace_format",
                          default=None, choices=["csv", "columnar"],
                          help="output format (default: from the "
                               "output suffix, .rcol = columnar)")

    validate = commands.add_parser(
        "validate", help="sanity-check a trace, report findings")
    validate.add_argument("source")
    validate.add_argument("--format", dest="fmt", default=None,
                          choices=["squid", "clf", "csv", "columnar"])

    twin = commands.add_parser(
        "twin", help="fit a profile to a trace and write a synthetic "
                     "twin with the same statistics")
    twin.add_argument("source", help="trace to model (any format)")
    twin.add_argument("-o", "--output", required=True,
                      help="output CSV path for the twin")
    twin.add_argument("--format", dest="fmt", default=None,
                      choices=["squid", "clf", "csv", "columnar"])
    twin.add_argument("--scale", type=float, default=1.0,
                      help="twin volume relative to the source "
                           "(default 1.0)")
    twin.add_argument("--seed", type=int, default=42)
    return parser


def _target_format(explicit, path) -> str:
    from pathlib import Path

    from repro.trace.columnar import COLUMNAR_SUFFIX

    if explicit:
        return explicit
    return ("columnar" if Path(path).suffix == COLUMNAR_SUFFIX
            else "csv")


def _cmd_convert(args) -> int:
    to = _target_format(args.to, args.target)
    if to == "columnar":
        from repro.trace.columnar import (convert_to_columnar,
                                          read_header)

        dest = convert_to_columnar(args.source, args.target,
                                   fmt=args.fmt)
        count = read_header(dest).n_records
    else:
        trace = load_trace(args.source, fmt=args.fmt)
        count = write_trace(args.target, trace)
    _logger.info("wrote %s requests to %s", f"{count:,}", args.target,
                 extra={"requests": count, "target": str(args.target),
                        "format": to})
    return 0


def _cmd_inspect(args) -> int:
    import json as json_module

    from repro.trace.columnar import (ColumnarFormatError,
                                      inspect_columnar,
                                      is_columnar_file)

    if not is_columnar_file(args.source):
        print(f"{args.source}: not a columnar trace "
              f"(use `stats` for text formats)", file=sys.stderr)
        return 1
    try:
        summary = inspect_columnar(args.source)
    except ColumnarFormatError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps(summary, indent=2))
        return 0
    print(f"{summary['name']}: columnar v{summary['format_version']}, "
          f"{summary['requests']:,} requests, "
          f"{summary['distinct_documents']:,} documents, "
          f"{summary['total_size_bytes'] / 1e9:.3f} GB distinct, "
          f"{summary['requested_bytes'] / 1e9:.3f} GB requested")
    for doc_type, row in summary["types"].items():
        print(f"  {doc_type:<12} {row['requests']:>10,} requests  "
              f"{row['requested_bytes'] / 1e6:>12,.1f} MB")
    return 0


def _cmd_characterize(args) -> int:
    trace = load_trace(args.source, fmt=args.fmt)
    char = characterize(trace,
                        estimate_locality=not args.no_locality)
    print(render_properties_table({trace.name: char},
                                  title="Trace properties"))
    print()
    print(render_breakdown_table(char,
                                 title="Breakdown by document type"))
    print()
    print(render_statistics_table(char,
                                  title="Sizes and temporal locality"))
    return 0


def _cmd_stats(args) -> int:
    from repro.trace.columnar import is_columnar_file, open_columnar

    if args.fmt in (None, "columnar") and is_columnar_file(args.source):
        # Columnar headers carry the aggregates: no decode needed.
        with open_columnar(args.source, verify=False) as trace:
            meta = trace.metadata()
    else:
        trace = load_trace(args.source, fmt=args.fmt)
        meta = trace.metadata()
    print(f"{trace.name}: {meta.total_requests:,} requests, "
          f"{meta.distinct_documents:,} documents, "
          f"{meta.total_size_gb:.3f} GB distinct, "
          f"{meta.requested_gb:.3f} GB requested")
    return 0


def _cmd_generate(args) -> int:
    profile = profile_by_name(args.profile, scale=args.scale,
                              seed=args.seed)
    trace = generate_trace(profile,
                           temporal_model="irm" if args.irm else "gaps")
    if _target_format(args.trace_format, args.output) == "columnar":
        from repro.trace.columnar import write_columnar

        count = write_columnar(args.output, trace.requests,
                               name=trace.name)
    else:
        count = write_trace(args.output, trace)
    _logger.info("wrote %s %s requests to %s", f"{count:,}",
                 profile.name, args.output,
                 extra={"requests": count, "profile": profile.name,
                        "target": str(args.output)})
    return 0


def _cmd_twin(args) -> int:
    from repro.workload.fitting import fidelity_report, fit_profile

    original = load_trace(args.source, fmt=args.fmt)
    profile = fit_profile(original, seed=args.seed)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    twin = generate_trace(profile)
    count = write_trace(args.output, twin)
    _logger.info("wrote %s-request synthetic twin of %s to %s",
                 f"{count:,}", args.source, args.output,
                 extra={"requests": count, "source": str(args.source),
                        "target": str(args.output)})
    if args.scale == 1.0:
        report = fidelity_report(original, twin)
        print("fidelity (max per-type deviation, percentage points): "
              f"documents {report['distinct_documents_max_dev']:.2f}, "
              f"requests {report['total_requests_max_dev']:.2f}, "
              f"bytes {report['requested_data_max_dev']:.2f}")
    return 0


def _cmd_validate(args) -> int:
    from repro.trace.validation import (
        Severity, render_findings, validate_trace)

    trace = load_trace(args.source, fmt=args.fmt)
    findings = validate_trace(trace)
    print(render_findings(findings))
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


_COMMANDS = {
    "convert": _cmd_convert,
    "inspect": _cmd_inspect,
    "characterize": _cmd_characterize,
    "stats": _cmd_stats,
    "generate": _cmd_generate,
    "twin": _cmd_twin,
    "validate": _cmd_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure(level=args.log_level, json_lines=args.log_json)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
