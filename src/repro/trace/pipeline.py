"""End-to-end trace preprocessing pipeline.

Composes the cacheability filter, document-type classification, and
document/transfer-size reconstruction into a single streaming
transformation from raw :class:`~repro.trace.record.LogRecord` objects to
simulation-ready :class:`~repro.types.Request` objects — the paper's
Section 2 preprocessing in one call.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.errors import TraceFormatError
from repro.observability.logs import get_logger
from repro.observability.profiling import phase_timer
from repro.trace.classify import classify
from repro.trace.modification import ModificationDetector, ModificationPolicy
from repro.trace.preprocess import CacheabilityFilter
from repro.trace.reader import open_trace
from repro.trace.record import LogRecord
from repro.types import Request, Trace

PathLike = Union[str, Path]

_logger = get_logger("trace.pipeline")


class TracePipeline:
    """Raw log records → preprocessed cacheable request stream.

    The pipeline:

    1. drops uncacheable records (:class:`CacheabilityFilter`);
    2. classifies each record into a document type (MIME header first,
       URL extension fallback);
    3. reconstructs full document sizes from logged transfer sizes with
       the :class:`ModificationDetector`, so every emitted request
       carries both ``size`` (canonical full size) and ``transfer_size``
       (logged bytes).

    Note the pipeline's detector only *reconstructs sizes*; the simulator
    runs its own detector over the emitted requests to decide
    modification misses, exactly as the paper's simulator processes the
    trace directly.
    """

    def __init__(self,
                 cacheability: Optional[CacheabilityFilter] = None,
                 modification_tolerance: float = 0.05,
                 modification_policy: ModificationPolicy = ModificationPolicy.PAPER):
        self.cacheability = cacheability or CacheabilityFilter()
        self.detector = ModificationDetector(
            tolerance=modification_tolerance, policy=modification_policy)

    def process(self, records: Iterable[LogRecord]) -> Iterator[Request]:
        """Stream preprocessed requests from raw records."""
        for record in records:
            if not self.cacheability.accepts(record):
                continue
            doc_type = classify(record.url, record.content_type)
            observation = self.detector.observe(record.url, record.size)
            yield Request(
                timestamp=record.timestamp,
                url=record.url,
                size=observation.document_size,
                transfer_size=min(record.size, observation.document_size),
                doc_type=doc_type,
                status=record.status,
                content_type=record.content_type,
            )


def iter_trace(path: PathLike, fmt: Optional[str] = None,
               pipeline: Optional[TracePipeline] = None,
               max_errors: Optional[int] = None,
               on_error: Optional[Callable[[TraceFormatError], None]]
               = None) -> Iterator[Request]:
    """Stream preprocessed requests from a trace file, bounded memory.

    The lazy sibling of :func:`load_trace`: decodes (and, for raw-log
    formats, preprocesses) one record at a time without materializing
    the trace, so a multi-million-request log can drive a simulation
    pass directly.  Each call opens the file afresh and, for raw
    formats, runs a fresh :class:`TracePipeline`, so repeated passes
    see identical request streams.
    """
    stream = open_trace(path, fmt=fmt, max_errors=max_errors,
                        on_error=on_error)
    first = next(stream, None)
    if first is None:
        return
    if isinstance(first, Request):
        yield first
        yield from stream
        return
    pipeline = pipeline or TracePipeline()

    def _records():
        yield first
        yield from stream
    yield from pipeline.process(_records())


#: Sidecar suffix for cached request counts of text-format traces.
COUNT_SIDECAR_SUFFIX = ".rcount"


def _sidecar_path(path: Path) -> Path:
    return path.with_name(path.name + COUNT_SIDECAR_SUFFIX)


def _read_count_sidecar(path: Path, fmt: str) -> Optional[int]:
    """Cached count for ``path``, or None when absent/stale."""
    import json

    sidecar = _sidecar_path(path)
    try:
        cached = json.loads(sidecar.read_text(encoding="utf-8"))
        stat = path.stat()
    except (OSError, ValueError):
        return None
    if (cached.get("fmt") == fmt
            and cached.get("size") == stat.st_size
            and cached.get("mtime_ns") == stat.st_mtime_ns
            and isinstance(cached.get("count"), int)):
        return cached["count"]
    return None


def _write_count_sidecar(path: Path, fmt: str, count: int) -> None:
    """Best-effort: a read-only trace directory is not an error."""
    import json

    try:
        stat = path.stat()
        _sidecar_path(path).write_text(json.dumps({
            "count": count, "fmt": fmt, "size": stat.st_size,
            "mtime_ns": stat.st_mtime_ns}), encoding="utf-8")
    except OSError:  # pragma: no cover - read-only trace directory
        pass


def count_requests(path: PathLike, fmt: Optional[str] = None) -> int:
    """Number of requests a streaming pass over ``path`` yields.

    Columnar traces answer from the header in O(1).  Text formats pay
    a counting pass once and cache the result in a ``.rcount`` sidecar
    keyed on file size and mtime, so progress/ETA setup stops costing
    a full decode on every run: csv counts raw lines, raw-log formats
    must run the full pipeline because cacheability filtering drops
    records.
    """
    from repro.trace.columnar import is_columnar_file, read_header
    from repro.trace.reader import _open_text, detect_format

    path = Path(path)
    if fmt == "columnar" or (fmt is None and is_columnar_file(path)):
        return read_header(path).n_records
    if fmt is None:
        with _open_text(path) as stream:
            first = stream.readline()
            while first and not first.strip():
                first = stream.readline()
            if not first:
                return 0
            fmt = detect_format(first)
    cached = _read_count_sidecar(path, fmt)
    if cached is not None:
        return cached
    if fmt == "csv":
        with _open_text(path) as stream:
            lines = sum(1 for line in stream if line.strip())
        count = max(lines - 1, 0)   # minus the header row
    else:
        count = sum(1 for _ in iter_trace(path, fmt=fmt))
    _write_count_sidecar(path, fmt, count)
    return count


def load_trace(path: PathLike, fmt: Optional[str] = None,
               name: Optional[str] = None,
               pipeline: Optional[TracePipeline] = None,
               max_errors: Optional[int] = None,
               on_error: Optional[Callable[[TraceFormatError], None]]
               = None) -> Trace:
    """Load a trace file into memory, preprocessing raw logs on the way.

    Canonical csv traces are loaded verbatim (they are already
    preprocessed); squid and clf logs run through a
    :class:`TracePipeline` first.  ``max_errors`` / ``on_error`` bound
    and surface malformed-line skips (see
    :func:`~repro.trace.reader.open_trace`).
    """
    path = Path(path)
    with phase_timer("trace_load", metric="trace_load_seconds"):
        trace = _load(path, fmt, name, pipeline, max_errors, on_error)
    _logger.debug("loaded trace %s: %d requests", trace.name,
                  len(trace.requests),
                  extra={"trace": trace.name, "path": str(path),
                         "requests": len(trace.requests)})
    return trace


def _load(path: Path, fmt, name, pipeline, max_errors,
          on_error) -> Trace:
    stream = open_trace(path, fmt=fmt, max_errors=max_errors,
                        on_error=on_error)
    first = next(stream, None)
    if first is None:
        return Trace([], name=name or path.stem)
    if isinstance(first, Request):
        def _requests():
            yield first
            yield from stream
        return Trace(_requests(), name=name or path.stem)

    pipeline = pipeline or TracePipeline()

    def _records():
        yield first
        yield from stream
    return Trace(pipeline.process(_records()), name=name or path.stem)
