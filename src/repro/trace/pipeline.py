"""End-to-end trace preprocessing pipeline.

Composes the cacheability filter, document-type classification, and
document/transfer-size reconstruction into a single streaming
transformation from raw :class:`~repro.trace.record.LogRecord` objects to
simulation-ready :class:`~repro.types.Request` objects — the paper's
Section 2 preprocessing in one call.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.errors import TraceFormatError
from repro.observability.logs import get_logger
from repro.observability.profiling import phase_timer
from repro.trace.classify import classify
from repro.trace.modification import ModificationDetector, ModificationPolicy
from repro.trace.preprocess import CacheabilityFilter
from repro.trace.reader import open_trace
from repro.trace.record import LogRecord
from repro.types import Request, Trace

PathLike = Union[str, Path]

_logger = get_logger("trace.pipeline")


class TracePipeline:
    """Raw log records → preprocessed cacheable request stream.

    The pipeline:

    1. drops uncacheable records (:class:`CacheabilityFilter`);
    2. classifies each record into a document type (MIME header first,
       URL extension fallback);
    3. reconstructs full document sizes from logged transfer sizes with
       the :class:`ModificationDetector`, so every emitted request
       carries both ``size`` (canonical full size) and ``transfer_size``
       (logged bytes).

    Note the pipeline's detector only *reconstructs sizes*; the simulator
    runs its own detector over the emitted requests to decide
    modification misses, exactly as the paper's simulator processes the
    trace directly.
    """

    def __init__(self,
                 cacheability: Optional[CacheabilityFilter] = None,
                 modification_tolerance: float = 0.05,
                 modification_policy: ModificationPolicy = ModificationPolicy.PAPER):
        self.cacheability = cacheability or CacheabilityFilter()
        self.detector = ModificationDetector(
            tolerance=modification_tolerance, policy=modification_policy)

    def process(self, records: Iterable[LogRecord]) -> Iterator[Request]:
        """Stream preprocessed requests from raw records."""
        for record in records:
            if not self.cacheability.accepts(record):
                continue
            doc_type = classify(record.url, record.content_type)
            observation = self.detector.observe(record.url, record.size)
            yield Request(
                timestamp=record.timestamp,
                url=record.url,
                size=observation.document_size,
                transfer_size=min(record.size, observation.document_size),
                doc_type=doc_type,
                status=record.status,
                content_type=record.content_type,
            )


def iter_trace(path: PathLike, fmt: Optional[str] = None,
               pipeline: Optional[TracePipeline] = None,
               max_errors: Optional[int] = None,
               on_error: Optional[Callable[[TraceFormatError], None]]
               = None) -> Iterator[Request]:
    """Stream preprocessed requests from a trace file, bounded memory.

    The lazy sibling of :func:`load_trace`: decodes (and, for raw-log
    formats, preprocesses) one record at a time without materializing
    the trace, so a multi-million-request log can drive a simulation
    pass directly.  Each call opens the file afresh and, for raw
    formats, runs a fresh :class:`TracePipeline`, so repeated passes
    see identical request streams.
    """
    stream = open_trace(path, fmt=fmt, max_errors=max_errors,
                        on_error=on_error)
    first = next(stream, None)
    if first is None:
        return
    if isinstance(first, Request):
        yield first
        yield from stream
        return
    pipeline = pipeline or TracePipeline()

    def _records():
        yield first
        yield from stream
    yield from pipeline.process(_records())


def count_requests(path: PathLike, fmt: Optional[str] = None) -> int:
    """Number of requests a streaming pass over ``path`` yields.

    Canonical csv traces are counted from the raw line count (one data
    line per request — no decode needed); raw-log formats must run the
    full pipeline because cacheability filtering drops records.
    """
    from repro.trace.reader import _open_text, detect_format

    path = Path(path)
    if fmt is None:
        with _open_text(path) as stream:
            first = stream.readline()
            while first and not first.strip():
                first = stream.readline()
            if not first:
                return 0
            fmt = detect_format(first)
    if fmt == "csv":
        with _open_text(path) as stream:
            lines = sum(1 for line in stream if line.strip())
        return max(lines - 1, 0)   # minus the header row
    return sum(1 for _ in iter_trace(path, fmt=fmt))


def load_trace(path: PathLike, fmt: Optional[str] = None,
               name: Optional[str] = None,
               pipeline: Optional[TracePipeline] = None,
               max_errors: Optional[int] = None,
               on_error: Optional[Callable[[TraceFormatError], None]]
               = None) -> Trace:
    """Load a trace file into memory, preprocessing raw logs on the way.

    Canonical csv traces are loaded verbatim (they are already
    preprocessed); squid and clf logs run through a
    :class:`TracePipeline` first.  ``max_errors`` / ``on_error`` bound
    and surface malformed-line skips (see
    :func:`~repro.trace.reader.open_trace`).
    """
    path = Path(path)
    with phase_timer("trace_load", metric="trace_load_seconds"):
        trace = _load(path, fmt, name, pipeline, max_errors, on_error)
    _logger.debug("loaded trace %s: %d requests", trace.name,
                  len(trace.requests),
                  extra={"trace": trace.name, "path": str(path),
                         "requests": len(trace.requests)})
    return trace


def _load(path: Path, fmt, name, pipeline, max_errors,
          on_error) -> Trace:
    stream = open_trace(path, fmt=fmt, max_errors=max_errors,
                        on_error=on_error)
    first = next(stream, None)
    if first is None:
        return Trace([], name=name or path.stem)
    if isinstance(first, Request):
        def _requests():
            yield first
            yield from stream
        return Trace(_requests(), name=name or path.stem)

    pipeline = pipeline or TracePipeline()

    def _records():
        yield first
        yield from stream
    return Trace(pipeline.process(_records()), name=name or path.stem)
