"""Squid native access.log parsing and formatting.

The Squid native format, used by the NLANR sanitized traces the paper's
RTP workload comes from, is a whitespace-separated line::

    timestamp elapsed client action/code size method URL ident hierarchy/from content-type

Example::

    981172094.106 1523 10.0.0.1 TCP_MISS/200 4158 GET http://a.com/x.gif - DIRECT/a.com image/gif
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.errors import TraceFormatError
from repro.trace.budget import ErrorBudget
from repro.trace.record import LogRecord


class SquidParser:
    """Streaming parser for Squid native access.log lines."""

    #: Format name used by auto-detection.
    name = "squid"

    def __init__(self, strict: bool = False,
                 max_errors: Optional[int] = None,
                 on_error: Optional[Callable[[TraceFormatError], None]]
                 = None):
        """strict=True raises on malformed lines instead of skipping
        them; otherwise skips are counted against ``max_errors`` and
        surfaced through ``on_error`` (see
        :class:`~repro.trace.budget.ErrorBudget`)."""
        self.strict = strict
        self._budget = ErrorBudget(strict=strict, max_errors=max_errors,
                                   on_error=on_error)

    def parse_line(self, line: str, line_number: int = 0) -> Optional[LogRecord]:
        """Parse one line; returns None for blank/comment lines.

        Raises :class:`TraceFormatError` on malformed lines in strict
        mode; otherwise counts them in :attr:`skipped` and returns None.
        """
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return None
        fields = stripped.split()
        if len(fields) < 7:
            return self._bad(line_number, line, "expected >= 7 fields")
        try:
            timestamp = float(fields[0])
            elapsed = int(fields[1])
            action_code = fields[3]
            size = int(fields[4])
            method = fields[5]
            url = fields[6]
        except ValueError as exc:
            return self._bad(line_number, line, str(exc))
        if "/" not in action_code:
            return self._bad(line_number, line, "malformed action/code")
        try:
            status = int(action_code.rsplit("/", 1)[1])
        except ValueError:
            return self._bad(line_number, line, "non-numeric status code")
        content_type = fields[9] if len(fields) > 9 else None
        if content_type in ("-", ""):
            content_type = None
        return LogRecord(
            timestamp=timestamp,
            url=url,
            status=status,
            size=size,
            method=method,
            content_type=content_type,
            client=fields[2],
            elapsed_ms=elapsed,
        )

    def parse(self, lines: Iterable[str]) -> Iterator[LogRecord]:
        """Parse an iterable of lines, yielding records."""
        for number, line in enumerate(lines, start=1):
            record = self.parse_line(line, number)
            if record is not None:
                yield record

    @property
    def skipped(self) -> int:
        """Malformed lines skipped so far (lenient mode)."""
        return self._budget.errors

    def _bad(self, line_number: int, line: str, reason: str) -> None:
        self._budget.record(TraceFormatError(reason, line_number, line))
        return None

    @staticmethod
    def sniff(line: str) -> bool:
        """Heuristic: does this line look like Squid native format?"""
        fields = line.split()
        if len(fields) < 7:
            return False
        try:
            float(fields[0])
            int(fields[1])
            int(fields[4])
        except ValueError:
            return False
        return "/" in fields[3]


def format_squid_line(record: LogRecord, action: str = "TCP_MISS",
                      hierarchy: str = "DIRECT/-") -> str:
    """Render a record back into a Squid native log line."""
    return (
        f"{record.timestamp:.3f} {record.elapsed_ms or 0} "
        f"{record.client or '-'} {action}/{record.status} {record.size} "
        f"{record.method} {record.url} - {hierarchy} "
        f"{record.content_type or '-'}"
    )
