"""Shared malformed-line accounting for the trace parsers.

Real proxy logs are dirty: truncated lines, binary garbage from log
rotation, mid-write crashes.  Lenient parsing (``strict=False``) must
not turn into *silent* data loss, so every parser routes its bad
lines through an :class:`ErrorBudget`: malformed lines are counted,
optionally quarantined via a callback, and — when ``max_errors`` is
set — the parse aborts once the budget is exhausted instead of
happily skipping half the trace.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import TraceFormatError
from repro.observability import events as _events
from repro.observability.logs import get_logger
from repro.observability.metrics import get_registry

_logger = get_logger("trace.budget")


class ErrorBudget:
    """Counts malformed lines and enforces an optional cap.

    Args:
        strict: Raise on the first malformed line (no budget at all).
        max_errors: Abort with :class:`~repro.errors.TraceFormatError`
            once more than this many lines are malformed.  ``None``
            (the default) allows any number, preserving the historical
            lenient behaviour — but still counted and observable.
        on_error: Quarantine callback invoked with each
            :class:`~repro.errors.TraceFormatError` before it is
            swallowed; use it to log or persist the offending lines.
    """

    def __init__(self, strict: bool = False,
                 max_errors: Optional[int] = None,
                 on_error: Optional[Callable[[TraceFormatError], None]]
                 = None):
        if max_errors is not None and max_errors < 0:
            raise TraceFormatError("max_errors must be >= 0")
        self.strict = strict
        self.max_errors = max_errors
        self.on_error = on_error
        self.errors = 0

    def record(self, error: TraceFormatError) -> None:
        """Account for one malformed line.

        Raises the error itself in strict mode; raises a budget-
        exhaustion :class:`~repro.errors.TraceFormatError` when the
        cap is crossed; otherwise counts the line and notifies the
        quarantine callback.
        """
        if self.strict:
            raise error
        self.errors += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("trace_malformed_lines_total").inc()
        _events.emit("trace_line_quarantined", error=str(error))
        _logger.debug("malformed trace line quarantined: %s", error,
                      extra={"errors": self.errors})
        if self.on_error is not None:
            self.on_error(error)
        if self.max_errors is not None and self.errors > self.max_errors:
            _events.emit("trace_error_budget_exhausted",
                         errors=self.errors)
            _logger.error(
                "trace error budget exhausted after %d malformed "
                "lines (max_errors=%d)", self.errors, self.max_errors,
                extra={"errors": self.errors,
                       "max_errors": self.max_errors})
            raise TraceFormatError(
                f"error budget exhausted: {self.errors} malformed "
                f"lines (max_errors={self.max_errors}); last: {error}"
            ) from error
