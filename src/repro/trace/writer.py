"""Trace writing helpers."""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Union

from repro.trace.columnar import COLUMNAR_SUFFIX, write_columnar
from repro.trace.csvtrace import CsvTraceWriter
from repro.types import Request

PathLike = Union[str, Path]


def write_trace(path: PathLike, requests: Iterable[Request]) -> int:
    """Write requests to a trace file; returns the count.

    The format follows the suffix: ``.rcol`` writes the binary columnar
    format (:mod:`repro.trace.columnar`), anything else the canonical
    CSV format.  ``.gz`` CSV paths are compressed transparently.
    """
    path = Path(path)
    if path.suffix == COLUMNAR_SUFFIX:
        return write_columnar(path, requests)
    if path.suffix == ".gz":
        with gzip.open(path, "wb") as binary:
            with io.TextIOWrapper(binary, encoding="utf-8") as stream:
                return CsvTraceWriter(stream).write_all(requests)
    with open(path, "w", encoding="utf-8") as stream:
        return CsvTraceWriter(stream).write_all(requests)
