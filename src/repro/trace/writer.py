"""Trace writing helpers."""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Union

from repro.trace.csvtrace import CsvTraceWriter
from repro.types import Request

PathLike = Union[str, Path]


def write_trace(path: PathLike, requests: Iterable[Request]) -> int:
    """Write requests to a canonical CSV trace file; returns the count.

    ``.gz`` paths are compressed transparently.
    """
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "wb") as binary:
            with io.TextIOWrapper(binary, encoding="utf-8") as stream:
                return CsvTraceWriter(stream).write_all(requests)
    with open(path, "w", encoding="utf-8") as stream:
        return CsvTraceWriter(stream).write_all(requests)
