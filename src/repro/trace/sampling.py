"""Trace manipulation: filtering, thinning, splitting, interleaving.

Workload studies constantly need derived traces — one document type
only, a deterministic 1-in-N thinning for quick experiments, a
time-range slice, or several traces merged on their timestamps (e.g.
to feed the hierarchy simulator populations with distinct interests).
All functions are pure and deterministic.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.types import DocumentType, Request, Trace


def filter_by_type(trace: Iterable[Request],
                   doc_type: DocumentType,
                   name: Optional[str] = None) -> Trace:
    """The sub-trace of one document type (order preserved)."""
    requests = [r for r in trace if r.doc_type is doc_type]
    base = getattr(trace, "name", "trace")
    return Trace(requests, name=name or f"{base}-{doc_type.value}")


def filter_requests(trace: Iterable[Request],
                    predicate: Callable[[Request], bool],
                    name: Optional[str] = None) -> Trace:
    """Generic predicate filter."""
    requests = [r for r in trace if predicate(r)]
    base = getattr(trace, "name", "trace")
    return Trace(requests, name=name or f"{base}-filtered")


def head(trace: Sequence[Request], n_requests: int,
         name: Optional[str] = None) -> Trace:
    """The first ``n_requests`` requests."""
    if n_requests < 0:
        raise ConfigurationError("n_requests must be non-negative")
    requests = list(trace[:n_requests])
    base = getattr(trace, "name", "trace")
    return Trace(requests, name=name or f"{base}-head{n_requests}")


def thin(trace: Sequence[Request], keep_one_in: int,
         offset: int = 0, name: Optional[str] = None) -> Trace:
    """Deterministic 1-in-N thinning (every ``keep_one_in``-th request).

    Thinning preserves each document's identity and relative request
    order, so popularity ranks survive; reuse distances shrink by
    roughly the thinning factor — which is why thinned traces need
    proportionally smaller caches for comparable hit rates.
    """
    if keep_one_in < 1:
        raise ConfigurationError("keep_one_in must be >= 1")
    requests = [r for i, r in enumerate(trace)
                if (i - offset) % keep_one_in == 0]
    base = getattr(trace, "name", "trace")
    return Trace(requests, name=name or f"{base}-thin{keep_one_in}")


def sample(trace: Sequence[Request], fraction: float,
           seed: int = 0, name: Optional[str] = None) -> Trace:
    """Independent per-request sampling with the given probability."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError("fraction must be in (0, 1]")
    rng = random.Random(seed)
    requests = [r for r in trace if rng.random() < fraction]
    base = getattr(trace, "name", "trace")
    return Trace(requests, name=name or f"{base}-sample{fraction:g}")


def time_slice(trace: Iterable[Request], start: float, end: float,
               name: Optional[str] = None) -> Trace:
    """Requests with ``start <= timestamp < end``."""
    if end <= start:
        raise ConfigurationError("end must exceed start")
    requests = [r for r in trace if start <= r.timestamp < end]
    base = getattr(trace, "name", "trace")
    return Trace(requests, name=name or f"{base}-slice")


def split(trace: Sequence[Request], fractions: Sequence[float]
          ) -> List[Trace]:
    """Split a trace into consecutive segments by request count.

    ``fractions`` must sum to 1; the last segment absorbs rounding.
    """
    if not fractions:
        raise ConfigurationError("need at least one fraction")
    if any(f <= 0 for f in fractions):
        raise ConfigurationError("fractions must be positive")
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ConfigurationError("fractions must sum to 1")
    base = getattr(trace, "name", "trace")
    pieces: List[Trace] = []
    start = 0
    total = len(trace)
    for index, fraction in enumerate(fractions):
        if index == len(fractions) - 1:
            stop = total
        else:
            stop = start + int(total * fraction)
        pieces.append(Trace(list(trace[start:stop]),
                            name=f"{base}-part{index}"))
        start = stop
    return pieces


def anonymize(trace: Iterable[Request], salt: str,
              name: Optional[str] = None) -> Trace:
    """Replace URLs with salted hashes (privacy-preserving sharing).

    Identity is all a cache study needs from a URL; the salted
    BLAKE2 digest preserves it (same URL → same token, per salt)
    while destroying the original.  The token depends on the URL
    alone — not on the document type, which real logs occasionally
    report inconsistently for one URL and which travels separately in
    each request anyway.  Sizes and timing are untouched (NLANR's
    sanitized traces take the same approach).  Without the salt the
    mapping is not practically invertible for non-enumerable URL
    spaces.
    """
    if not salt:
        raise ConfigurationError("an empty salt defeats anonymization")
    requests = []
    for request in trace:
        digest = hashlib.blake2b(
            (salt + request.url).encode("utf-8"),
            digest_size=12).hexdigest()
        requests.append(Request(
            timestamp=request.timestamp,
            url=f"anon://{digest}",
            size=request.size,
            transfer_size=request.transfer_size,
            doc_type=request.doc_type,
            status=request.status,
            content_type=request.content_type,
        ))
    base = getattr(trace, "name", "trace")
    return Trace(requests, name=name or f"{base}-anon")


def interleave(traces: Sequence[Trace], prefix_urls: bool = True,
               name: str = "interleaved") -> Trace:
    """Merge traces by timestamp into one stream.

    With ``prefix_urls`` (default) each source's URLs get a distinct
    prefix so the merged populations do not collide — the right setup
    for modelling independent user populations; pass False to model
    shared documents.
    """
    if not traces:
        raise ConfigurationError("need at least one trace")

    def _stream(index: int, trace: Trace) -> Iterator[Request]:
        for request in trace:
            if prefix_urls:
                yield Request(
                    timestamp=request.timestamp,
                    url=f"src{index}/{request.url}",
                    size=request.size,
                    transfer_size=request.transfer_size,
                    doc_type=request.doc_type,
                    status=request.status,
                    content_type=request.content_type,
                )
            else:
                yield request

    merged = heapq.merge(
        *(_stream(i, t) for i, t in enumerate(traces)),
        key=lambda r: r.timestamp)
    return Trace(merged, name=name)
