"""Cacheability preprocessing (paper Section 2).

The paper excludes uncacheable documents "by commonly known heuristics,
e.g. by looking for string cgi or ? in the requested URL", then keeps only
responses with HTTP status codes 200 (OK), 203 (Non-Authoritative
Information), 206 (Partial Content), 300 (Multiple Choices), 301 (Moved
Permanently), 302 (Found), and 304 (Not Modified), following Arlitt et
al., Cao & Irani, and Jin & Bestavros.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.trace.record import LogRecord

#: Status codes the paper treats as cacheable responses.
CACHEABLE_STATUS_CODES = frozenset({200, 203, 206, 300, 301, 302, 304})

#: URL substrings that signal dynamically generated, uncacheable content.
UNCACHEABLE_URL_MARKERS = ("cgi", "?")

#: Methods that can produce cacheable responses.
CACHEABLE_METHODS = frozenset({"GET"})


def is_uncacheable_url(url: str,
                       markers: Sequence[str] = UNCACHEABLE_URL_MARKERS) -> bool:
    """True when the URL matches the dynamic-content heuristics."""
    lowered = url.lower()
    return any(marker in lowered for marker in markers)


def is_cacheable_status(status: int) -> bool:
    """True for the paper's cacheable status-code set."""
    return status in CACHEABLE_STATUS_CODES


@dataclass
class PreprocessStats:
    """Counts of records seen and dropped, by reason."""

    seen: int = 0
    kept: int = 0
    dropped_url: int = 0
    dropped_status: int = 0
    dropped_method: int = 0
    dropped_empty: int = 0


@dataclass
class CacheabilityFilter:
    """Composable record filter implementing the paper's preprocessing.

    Attributes:
        url_markers: Substrings that mark a URL uncacheable.
        status_codes: Admissible response status codes.
        methods: Admissible request methods.
        drop_zero_size: Drop records whose logged size is zero; a
            zero-byte response carries no cacheable payload (this mirrors
            the common practice in the cited workload studies).
    """

    url_markers: Sequence[str] = UNCACHEABLE_URL_MARKERS
    status_codes: frozenset = CACHEABLE_STATUS_CODES
    methods: frozenset = CACHEABLE_METHODS
    drop_zero_size: bool = True
    stats: PreprocessStats = field(default_factory=PreprocessStats)

    def accepts(self, record: LogRecord) -> bool:
        """Decide one record, updating drop statistics."""
        self.stats.seen += 1
        if record.method not in self.methods:
            self.stats.dropped_method += 1
            return False
        if is_uncacheable_url(record.url, self.url_markers):
            self.stats.dropped_url += 1
            return False
        if record.status not in self.status_codes:
            self.stats.dropped_status += 1
            return False
        if self.drop_zero_size and record.size <= 0:
            self.stats.dropped_empty += 1
            return False
        self.stats.kept += 1
        return True

    def filter(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Stream the records that pass all checks."""
        for record in records:
            if self.accepts(record):
                yield record
