"""Canonical CSV trace format.

This is the library's native, lossless on-disk representation of a
*preprocessed* request stream — the format the synthetic generator writes
and the simulator reads back.  Unlike raw logs it carries both the full
document size and the transfer size, plus the resolved document type, so
no re-classification or modification reconstruction is needed on load.

Header line::

    timestamp,url,size,transfer_size,doc_type,status,content_type

``content_type`` may be empty.
"""

from __future__ import annotations

import csv
import io
from typing import IO, Callable, Iterable, Iterator, Optional

from repro.errors import TraceFormatError
from repro.trace.budget import ErrorBudget
from repro.types import DocumentType, Request

HEADER = ["timestamp", "url", "size", "transfer_size",
          "doc_type", "status", "content_type"]


class CsvTraceParser:
    """Streaming parser for the canonical CSV trace format.

    Unlike the raw-log parsers this one yields fully-formed
    :class:`~repro.types.Request` objects.
    """

    name = "csv"

    def __init__(self, strict: bool = True,
                 max_errors: Optional[int] = None,
                 on_error: Optional[Callable[[TraceFormatError], None]]
                 = None):
        self.strict = strict
        self._budget = ErrorBudget(strict=strict, max_errors=max_errors,
                                   on_error=on_error)

    def parse(self, lines: Iterable[str]) -> Iterator[Request]:
        reader = csv.reader(lines)
        for number, row in enumerate(reader, start=1):
            if not row:
                continue
            if number == 1 and row[0] == "timestamp":
                if row != HEADER:
                    raise TraceFormatError(
                        f"unexpected CSV header {row!r}", number)
                continue
            request = self._parse_row(row, number)
            if request is not None:
                yield request

    def _parse_row(self, row, number: int) -> Optional[Request]:
        if len(row) != len(HEADER):
            return self._bad(number, f"expected {len(HEADER)} columns, "
                                     f"got {len(row)}")
        try:
            return Request(
                timestamp=float(row[0]),
                url=row[1],
                size=int(row[2]),
                transfer_size=int(row[3]),
                doc_type=DocumentType(row[4]),
                status=int(row[5]),
                content_type=row[6] or None,
            )
        except ValueError as exc:
            return self._bad(number, str(exc))

    @property
    def skipped(self) -> int:
        """Malformed rows skipped so far (lenient mode)."""
        return self._budget.errors

    def _bad(self, number: int, reason: str) -> None:
        self._budget.record(TraceFormatError(reason, number))
        return None

    @staticmethod
    def sniff(line: str) -> bool:
        return line.strip().startswith("timestamp,url,size,")


class CsvTraceWriter:
    """Streaming writer for the canonical CSV trace format."""

    def __init__(self, stream: IO[str]):
        self._writer = csv.writer(stream, lineterminator="\n")
        self._writer.writerow(HEADER)
        self.count = 0

    def write(self, request: Request) -> None:
        self._writer.writerow([
            f"{request.timestamp:.3f}",
            request.url,
            request.size,
            request.transfer_size,
            request.doc_type.value,
            request.status,
            request.content_type or "",
        ])
        self.count += 1

    def write_all(self, requests: Iterable[Request]) -> int:
        for request in requests:
            self.write(request)
        return self.count


def dumps(requests: Iterable[Request]) -> str:
    """Serialize requests to a CSV trace string (tests and small traces)."""
    buffer = io.StringIO()
    CsvTraceWriter(buffer).write_all(requests)
    return buffer.getvalue()


def loads(text: str) -> Iterator[Request]:
    """Parse a CSV trace string into requests."""
    return CsvTraceParser().parse(io.StringIO(text))
