"""Common Log Format (and Combined Log Format) parsing.

CLF lines look like::

    host ident authuser [10/Oct/2000:13:55:36 -0700] "GET /a.gif HTTP/1.0" 200 2326

The combined variant appends quoted referrer and user-agent fields, which
this parser tolerates and ignores.  CLF carries no content type, so
classification of CLF traces always falls back to the URL extension.
"""

from __future__ import annotations

import calendar
import re
from typing import Callable, Iterable, Iterator, Optional

from repro.errors import TraceFormatError
from repro.trace.budget import ErrorBudget
from repro.trace.record import LogRecord

_CLF_RE = re.compile(
    r'^(?P<host>\S+)\s+(?P<ident>\S+)\s+(?P<user>\S+)\s+'
    r'\[(?P<time>[^\]]+)\]\s+'
    r'"(?P<request>[^"]*)"\s+'
    r'(?P<status>\d{3})\s+(?P<size>\d+|-)'
)

_MONTHS = {abbr: num for num, abbr in enumerate(calendar.month_abbr) if abbr}

_TIME_RE = re.compile(
    r'^(?P<day>\d{2})/(?P<mon>[A-Za-z]{3})/(?P<year>\d{4}):'
    r'(?P<hh>\d{2}):(?P<mm>\d{2}):(?P<ss>\d{2})\s*(?P<tz>[+-]\d{4})?$'
)


def parse_clf_timestamp(text: str) -> float:
    """Parse a CLF timestamp into epoch seconds (UTC).

    Raises ValueError for malformed timestamps.
    """
    match = _TIME_RE.match(text.strip())
    if match is None:
        raise ValueError(f"bad CLF timestamp: {text!r}")
    month = _MONTHS.get(match.group("mon").capitalize())
    if month is None:
        raise ValueError(f"bad CLF month: {text!r}")
    epoch = calendar.timegm((
        int(match.group("year")), month, int(match.group("day")),
        int(match.group("hh")), int(match.group("mm")),
        int(match.group("ss")), 0, 0, 0,
    ))
    tz = match.group("tz")
    if tz:
        offset = int(tz[1:3]) * 3600 + int(tz[3:5]) * 60
        if tz[0] == "+":
            epoch -= offset
        else:
            epoch += offset
    return float(epoch)


class CLFParser:
    """Streaming parser for Common/Combined Log Format lines."""

    name = "clf"

    def __init__(self, strict: bool = False,
                 max_errors: Optional[int] = None,
                 on_error: Optional[Callable[[TraceFormatError], None]]
                 = None):
        self.strict = strict
        self._budget = ErrorBudget(strict=strict, max_errors=max_errors,
                                   on_error=on_error)

    def parse_line(self, line: str, line_number: int = 0) -> Optional[LogRecord]:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return None
        match = _CLF_RE.match(stripped)
        if match is None:
            return self._bad(line_number, line, "does not match CLF grammar")
        try:
            timestamp = parse_clf_timestamp(match.group("time"))
        except ValueError as exc:
            return self._bad(line_number, line, str(exc))
        request = match.group("request").split()
        if len(request) >= 2:
            method, url = request[0], request[1]
        elif len(request) == 1:
            method, url = "GET", request[0]
        else:
            return self._bad(line_number, line, "empty request field")
        size_text = match.group("size")
        size = 0 if size_text == "-" else int(size_text)
        return LogRecord(
            timestamp=timestamp,
            url=url,
            status=int(match.group("status")),
            size=size,
            method=method,
            client=match.group("host"),
        )

    def parse(self, lines: Iterable[str]) -> Iterator[LogRecord]:
        for number, line in enumerate(lines, start=1):
            record = self.parse_line(line, number)
            if record is not None:
                yield record

    @property
    def skipped(self) -> int:
        """Malformed lines skipped so far (lenient mode)."""
        return self._budget.errors

    def _bad(self, line_number: int, line: str, reason: str) -> None:
        self._budget.record(TraceFormatError(reason, line_number, line))
        return None

    @staticmethod
    def sniff(line: str) -> bool:
        return _CLF_RE.match(line.strip()) is not None


def format_clf_line(record: LogRecord) -> str:
    """Render a record as a CLF line (UTC timestamp)."""
    import time as _time
    stamp = _time.strftime("%d/%b/%Y:%H:%M:%S +0000",
                           _time.gmtime(record.timestamp))
    return (
        f"{record.client or '-'} - - [{stamp}] "
        f'"{record.method} {record.url} HTTP/1.0" '
        f"{record.status} {record.size}"
    )
