"""``python -m repro.trace`` dispatch."""

import sys

from repro.trace.cli import main

sys.exit(main())
