"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TraceFormatError(ReproError):
    """A trace line or file could not be parsed in the declared format."""

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None):
        self.line_number = line_number
        self.line = line
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class CapacityError(ConfigurationError):
    """A cache was configured with a non-positive capacity."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state.

    This signals a bug in a policy implementation (for example a policy
    that reports an empty eviction candidate set while the cache still
    holds entries), not a user error.
    """


class AnalysisError(ReproError):
    """An estimator could not produce a result from the supplied data."""


class WorkerCrashError(ReproError):
    """A sweep worker process died or returned a corrupt payload.

    Transient by definition — the cell itself is deterministic, so the
    parallel runner retries it on a fresh worker.
    """


class CellTimeoutError(ReproError):
    """A sweep cell exceeded its per-cell wall-clock budget.

    Raised by the parallel runner after it tears down the hung worker;
    the cell is retried if the retry budget allows.
    """

    def __init__(self, message: str, timeout_seconds: float | None = None):
        self.timeout_seconds = timeout_seconds
        super().__init__(message)


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or validated.

    Covers corrupt JSON, missing fields, and config-hash mismatches
    (a checkpoint written under different settings than the resume).
    """


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment configuration is bad."""


class LeaseError(ReproError):
    """A work lease could not be acquired, renewed, or released."""


class LeaseLostError(LeaseError):
    """The lease was taken over by another owner (it went stale and was
    reclaimed, or the lease file was removed underneath us).

    The holder must stop assuming exclusive ownership of the work unit;
    results already computed stay valid because trials are deterministic
    and the results store deduplicates by key.
    """


class StoreError(ReproError):
    """The durable results store hit an unrecoverable I/O problem.

    Corrupt *records* never raise this — they are quarantined during a
    scan; this covers failures writing the store itself.
    """


class ServiceError(ReproError):
    """The experiment service was misconfigured or failed to make
    progress (e.g. a chaos run timed out waiting for its workers)."""
