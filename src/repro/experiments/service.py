"""The durable experiment service: enqueue / work / status / report.

A *trial* is one seeded simulation cell — (trace profile, scale,
policy, cache-size fraction, seed).  The service splits a standing
experiment program into three crash-isolated pieces:

* a :class:`~repro.experiments.queue.TrialQueue` of pending trials,
  claimed through leases so any number of workers on any number of
  machines can pull from the same directory, and a SIGKILL'd worker's
  trial is reclaimed automatically when its lease goes stale;
* a :class:`~repro.experiments.store.ResultsStore` of finished
  measurements, append-only and CRC-verified, keyed by
  ``(config_hash, git_hash, seed)`` so re-executions deduplicate and
  results from different code revisions never silently mix;
* a pure reporting layer (:func:`build_report`) that recomputes the
  repeated-trial statistics — per-policy mean and confidence interval,
  pairwise Mann-Whitney U and A12 effect size, significance-aware
  ranks — from the store alone, so the report is reproducible from the
  surviving bytes with no queue state at all.

The worker loop commits in a fixed order — execute, append to the
store (fsync'd), then write the done marker — so every crash window
is safe: dying before the append re-runs the trial; dying between
append and marker re-claims the trial and skips straight to the
marker because the store already has the record; dying after the
marker is a completed trial.  ``python -m repro.experiments service``
exposes the verbs; :func:`repro.experiments.chaos.run_chaos` proves
the guarantees by killing workers mid-trial and corrupting the store
on purpose.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ServiceError
from repro.experiments.config import SCALES
from repro.experiments.queue import ClaimedTrial, TrialQueue
from repro.experiments.stats import compare, rank_policies, summarize
from repro.experiments.store import (
    ResultKey,
    ResultsStore,
    canonical_json,
    git_revision,
)
from repro.observability import events as _events
from repro.observability.logs import configure as configure_logs
from repro.observability.logs import get_logger
from repro.observability.trace import adopt, enable_tracing, inject
from repro.observability.trace import span as _span
from repro.resilience.checkpoint import config_hash
from repro.resilience.faults import FaultInjector
from repro.resilience.lease import Heartbeat
from repro.types import DocumentType, Trace

PathLike = Union[str, Path]

_logger = get_logger("experiments.service")

#: Trace profiles the service knows how to realize.
TRACE_PROFILES = ("dfn", "rtp")

#: How workers materialize generated traces.  ``objects`` regenerates
#: the Request list in every worker process; ``columnar`` writes each
#: (profile, scale, seed) trace exactly once as a ``.rcol`` file under
#: ``REPRO_SERVICE_TRACE_DIR`` and mmaps it everywhere, which drops the
#: per-worker generation cost and routes trials through the vectorized
#: engine.  Both formats produce bit-identical payloads.
TRACE_FORMATS = ("objects", "columnar")

#: Subdirectory names inside a service root.
QUEUE_DIRNAME = "queue"
STORE_DIRNAME = "store"


@dataclass(frozen=True)
class TrialSpec:
    """One seeded simulation cell, the service's unit of work."""

    trace: str
    scale: float
    policy: str
    size_fraction: float
    seed: int

    def __post_init__(self):
        if self.trace not in TRACE_PROFILES:
            raise ServiceError(
                f"unknown trace profile {self.trace!r}; known: "
                + ", ".join(TRACE_PROFILES))
        if not 0 < self.size_fraction <= 1:
            raise ServiceError("size_fraction must be in (0, 1]")
        if self.scale <= 0:
            raise ServiceError("scale must be positive")

    @classmethod
    def from_dict(cls, data: dict) -> "TrialSpec":
        try:
            return cls(trace=str(data["trace"]),
                       scale=float(data["scale"]),
                       policy=str(data["policy"]),
                       size_fraction=float(data["size_fraction"]),
                       seed=int(data["seed"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed trial spec: {exc}") from exc

    def as_dict(self) -> dict:
        return asdict(self)

    def config_key(self) -> str:
        """Hash of everything *except* the seed: replicas of one
        configuration share this, which is what groups them into a
        sample for the statistics layer."""
        config = self.as_dict()
        del config["seed"]
        return config_hash(config)

    def result_key(self, git_hash: Optional[str] = None) -> ResultKey:
        return ResultKey(config_hash=self.config_key(),
                         git_hash=git_hash or git_revision(),
                         seed=self.seed)


@dataclass(frozen=True)
class NetworkTrialSpec:
    """One seeded cache-*network* cell: topology × strategy × policy.

    Lives in the same queue and store as :class:`TrialSpec`; the
    worker dispatches on the presence of the ``topology`` key (classic
    specs never carry one, so stored hashes of existing trials are
    untouched).  ``size_fraction`` is the *aggregate* cache budget as
    a fraction of the trace's distinct bytes, split uniformly across
    nodes by :func:`repro.network.topology.build_topology` — holding
    total cache bytes constant is what makes hit rates comparable
    across topologies.
    """

    trace: str
    scale: float
    topology: str
    strategy: str
    policy: str
    size_fraction: float
    seed: int
    #: Shape parameter: children (two-level), proxies (mesh), chain
    #: length (path), depth (tree); ignored for ``single``.
    n: int = 4

    def __post_init__(self):
        from repro.network.strategies import STRATEGY_NAMES
        from repro.network.topology import TOPOLOGY_KINDS

        if self.trace not in TRACE_PROFILES:
            raise ServiceError(
                f"unknown trace profile {self.trace!r}; known: "
                + ", ".join(TRACE_PROFILES))
        if self.topology not in TOPOLOGY_KINDS:
            raise ServiceError(
                f"unknown topology {self.topology!r}; known: "
                + ", ".join(TOPOLOGY_KINDS))
        if self.strategy not in STRATEGY_NAMES:
            raise ServiceError(
                f"unknown strategy {self.strategy!r}; known: "
                + ", ".join(STRATEGY_NAMES))
        if not 0 < self.size_fraction <= 1:
            raise ServiceError("size_fraction must be in (0, 1]")
        if self.scale <= 0:
            raise ServiceError("scale must be positive")
        if self.n < 1:
            raise ServiceError("n must be >= 1")

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkTrialSpec":
        try:
            return cls(trace=str(data["trace"]),
                       scale=float(data["scale"]),
                       topology=str(data["topology"]),
                       strategy=str(data["strategy"]),
                       policy=str(data["policy"]),
                       size_fraction=float(data["size_fraction"]),
                       seed=int(data["seed"]),
                       n=int(data.get("n", 4)))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"malformed network trial spec: {exc}") from exc

    def as_dict(self) -> dict:
        return asdict(self)

    def config_key(self) -> str:
        config = self.as_dict()
        del config["seed"]
        return config_hash(config)

    def result_key(self, git_hash: Optional[str] = None) -> ResultKey:
        return ResultKey(config_hash=self.config_key(),
                         git_hash=git_hash or git_revision(),
                         seed=self.seed)


@dataclass(frozen=True)
class ServingTrialSpec:
    """One seeded *serving replay* cell: the online sharded cache as
    an experimental subject.

    Lives in the same queue and store as :class:`TrialSpec`; the
    worker dispatches on the presence of the ``shards`` key (classic
    and network specs never carry one, so existing stored config
    hashes are untouched).  The payload records the replayed hit
    rates *and* their disagreement against the simulator and the Che
    model — no timings, so the payload stays a pure function of the
    spec and the store's bit-identical compaction guarantee holds.
    """

    trace: str
    scale: float
    policy: str
    size_fraction: float
    seed: int
    shards: int = 4

    def __post_init__(self):
        if self.trace not in TRACE_PROFILES:
            raise ServiceError(
                f"unknown trace profile {self.trace!r}; known: "
                + ", ".join(TRACE_PROFILES))
        if not 0 < self.size_fraction <= 1:
            raise ServiceError("size_fraction must be in (0, 1]")
        if self.scale <= 0:
            raise ServiceError("scale must be positive")
        if self.shards < 1:
            raise ServiceError("shards must be >= 1")

    @classmethod
    def from_dict(cls, data: dict) -> "ServingTrialSpec":
        try:
            return cls(trace=str(data["trace"]),
                       scale=float(data["scale"]),
                       policy=str(data["policy"]),
                       size_fraction=float(data["size_fraction"]),
                       seed=int(data["seed"]),
                       shards=int(data["shards"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"malformed serving trial spec: {exc}") from exc

    def as_dict(self) -> dict:
        return asdict(self)

    def config_key(self) -> str:
        config = self.as_dict()
        del config["seed"]
        return config_hash(config)

    def result_key(self, git_hash: Optional[str] = None) -> ResultKey:
        return ResultKey(config_hash=self.config_key(),
                         git_hash=git_hash or git_revision(),
                         seed=self.seed)


class _WorkerTraceCache:
    """Per-process memo of generated traces, keyed like the suite
    runner's cache: one (profile, scale, seed) trace serves every
    policy × fraction trial that shares it.

    The format is read from the ``REPRO_TRACE_FORMAT`` environment
    variable (set by the CLI's ``--trace-format`` flag before workers
    spawn, so every child inherits it).  In ``columnar`` mode the first
    process to need a trace generates it and publishes the ``.rcol``
    file with an atomic rename; everyone else — including other worker
    processes — just mmaps it.  Generation is seeded, so concurrent
    writers race to install identical bytes and the rename is
    idempotent.
    """

    def __init__(self):
        self._traces: Dict[tuple, object] = {}

    @staticmethod
    def _generate(trace: str, scale: float, seed: int) -> Trace:
        from repro.workload.generator import generate_trace
        from repro.workload.profiles import dfn_like, rtp_like

        factory = dfn_like if trace == "dfn" else rtp_like
        return generate_trace(factory(scale=scale, seed=seed))

    def _columnar(self, trace: str, scale: float, seed: int,
                  spill_dir: Path):
        from repro.trace.columnar import open_columnar, write_columnar

        spill_dir.mkdir(parents=True, exist_ok=True)
        path = spill_dir / f"{trace}-{scale:g}-{seed}.rcol"
        if not path.exists():
            generated = self._generate(trace, scale, seed)
            tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
            write_columnar(tmp, generated.requests, name=generated.name)
            os.replace(tmp, path)
        return open_columnar(path, verify=False)

    def get(self, trace: str, scale: float, seed: int):
        fmt = os.environ.get("REPRO_TRACE_FORMAT", "objects")
        spill = os.environ.get("REPRO_SERVICE_TRACE_DIR")
        key = (trace, scale, seed, fmt)
        if key not in self._traces:
            if fmt == "columnar" and spill:
                self._traces[key] = self._columnar(
                    trace, scale, seed, Path(spill))
            else:
                self._traces[key] = self._generate(trace, scale, seed)
        return self._traces[key]


_TRACES = _WorkerTraceCache()


def execute_trial(spec: TrialSpec) -> dict:
    """Run one trial; returns a deterministic, timestamp-free payload.

    The payload is a pure function of the spec (generation and
    simulation are seeded), which is what makes the store's
    bit-identical compaction guarantee possible: any two executions of
    the same spec on the same code produce the same bytes.
    """
    from repro.simulation.simulator import CacheSimulator, SimulationConfig
    from repro.simulation.sweep import cache_sizes_from_fractions

    trace = _TRACES.get(spec.trace, spec.scale, spec.seed)
    capacity = cache_sizes_from_fractions(
        trace, [spec.size_fraction])[0]
    config = SimulationConfig(capacity_bytes=capacity,
                              policy=spec.policy)
    if getattr(trace, "is_columnar", False):
        # Columnar traces ride the vectorized shared-pass engine
        # (bit-identical to the object loop), never decoding Request
        # objects at all.
        from repro.simulation.engine import run_cells
        result = run_cells(trace, [config], trace_name=trace.name)[0]
    else:
        result = CacheSimulator(config).run(trace)
    return {
        "spec": spec.as_dict(),
        "capacity_bytes": capacity,
        "hit_rate": result.hit_rate(),
        "byte_hit_rate": result.byte_hit_rate(),
        # Per-document-type breakdown, so the regression detector and
        # the HTML report can compare IMAGE/HTML/... hit rates across
        # git revisions (the paper's central axis of analysis).
        "type_hit_rates": {
            doc_type.value: result.hit_rate(doc_type)
            for doc_type in DocumentType
        },
    }


def execute_network_trial(spec: NetworkTrialSpec) -> dict:
    """Run one network trial; deterministic, timestamp-free payload.

    The aggregate budget resolves against the trace exactly like the
    single-cache path; :func:`repro.network.engine.run_network`
    dispatches to the vectorized cascade when the cell qualifies
    (columnar trace, LRU, LCE) and the object walk otherwise — both
    produce identical payload bytes.  The spec's seed feeds the
    placement strategy's RNG and (via ``policy_seed``) any seedable
    per-node policies, so replicas differ only through the seed.
    """
    from repro.network.engine import NetworkConfig, run_network
    from repro.network.strategies import make_strategy
    from repro.network.topology import build_topology
    from repro.simulation.sweep import cache_sizes_from_fractions

    trace = _TRACES.get(spec.trace, spec.scale, spec.seed)
    capacity = cache_sizes_from_fractions(
        trace, [spec.size_fraction])[0]
    config = NetworkConfig(
        topology=build_topology(spec.topology, capacity, n=spec.n,
                                policy=spec.policy),
        strategy=make_strategy(spec.strategy, seed=spec.seed),
        policy_seed=spec.seed)
    result = run_network(trace, config)
    edge = result.edge_metrics()
    return {
        "spec": spec.as_dict(),
        "total_capacity_bytes": capacity,
        "n_caches": result.config.topology.n_caches,
        "hit_rate": result.hit_rate,
        "byte_hit_rate": result.byte_hit_rate,
        "edge_hit_rate": edge.overall.hit_rate,
        "sibling_serves": result.sibling_serves,
        "type_hit_rates": {
            doc_type.value: result.network.hit_rate(doc_type)
            for doc_type in DocumentType
        },
        # Which level each type's resident bytes ended up at — the
        # per-type placement view, keyed "type/level".
        "placement_shares": {
            f"{doc_type.value}/{level}": share
            for doc_type, by_level in result.placement_shares().items()
            for level, share in by_level.items()
        },
    }


def execute_serving_trial(spec: ServingTrialSpec) -> dict:
    """Run one serving replay trial; deterministic payload.

    The replay runs one thread per shard, so per-shard hit counts are
    exact and the validation errors are reproducible; wall-clock
    numbers (throughput, latency) are deliberately dropped from the
    payload — they vary per host, and the store requires re-executions
    to be bit-identical.
    """
    from repro.serving.replay import ReplayConfig, validate_replay
    from repro.simulation.sweep import cache_sizes_from_fractions

    trace = _TRACES.get(spec.trace, spec.scale, spec.seed)
    if getattr(trace, "is_columnar", False):
        # Replay drives Request objects through shard threads; the
        # columnar mmap serves the simulators, not the serving layer.
        trace = _WorkerTraceCache._generate(spec.trace, spec.scale,
                                            spec.seed)
    capacity = cache_sizes_from_fractions(
        trace, [spec.size_fraction])[0]
    validation = validate_replay(
        trace, ReplayConfig(capacity_bytes=capacity,
                            n_shards=spec.shards,
                            policy=spec.policy))
    report = validation.report
    return {
        "spec": spec.as_dict(),
        "capacity_bytes": capacity,
        "hit_rate": report.hit_rate,
        "shard_hit_rates": {
            shard.shard: shard.hit_rate
            for shard in report.per_shard
        },
        "type_hit_rates": {
            doc_type.value: report.per_type_hit_rate.get(
                doc_type.value, 0.0)
            for doc_type in DocumentType
        },
        "sim_mae": validation.sim_mae,
        "sim_max_error": validation.sim_max_error,
        "model_mae": validation.model_mae,
        "model_max_error": validation.model_max_error,
    }


# --------------------------------------------------------------------------
# Service root helpers
# --------------------------------------------------------------------------

def open_service(root: PathLike, owner: Optional[str] = None,
                 lease_ttl: float = 30.0,
                 max_attempts: int = 3
                 ) -> Tuple[TrialQueue, ResultsStore]:
    """Open (creating if needed) the queue + store under one root."""
    root = Path(root)
    queue = TrialQueue(root / QUEUE_DIRNAME, owner=owner,
                       lease_ttl=lease_ttl, max_attempts=max_attempts)
    store = ResultsStore(root / STORE_DIRNAME)
    return queue, store


def enqueue_grid(queue: TrialQueue, *, traces: Sequence[str],
                 scale: float, policies: Sequence[str],
                 size_fractions: Sequence[float],
                 seeds: Sequence[int]) -> List[str]:
    """Enqueue the full cross product; idempotent, returns trial ids."""
    ids = []
    for trace in traces:
        for policy in policies:
            for fraction in size_fractions:
                for seed in seeds:
                    spec = TrialSpec(trace=trace, scale=scale,
                                     policy=policy,
                                     size_fraction=fraction, seed=seed)
                    trial_id, _ = queue.enqueue(spec.as_dict())
                    ids.append(trial_id)
    return ids


def enqueue_network_grid(queue: TrialQueue, *, traces: Sequence[str],
                         scale: float, topologies: Sequence[str],
                         strategies: Sequence[str],
                         policies: Sequence[str],
                         size_fractions: Sequence[float],
                         seeds: Sequence[int],
                         n: int = 4) -> List[str]:
    """Enqueue a network cross product (topology × strategy × policy
    × budget × seed); idempotent, returns trial ids."""
    ids = []
    for trace in traces:
        for topology in topologies:
            for strategy in strategies:
                for policy in policies:
                    for fraction in size_fractions:
                        for seed in seeds:
                            spec = NetworkTrialSpec(
                                trace=trace, scale=scale,
                                topology=topology, strategy=strategy,
                                policy=policy, size_fraction=fraction,
                                seed=seed, n=n)
                            trial_id, _ = queue.enqueue(spec.as_dict())
                            ids.append(trial_id)
    return ids


def enqueue_serving_grid(queue: TrialQueue, *, traces: Sequence[str],
                         scale: float, policies: Sequence[str],
                         size_fractions: Sequence[float],
                         seeds: Sequence[int],
                         shards: int = 4) -> List[str]:
    """Enqueue a serving-replay cross product (policy × budget ×
    seed at one shard count); idempotent, returns trial ids."""
    ids = []
    for trace in traces:
        for policy in policies:
            for fraction in size_fractions:
                for seed in seeds:
                    spec = ServingTrialSpec(
                        trace=trace, scale=scale, policy=policy,
                        size_fraction=fraction, seed=seed,
                        shards=shards)
                    trial_id, _ = queue.enqueue(spec.as_dict())
                    ids.append(trial_id)
    return ids


# --------------------------------------------------------------------------
# The worker loop
# --------------------------------------------------------------------------

def work(queue: TrialQueue, store: ResultsStore, *,
         max_trials: Optional[int] = None,
         fault_injector: Optional[FaultInjector] = None,
         git_hash: Optional[str] = None,
         poll_seconds: float = 0.1,
         idle_timeout: Optional[float] = None) -> int:
    """Pull and execute trials until the queue is fully resolved.

    Commit order per trial (the crash-safety contract):

    1. claim (lease acquired, heartbeat starts renewing it);
    2. if the store already holds this trial's record — a predecessor
       died between its append and its done marker — skip straight to
       the marker;
    3. execute;
    4. append the result to the store (fsync'd before returning);
    5. write the done marker and release the lease.

    A worker killed at any point loses at most the CPU it burned: the
    lease goes stale, the trial is reclaimed, and the store's
    first-wins dedup absorbs any double append.  ``fault_injector``
    hooks fire at the trial id before execution and at
    ``"<trial_id>#commit"`` between append and marker, so chaos tests
    can target every window deterministically.

    A worker with nothing claimable does not necessarily exit: trials
    leased to *other* live workers may yet come back (their holder can
    die), so it polls until every trial is done or failed — which is
    what lets a fleet of workers outlive any one member.  Pass
    ``idle_timeout`` to bound the wait (seconds with nothing claimed).

    Returns the number of trials this call completed.
    """
    git_hash = git_hash or git_revision()
    _events.emit("service_worker_started", owner=queue.owner)
    _logger.info("worker %s started", queue.owner,
                 extra={"owner": queue.owner})
    # One scan up front, then tracked incrementally: rescanning the
    # whole store per trial would be quadratic, and a miss is harmless
    # anyway (a double execution deduplicates at compaction).
    known_keys = set(store.records())
    executed = 0
    idle_since: Optional[float] = None
    with _span("worker", owner=queue.owner) as worker_span:
        while max_trials is None or executed < max_trials:
            claimed = queue.claim()
            if claimed is None:
                status = queue.status()
                if status.drained:
                    break
                # Something is still leased out (or went stale between
                # our claim and this census): wait for it to resolve.
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None \
                    else now
                if idle_timeout is not None \
                        and now - idle_since > idle_timeout:
                    break
                time.sleep(poll_seconds)
                continue
            idle_since = None
            done = _run_claimed(queue, store, claimed,
                                fault_injector=fault_injector,
                                git_hash=git_hash,
                                known_keys=known_keys)
            if done:
                executed += 1
        worker_span.set_attribute("executed", executed)
    _events.emit("service_worker_exited", owner=queue.owner,
                 executed=executed)
    _logger.info("worker %s exited after %d trial(s)", queue.owner,
                 executed, extra={"owner": queue.owner,
                                  "executed": executed})
    return executed


def _run_claimed(queue: TrialQueue, store: ResultsStore,
                 claimed: ClaimedTrial, *,
                 fault_injector: Optional[FaultInjector],
                 git_hash: str,
                 known_keys: Optional[set] = None) -> bool:
    try:
        # Network and serving trials share the queue/store; the
        # ``topology`` / ``shards`` keys are the dispatch bits
        # (classic specs never carry either, so existing stored
        # config hashes are unaffected).
        if "topology" in claimed.spec:
            spec_cls = NetworkTrialSpec
        elif "shards" in claimed.spec:
            spec_cls = ServingTrialSpec
        else:
            spec_cls = TrialSpec
        spec = spec_cls.from_dict(claimed.spec)
    except ServiceError as exc:
        # A structurally valid JSON file holding a semantically bad
        # spec: executing it will never work, so burn its attempts.
        queue.release(claimed, f"invalid spec: {exc}")
        return False
    key = spec.result_key(git_hash)
    known_keys = known_keys if known_keys is not None \
        else set(store.records())
    started = time.monotonic()
    with _span("trial", trial_id=claimed.trial_id, policy=spec.policy,
               seed=spec.seed, attempt=claimed.attempt) as trial_span, \
            Heartbeat(queue.leases, claimed.lease) as heartbeat:
        if key in known_keys:
            # A predecessor stored the record but died before its
            # done marker; finishing the marker is all that's left.
            trial_span.set_attribute("outcome", "marker_only")
            queue.complete(claimed, key)
            return True
        try:
            if fault_injector is not None:
                fault_injector.on_start(claimed.trial_id,
                                        claimed.attempt)
            if isinstance(spec, NetworkTrialSpec):
                payload = execute_network_trial(spec)
            elif isinstance(spec, ServingTrialSpec):
                payload = execute_serving_trial(spec)
            else:
                payload = execute_trial(spec)
        except Exception as exc:  # noqa: BLE001 - released, not lost
            trial_span.set_status("error")
            queue.release(
                claimed, f"execution error: {type(exc).__name__}")
            return False
        if fault_injector is not None:
            payload = fault_injector.on_result(
                claimed.trial_id, claimed.attempt, payload)
        store.append(key.config_hash, key.git_hash, key.seed, payload)
        known_keys.add(key)
        if fault_injector is not None:
            # The append-to-marker window, targetable by chaos tests.
            fault_injector.on_start(f"{claimed.trial_id}#commit",
                                    claimed.attempt)
        if heartbeat.lost:
            # The lease was reclaimed mid-trial (e.g. the worker hung
            # past the TTL): the new owner is responsible for the
            # marker; our append deduplicates harmlessly.
            trial_span.set_status("error")
            return False
    queue.complete(claimed, key,
                   duration_seconds=time.monotonic() - started)
    return True


# --------------------------------------------------------------------------
# Status + report
# --------------------------------------------------------------------------

def service_status(root: PathLike, clock=time.time) -> dict:
    queue, store = open_service(root)
    records = store.records()
    status = queue.status()
    # Every lease file — live *and* stale — with its holder's heartbeat
    # age and how many claims the trial has burned, so one glance at
    # `service status` answers "is anything wedged, and since when?".
    workers = []
    for path in sorted(queue.leases.directory.glob("*.lease")):
        trial_id = path.name[:-len(".lease")]
        holder = queue.leases.holder(trial_id)
        entry = {
            "trial_id": trial_id,
            "owner": holder.get("owner") if holder else None,
            "stale": queue.leases.is_stale(trial_id),
            "attempt": queue._read_attempts(trial_id),
        }
        if holder and isinstance(holder.get("renewed_at"),
                                 (int, float)):
            entry["heartbeat_age_seconds"] = round(
                max(clock() - holder["renewed_at"], 0.0), 3)
        else:
            entry["heartbeat_age_seconds"] = None
        workers.append(entry)
    return {
        "queue": status.as_dict(),
        "workers": workers,
        "store": {
            "records": len(records),
            "quarantined": len(store.quarantined()),
            "git_hashes": sorted({key.git_hash for key in records}),
        },
    }


@dataclass
class ServiceReport:
    """Rendered significance report plus its machine-readable data."""

    text: str
    data: dict


def build_report(store: ResultsStore, alpha: float = 0.05,
                 metric: str = "hit_rate") -> ServiceReport:
    """Repeated-trial statistics, recomputed from the store alone.

    Records are grouped by experimental condition — (trace, scale,
    size_fraction, git_hash) — and within each condition the per-seed
    replicas of every policy form one sample.  Each group gets:

    * per-policy n / mean / 95% CI, with ranks that *share* a place
      when the adjacent pairwise difference is not significant at
      ``alpha`` (the report refuses to rank what the evidence cannot
      separate);
    * every pairwise Mann-Whitney U p-value with the Vargha-Delaney
      A12 effect size and its conventional magnitude label.
    """
    if metric not in ("hit_rate", "byte_hit_rate"):
        raise ServiceError(
            "metric must be 'hit_rate' or 'byte_hit_rate', "
            f"got {metric!r}")
    groups: Dict[tuple, Dict[str, Dict[int, float]]] = {}
    for key, record in sorted(store.records().items()):
        payload = record["payload"]
        spec = payload.get("spec") or {}
        value = payload.get(metric)
        if value is None or "policy" not in spec:
            continue  # foreign record (not written by the service)
        # Network trials extend the condition with (topology,
        # strategy) and serving trials with (shards); classic trials
        # carry None there, so their grouping — and the report over
        # an existing store — is unchanged.
        group = (spec.get("trace"), spec.get("scale"),
                 spec.get("size_fraction"), key.git_hash,
                 spec.get("topology"), spec.get("strategy"),
                 spec.get("shards"))
        samples = groups.setdefault(group, {})
        # keyed by seed: a duplicate append never double-counts
        samples.setdefault(spec["policy"], {})[key.seed] = value

    lines: List[str] = []
    data: dict = {"metric": metric, "alpha": alpha, "groups": []}
    for group, by_policy in sorted(groups.items(),
                                   key=lambda item: str(item[0])):
        (trace, scale, fraction, git_hash, topology, strategy,
         shards) = group
        samples = {policy: [value for _, value in sorted(seeds.items())]
                   for policy, seeds in by_policy.items()}
        ranking = rank_policies(samples, alpha=alpha)
        comparisons = [compare(a, samples[a], b, samples[b],
                               alpha=alpha)
                       for i, a in enumerate(sorted(samples))
                       for b in sorted(samples)[i + 1:]]
        network = (f" topology={topology} strategy={strategy}"
                   if topology is not None else "")
        serving = (f" shards={shards}" if shards is not None else "")
        lines.append(f"== trace={trace} scale={scale:g} "
                     f"cache={fraction:.1%}{network}{serving} "
                     f"git={git_hash} ==")
        lines.append(f"{'rank':>4}  {'policy':<14} {'n':>3} "
                     f"{'mean':>8} {'95% CI':>19}")
        for row in ranking:
            summary = row["summary"]
            marker = "" if row["separated"] else "="
            lines.append(
                f"{marker:>1}{row['rank']:>3}  {row['name']:<14} "
                f"{summary['n']:>3} {summary['mean']:>8.4f} "
                f"[{summary['ci_low']:.4f}, {summary['ci_high']:.4f}]")
        lines.append("(= : not significantly different from the row "
                     "above; ranks are shared)")
        lines.append(f"{'pair':<30} {'p':>8} {'A12':>6} "
                     f"{'magnitude':<10} {'significant':<11}")
        for comparison in comparisons:
            lines.append(
                f"{comparison.a + ' vs ' + comparison.b:<30} "
                f"{comparison.p_value:>8.4f} {comparison.a12:>6.3f} "
                f"{comparison.magnitude:<10} "
                f"{str(comparison.significant):<11}")
        lines.append("")
        entry = {
            "trace": trace, "scale": scale, "size_fraction": fraction,
            "git_hash": git_hash,
            "ranking": ranking,
            "comparisons": [c.as_dict() for c in comparisons],
        }
        if topology is not None:
            entry["topology"] = topology
            entry["strategy"] = strategy
        if shards is not None:
            entry["shards"] = shards
        data["groups"].append(entry)
    if not lines:
        lines.append("(store holds no service records)")
    return ServiceReport(text="\n".join(lines).rstrip(), data=data)


# --------------------------------------------------------------------------
# Multi-worker runs
# --------------------------------------------------------------------------

def _worker_entry(root: str, lease_ttl: float, max_attempts: int,
                  fault_injector: Optional[FaultInjector],
                  telemetry_dir: Optional[str] = None,
                  trace_context: Optional[dict] = None) -> None:
    """Module-level child-process entry (must be picklable/forkable).

    Children never share the parent's event sink (a forked ``seq``
    counter would interleave corruptly); with ``telemetry_dir`` each
    child appends to its own ``events-<pid>.jsonl`` instead, and
    adopts the supervisor's trace context so its worker/trial spans
    parent into the service span — one trial's wall-time decomposes
    across processes even though each appends to its own file.
    Exits 0 even when the queue was empty.
    """
    import os

    if telemetry_dir is not None:
        _events.set_event_sink(_events.EventLog(
            Path(telemetry_dir) / f"events-{os.getpid()}.jsonl"))
        enable_tracing()
        adopt(trace_context)
    else:
        _events.set_event_sink(None)
    queue, store = open_service(root, lease_ttl=lease_ttl,
                                max_attempts=max_attempts)
    work(queue, store, fault_injector=fault_injector)


def run_service(root: PathLike, n_workers: int = 2, *,
                lease_ttl: float = 30.0, max_attempts: int = 3,
                max_restarts: int = 2,
                fault_injector: Optional[FaultInjector] = None,
                telemetry_dir: Optional[PathLike] = None) -> dict:
    """Drain the queue with supervised worker processes.

    Workers are spawned through
    :func:`repro.simulation.parallel.supervise_workers`: one that dies
    abnormally (SIGKILL, injected crash) is restarted up to
    ``max_restarts`` times — its half-done trial comes back anyway via
    lease reclamation, the supervisor just keeps the worker count up.
    After the workers exit, stale leases are reconciled against the
    store so the caller sees an honest status.

    With ``telemetry_dir`` the supervisor opens a ``service`` span and
    each worker process writes spans and lifecycle events to its own
    ``events-<pid>.jsonl`` under that directory, parented to the
    supervisor's span via :func:`repro.observability.trace.inject`.
    """
    from repro.simulation.parallel import supervise_workers

    with _span("service", workers=n_workers) as service_span:
        context = inject()
        outcome = supervise_workers(
            _worker_entry,
            args=(str(root), lease_ttl, max_attempts, fault_injector,
                  str(telemetry_dir) if telemetry_dir else None,
                  context),
            n_workers=n_workers, max_restarts=max_restarts)
        queue, store = open_service(root, lease_ttl=lease_ttl,
                                    max_attempts=max_attempts)
        reopened = queue.reconcile(store)
        service_span.set_attribute("reopened", len(reopened))
    return {"workers": outcome, "reopened": reopened,
            "status": queue.status().as_dict()}


# --------------------------------------------------------------------------
# CLI: python -m repro.experiments service <verb>
# --------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments service",
        description="Durable experiment service: a crash-safe results "
                    "store fed by a lease-based trial queue.")
    parser.add_argument("--root", default="service/",
                        help="service root directory (default: "
                             "service/)")
    parser.add_argument("--log-level", default="info",
                        help="diagnostic verbosity on stderr")
    sub = parser.add_subparsers(dest="verb", required=True)

    enq = sub.add_parser("enqueue",
                         help="add a (trace x policy x size x seed) "
                              "grid of trials; idempotent")
    enq.add_argument("--traces", nargs="+", default=["dfn"],
                     choices=list(TRACE_PROFILES))
    enq.add_argument("--scale", choices=list(SCALES), default="tiny")
    enq.add_argument("--policies", nargs="+",
                     default=["lru", "gds(1)", "gd*(1)"])
    enq.add_argument("--size-fractions", nargs="+", type=float,
                     default=[0.01])
    enq.add_argument("--seeds", nargs="+", type=int,
                     default=[42, 1042, 2042])

    esv = sub.add_parser("enqueue-serving",
                         help="add a serving-replay (trace x policy "
                              "x size x seed) grid at one shard "
                              "count; idempotent")
    esv.add_argument("--traces", nargs="+", default=["dfn"],
                     choices=list(TRACE_PROFILES))
    esv.add_argument("--scale", choices=list(SCALES), default="tiny")
    esv.add_argument("--policies", nargs="+",
                     default=["lru", "gds(1)", "gd*(1)"])
    esv.add_argument("--size-fractions", nargs="+", type=float,
                     default=[0.01])
    esv.add_argument("--seeds", nargs="+", type=int,
                     default=[42, 1042, 2042])
    esv.add_argument("--shards", type=int, default=4,
                     help="consistent-hash shard count (default: 4)")

    wrk = sub.add_parser("work",
                         help="run trials until the queue drains")
    wrk.add_argument("--workers", type=int, default=1,
                     help="worker processes (1 = run in-process)")
    wrk.add_argument("--lease-ttl", type=float, default=30.0,
                     help="seconds before an unrenewed lease is "
                          "considered stale and reclaimed")
    wrk.add_argument("--max-trials", type=int, default=None,
                     help="stop after this many trials (in-process "
                          "mode only)")
    wrk.add_argument("--max-attempts", type=int, default=3,
                     help="claims per trial before it is abandoned")
    wrk.add_argument("--telemetry-dir", default=None,
                     help="write span + lifecycle events here "
                          "(workers append to their own "
                          "events-<pid>.jsonl); 'status --watch' "
                          "tails <root>/telemetry by default")
    wrk.add_argument("--trace-format", choices=TRACE_FORMATS,
                     default="objects",
                     help="'columnar' materializes each (profile, "
                          "scale, seed) trace once as a .rcol file "
                          "under <root>/traces/ shared by all workers "
                          "via mmap; 'objects' regenerates Request "
                          "lists per process (default)")

    sta = sub.add_parser("status", help="queue + store census "
                                        "(one-shot or live)")
    sta.add_argument("--watch", action="store_true",
                     help="repaint a live dashboard (heartbeats, "
                          "open spans, throughput, ETA) instead of "
                          "printing once")
    sta.add_argument("--interval", type=float, default=2.0,
                     help="--watch repaint period in seconds")
    sta.add_argument("--iterations", type=int, default=None,
                     help="stop --watch after N repaints (default: "
                          "until Ctrl-C)")

    rep = sub.add_parser("report",
                         help="significance report from the store "
                              "alone")
    rep.add_argument("--metric", choices=("hit_rate", "byte_hit_rate"),
                     default="hit_rate")
    rep.add_argument("--alpha", type=float, default=0.05)
    rep.add_argument("--html", default=None, metavar="PATH",
                     help="also write a self-contained HTML report "
                          "(per-type hit-rate panels, CI whiskers, "
                          "span waterfall when telemetry exists)")

    rgr = sub.add_parser("regress",
                         help="statistically-gated cross-revision "
                              "regression verdicts from the store")
    rgr.add_argument("--baseline", default=None,
                     help="baseline git hash (inferred when the "
                          "store holds exactly two)")
    rgr.add_argument("--candidate", default=None,
                     help="candidate git hash (default: current "
                          "checkout's revision)")
    rgr.add_argument("--alpha", type=float, default=0.05)
    rgr.add_argument("--json", action="store_true",
                     help="machine-readable output")
    rgr.add_argument("--fail-on-regression", action="store_true",
                     help="exit 1 when anything is labelled "
                          "'regressed'")

    sub.add_parser("compact",
                   help="merge store segments into one sorted, "
                        "deduplicated base file")

    cha = sub.add_parser("chaos",
                         help="prove the guarantees: SIGKILL workers "
                              "mid-trial, corrupt the store, resume, "
                              "compare against an uninterrupted run")
    cha.add_argument("--kills", type=int, default=2)
    cha.add_argument("--corrupt", action="store_true",
                     help="also bit-flip a store segment between "
                          "kills")
    cha.add_argument("--scale", choices=list(SCALES), default="tiny")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    args = build_parser().parse_args(argv)
    configure_logs(level=args.log_level)
    root = Path(args.root)

    if args.verb == "enqueue":
        queue, _ = open_service(root)
        ids = enqueue_grid(
            queue, traces=args.traces, scale=SCALES[args.scale],
            policies=args.policies,
            size_fractions=args.size_fractions, seeds=args.seeds)
        print(f"enqueued {len(ids)} trial(s); "
              f"{queue.status().pending} pending")
        return 0

    if args.verb == "enqueue-serving":
        queue, _ = open_service(root)
        ids = enqueue_serving_grid(
            queue, traces=args.traces, scale=SCALES[args.scale],
            policies=args.policies,
            size_fractions=args.size_fractions, seeds=args.seeds,
            shards=args.shards)
        print(f"enqueued {len(ids)} serving trial(s); "
              f"{queue.status().pending} pending")
        return 0

    if args.verb == "work":
        if args.trace_format == "columnar":
            # Workers inherit the environment, so setting these before
            # the pool spawns configures every child's trace cache.
            os.environ["REPRO_TRACE_FORMAT"] = "columnar"
            os.environ.setdefault("REPRO_SERVICE_TRACE_DIR",
                                  str(root / "traces"))
        telemetry = None
        if args.telemetry_dir is not None:
            from repro.observability.manifest import TelemetryRun
            telemetry = TelemetryRun(
                args.telemetry_dir, kind="service",
                settings={"root": str(root),
                          "workers": args.workers},
                install_sink=True)
            enable_tracing()
        try:
            if args.workers > 1:
                outcome = run_service(
                    root, n_workers=args.workers,
                    lease_ttl=args.lease_ttl,
                    max_attempts=args.max_attempts,
                    telemetry_dir=args.telemetry_dir)
                print(canonical_json(outcome["status"]))
                return 0
            queue, store = open_service(
                root, lease_ttl=args.lease_ttl,
                max_attempts=args.max_attempts)
            executed = work(queue, store, max_trials=args.max_trials)
            queue.reconcile(store)
            print(f"executed {executed} trial(s); "
                  f"{canonical_json(queue.status().as_dict())}")
            return 0
        finally:
            if telemetry is not None:
                telemetry.finalize("complete")

    if args.verb == "status":
        if args.watch:
            from repro.experiments.dashboard import watch
            return watch(root, interval=args.interval,
                         iterations=args.iterations)
        print(canonical_json(service_status(root)))
        return 0

    if args.verb == "report":
        _, store = open_service(root)
        report = build_report(store, alpha=args.alpha,
                              metric=args.metric)
        print(report.text)
        if args.html is not None:
            from repro.experiments.htmlreport import (
                report_from_store,
                write_html_report,
            )
            from repro.observability.events import read_events
            spans: List[dict] = []
            telemetry_dir = root / "telemetry"
            if telemetry_dir.is_dir():
                for path in sorted(
                        telemetry_dir.glob("events*.jsonl")):
                    spans.extend(read_events(path, event="span"))
            document = report_from_store(
                store, span_events=spans or None)
            written = write_html_report(args.html, document)
            print(f"html report written to {written}",
                  file=sys.stderr)
        return 0

    if args.verb == "regress":
        from repro.experiments.regress import detect_regressions
        _, store = open_service(root)
        try:
            regression = detect_regressions(
                store, baseline=args.baseline,
                candidate=args.candidate, alpha=args.alpha)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(canonical_json(regression.as_dict()))
        else:
            print(regression.render())
        return 1 if args.fail_on_regression \
            and regression.regressions else 0

    if args.verb == "compact":
        _, store = open_service(root)
        stats = store.compact()
        print(f"compacted: {stats.records} record(s) from "
              f"{stats.segments_merged} segment(s); "
              f"{stats.quarantined} quarantined, "
              f"{stats.duplicates_dropped} duplicate(s) dropped")
        return 0

    if args.verb == "chaos":
        from repro.experiments.chaos import run_chaos
        report = run_chaos(root, kills=args.kills,
                           corrupt=args.corrupt,
                           scale=SCALES[args.scale])
        print(report.render())
        return 0 if report.ok else 1

    raise ServiceError(f"unknown verb {args.verb!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
