"""Live terminal dashboard for a running experiment service.

``python -m repro.experiments service status --watch`` repaints a
one-screen summary every couple of seconds, built from two sources
that already exist for other reasons — no agent, no RPC port:

* the queue's lease directory (who holds what, how fresh each
  heartbeat is, how many attempts each trial has burned), read exactly
  like the one-shot ``status`` verb reads it;
* the run's ``events*.jsonl`` telemetry files (the supervisor's plus
  each worker's per-pid file), tailed incrementally.  ``span_started``
  / ``span`` pairs reconstruct what every process is doing *right
  now*; ``trial_completed`` events feed a trailing-window throughput
  and from it an ETA for the remaining queue.

Everything is injectable (clock, sleep, output stream) so the tests
drive the dashboard deterministically; the CLI wires in the real ones.
A torn trailing line in a tailed file — a worker mid-append — is left
unconsumed until its newline arrives, so the tail never misparses.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

PathLike = Union[str, Path]

__all__ = ["EventTailer", "Dashboard", "watch"]

#: Seconds of trial completions the throughput estimate looks back on.
THROUGHPUT_WINDOW = 30.0


class EventTailer:
    """Incremental reader over a set of append-only event files.

    Tracks a byte offset per file and only parses complete lines: the
    bytes after the last newline stay unconsumed until the writer
    finishes its append, which is what makes tailing a live file safe.
    Files appearing between polls are picked up automatically.
    """

    def __init__(self, directories: Sequence[PathLike],
                 pattern: str = "events*.jsonl"):
        self.directories = [Path(d) for d in directories]
        self.pattern = pattern
        self._offsets: Dict[Path, int] = {}

    def paths(self) -> List[Path]:
        found: List[Path] = []
        for directory in self.directories:
            if directory.is_dir():
                found.extend(sorted(directory.glob(self.pattern)))
        return found

    def poll(self) -> List[dict]:
        """Every complete, parseable event appended since last poll."""
        events: List[dict] = []
        for path in self.paths():
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as stream:
                    stream.seek(offset)
                    chunk = stream.read()
            except OSError:
                continue
            cut = chunk.rfind(b"\n")
            if cut < 0:
                continue  # no complete line yet
            self._offsets[path] = offset + cut + 1
            for line in chunk[:cut + 1].splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn or foreign line: not our problem
                if isinstance(record, dict):
                    record["_source"] = path.name
                    events.append(record)
        return events


class Dashboard:
    """Aggregates tailed events + lease census into one screenful."""

    def __init__(self, root: PathLike,
                 events_dirs: Optional[Sequence[PathLike]] = None,
                 clock=time.time):
        self.root = Path(root)
        if events_dirs is None:
            events_dirs = [self.root / "telemetry", self.root]
        self.tailer = EventTailer(events_dirs)
        self.clock = clock
        #: per source file: stack of currently open span names
        self._open_spans: Dict[str, List[dict]] = {}
        #: wall-clock stamps of recent trial completions
        self._completions: List[float] = []
        self._completed_total = 0
        self._last_event_ts: Dict[str, float] = {}

    # -- state ingestion --------------------------------------------------

    def update(self) -> None:
        for event in self.tailer.poll():
            source = event.get("_source", "?")
            ts = event.get("ts")
            if isinstance(ts, (int, float)):
                self._last_event_ts[source] = max(
                    self._last_event_ts.get(source, 0.0), ts)
            name = event.get("event")
            if name == "span_started":
                self._open_spans.setdefault(source, []).append(
                    {"name": event.get("name"),
                     "span_id": event.get("span_id")})
            elif name == "span":
                stack = self._open_spans.get(source, [])
                span_id = event.get("span_id")
                for index in range(len(stack) - 1, -1, -1):
                    if stack[index]["span_id"] == span_id:
                        del stack[index:]
                        break
            elif name == "trial_completed":
                self._completed_total += 1
                if isinstance(ts, (int, float)):
                    self._completions.append(ts)
        horizon = self.clock() - THROUGHPUT_WINDOW
        self._completions = [t for t in self._completions
                             if t >= horizon]

    # -- derived numbers --------------------------------------------------

    def throughput(self) -> float:
        """Trials/second over the trailing window."""
        return len(self._completions) / THROUGHPUT_WINDOW

    def eta_seconds(self, remaining: int) -> Optional[float]:
        rate = self.throughput()
        if remaining <= 0:
            return 0.0
        if rate <= 0:
            return None
        return remaining / rate

    def current_spans(self) -> Dict[str, str]:
        """source file -> 'outer > inner' chain of open spans."""
        chains = {}
        for source, stack in sorted(self._open_spans.items()):
            if stack:
                chains[source] = " > ".join(
                    str(span["name"]) for span in stack)
        return chains

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        from repro.experiments.service import service_status

        status = service_status(self.root, clock=self.clock)
        queue = status["queue"]
        store = status["store"]
        now = self.clock()
        remaining = queue.get("pending", 0) \
            + queue.get("running", 0) + queue.get("stale", 0)
        rate = self.throughput()
        eta = self.eta_seconds(remaining)
        lines = [
            f"service dashboard — {self.root}  "
            f"({time.strftime('%H:%M:%S', time.localtime(now))})",
            "",
            "queue   " + "  ".join(
                f"{key}={queue.get(key, 0)}"
                for key in ("pending", "running", "stale", "done",
                            "failed")),
            f"store   records={store['records']}  "
            f"quarantined={store['quarantined']}  "
            f"git={','.join(store['git_hashes']) or '-'}",
            f"rate    {rate:.2f} trials/s "
            f"(last {THROUGHPUT_WINDOW:.0f}s, "
            f"{self._completed_total} completed total)  "
            + (f"ETA {eta:.0f}s" if eta is not None
               else "ETA unknown (no recent completions)"),
            "",
        ]
        workers = status.get("workers", [])
        if workers:
            lines.append(f"{'trial':<28} {'owner':<22} "
                         f"{'hb age':>8} {'attempt':>7}  state")
            for worker in workers:
                age = worker.get("heartbeat_age_seconds")
                age_text = f"{age:.1f}s" if age is not None else "-"
                state = "STALE" if worker.get("stale") else "live"
                lines.append(
                    f"{str(worker['trial_id'])[:28]:<28} "
                    f"{str(worker.get('owner') or '-')[:22]:<22} "
                    f"{age_text:>8} {worker.get('attempt', 0):>7}  "
                    f"{state}")
        else:
            lines.append("(no leases held)")
        chains = self.current_spans()
        if chains:
            lines.append("")
            lines.append("in flight:")
            for source, chain in chains.items():
                lines.append(f"  {source}: {chain}")
        return "\n".join(lines)


def watch(root: PathLike, *, interval: float = 2.0,
          iterations: Optional[int] = None,
          events_dirs: Optional[Sequence[PathLike]] = None,
          clock=time.time, sleep=time.sleep,
          out: Optional[TextIO] = None,
          clear_screen: bool = True) -> int:
    """Repaint the dashboard every ``interval`` seconds.

    ``iterations`` bounds the loop (None = until interrupted); tests
    pass a small count plus fake ``clock``/``sleep``/``out``.  Returns
    0, or stops early (still 0) on Ctrl-C.
    """
    out = out if out is not None else sys.stdout
    dashboard = Dashboard(root, events_dirs=events_dirs, clock=clock)
    count = 0
    try:
        while iterations is None or count < iterations:
            dashboard.update()
            screen = dashboard.render()
            if clear_screen:
                out.write("\x1b[2J\x1b[H")
            out.write(screen + "\n")
            out.flush()
            count += 1
            if iterations is not None and count >= iterations:
                break
            sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0
