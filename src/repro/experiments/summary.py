"""Markdown summaries for experiment batches.

``python -m repro.experiments all --scale small --outdir results/
--markdown`` writes ``results/SUMMARY.md``: one document linking every
experiment's artifacts with its rendered report inlined — the shape of
this repository's EXPERIMENTS.md, regenerated mechanically from a run.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Union

from repro.experiments.runner import ExperimentReport

PathLike = Union[str, Path]

#: Section headers per experiment-id prefix, in rendering order.
_SECTIONS = (
    ("table", "Workload characterization (Tables 1-5)"),
    ("fig", "Performance figures (DFN trace)"),
    ("rtp", "RTP trace (Section 4.4)"),
    ("ablation", "Ablations"),
    ("verify", "Attestation"),
)


def _section_for(experiment_id: str) -> str:
    for prefix, title in _SECTIONS:
        if experiment_id.startswith(prefix):
            return title
    return "Other"


def render_markdown_summary(reports: List[ExperimentReport],
                            title: str = "Experiment summary") -> str:
    """One markdown document for a batch of reports."""
    if not reports:
        raise ValueError("no reports to summarize")
    scale = reports[0].scale_name
    lines = [
        f"# {title}",
        "",
        f"Scale: `{scale}` — generated "
        f"{time.strftime('%Y-%m-%d %H:%M:%S UTC', time.gmtime())} by "
        "`python -m repro.experiments`.",
        "",
        "## Contents",
        "",
    ]
    for report in reports:
        lines.append(f"- [{report.experiment_id}]"
                     f"(#{report.experiment_id.replace('*', '')})")
    lines.append("")

    current_section = None
    for report in reports:
        section = _section_for(report.experiment_id)
        if section != current_section:
            lines.append(f"## {section}")
            lines.append("")
            current_section = section
        lines.append(f"### {report.experiment_id}")
        lines.append("")
        lines.append("```")
        lines.append(report.text.rstrip())
        lines.append("```")
        lines.append("")
        if report.artifacts:
            names = ", ".join(
                f"`{report.experiment_id}/{name}`"
                for name in sorted(report.artifacts))
            lines.append(f"CSV series: {names}")
            lines.append("")
    return "\n".join(lines) + "\n"


def write_markdown_summary(reports: List[ExperimentReport],
                           outdir: PathLike,
                           filename: str = "SUMMARY.md") -> Path:
    """Write the batch summary next to the per-experiment artifacts."""
    path = Path(outdir) / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_markdown_summary(reports))
    return path
