"""Experiment harness: one named experiment per paper table/figure.

Run from the command line::

    python -m repro.experiments table2 --scale small
    python -m repro.experiments fig2 --scale small --outdir results/

or programmatically::

    from repro.experiments import run_experiment
    report = run_experiment("fig2", scale="small")
    print(report.text)

Experiment ids: ``table1`` … ``table5``, ``fig1``, ``fig2``, ``fig3``,
``rtp-const``, ``rtp-packet``, ``ablation-beta``, ``ablation-warmup``,
``ablation-modification``.  See DESIGN.md for the per-experiment index.
"""

from repro.experiments.config import (
    EXPERIMENT_IDS,
    SCALES,
    ExperimentSettings,
)
from repro.experiments.runner import (
    ExperimentReport,
    SuiteFailure,
    SuiteResult,
    run_experiment,
    run_suite,
)
from repro.experiments.report import write_report

__all__ = [
    "EXPERIMENT_IDS",
    "SCALES",
    "ExperimentSettings",
    "ExperimentReport",
    "SuiteFailure",
    "SuiteResult",
    "run_experiment",
    "run_suite",
    "write_report",
]
