"""Experiment harness: one named experiment per paper table/figure.

Run from the command line::

    python -m repro.experiments table2 --scale small
    python -m repro.experiments fig2 --scale small --outdir results/

or programmatically::

    from repro.experiments import run_experiment
    report = run_experiment("fig2", scale="small")
    print(report.text)

Experiment ids: ``table1`` … ``table5``, ``fig1``, ``fig2``, ``fig3``,
``rtp-const``, ``rtp-packet``, ``ablation-beta``, ``ablation-warmup``,
``ablation-modification``.  See DESIGN.md for the per-experiment index.

For standing experiment programs — many seeded replicas per config,
surviving worker crashes and machine restarts — use the durable
service instead::

    python -m repro.experiments service enqueue --scale tiny
    python -m repro.experiments service work --workers 4
    python -m repro.experiments service report

(see :mod:`repro.experiments.service`, :mod:`repro.experiments.queue`,
:mod:`repro.experiments.store`, and the chaos harness in
:mod:`repro.experiments.chaos`).
"""

from repro.experiments.config import (
    EXPERIMENT_IDS,
    SCALES,
    ExperimentSettings,
)
from repro.experiments.dashboard import Dashboard, watch
from repro.experiments.htmlreport import (
    report_from_experiment,
    report_from_store,
    write_html_report,
)
from repro.experiments.queue import ClaimedTrial, QueueStatus, TrialQueue
from repro.experiments.regress import (
    RegressionReport,
    Verdict,
    detect_regressions,
)
from repro.experiments.report import write_report
from repro.experiments.runner import (
    ExperimentReport,
    SuiteFailure,
    SuiteResult,
    run_experiment,
    run_suite,
)
from repro.experiments.service import (
    ServiceReport,
    TrialSpec,
    build_report,
    enqueue_grid,
    execute_trial,
    open_service,
    run_service,
    service_status,
    work,
)
from repro.experiments.store import ResultKey, ResultsStore, git_revision

__all__ = [
    "EXPERIMENT_IDS",
    "SCALES",
    "ExperimentSettings",
    "ExperimentReport",
    "SuiteFailure",
    "SuiteResult",
    "run_experiment",
    "run_suite",
    "write_report",
    # durable experiment service
    "TrialQueue",
    "ClaimedTrial",
    "QueueStatus",
    "ResultsStore",
    "ResultKey",
    "git_revision",
    "TrialSpec",
    "ServiceReport",
    "open_service",
    "enqueue_grid",
    "execute_trial",
    "work",
    "run_service",
    "service_status",
    "build_report",
    # cross-run observability
    "detect_regressions",
    "RegressionReport",
    "Verdict",
    "report_from_store",
    "report_from_experiment",
    "write_html_report",
    "Dashboard",
    "watch",
]
