"""``python -m repro.experiments`` dispatch."""

import sys

from repro.experiments.cli import main

sys.exit(main())
