"""Repeated-trial statistics for experiment reports.

The service runs every configuration N times under different seeds;
this module turns those replicate samples into defensible claims:

* :func:`summarize` — mean, standard deviation, and a t-based
  confidence interval per sample;
* :func:`mann_whitney_u` — the Mann-Whitney U rank-sum test (exact
  permutation distribution for small samples, normal approximation
  with tie correction otherwise), the standard non-parametric test for
  "does policy A beat policy B" when hit-ratio samples are not normal;
* :func:`vargha_delaney_a12` — the A12 effect size (probability a
  random A sample beats a random B sample), because with enough
  replicas *everything* is significant and only effect size says
  whether anyone should care;
* :func:`rank_policies` — an ordering that **refuses to rank**
  statistically indistinguishable neighbours apart: policies whose
  pairwise difference is not significant at the chosen alpha share a
  rank.

Everything is hand-rolled on the standard library (matching
:mod:`repro.analysis.confidence`) so the repo stays dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.errors import AnalysisError

#: Max C(n+m, n) for which the exact U permutation distribution is
#: enumerated; beyond this the normal approximation takes over.
_EXACT_COMBINATION_LIMIT = 20_000

#: Two-sided critical t values at 95% by degrees of freedom (1..30);
#: beyond 30 the normal 1.96 is close enough for reporting purposes.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


@dataclass(frozen=True)
class SampleSummary:
    """Descriptive statistics for one metric's replicate sample."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> dict:
        return {"n": self.n, "mean": self.mean, "std": self.std,
                "ci_low": self.ci_low, "ci_high": self.ci_high}


@dataclass(frozen=True)
class Comparison:
    """A pairwise significance + effect-size verdict."""

    a: str
    b: str
    u_statistic: float
    p_value: float
    a12: float
    significant: bool
    magnitude: str  # negligible | small | medium | large

    def as_dict(self) -> dict:
        return {"a": self.a, "b": self.b,
                "u_statistic": self.u_statistic,
                "p_value": self.p_value, "a12": self.a12,
                "significant": self.significant,
                "magnitude": self.magnitude}


def _critical_t95(dof: int) -> float:
    if dof < 1:
        raise AnalysisError("t interval needs >= 2 observations")
    if dof <= len(_T_95):
        return _T_95[dof - 1]
    return 1.96


def summarize(values: Sequence[float]) -> SampleSummary:
    """Mean, sample std, and 95% t-interval for one replicate set."""
    if not values:
        raise AnalysisError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return SampleSummary(n=1, mean=mean, std=0.0,
                             ci_low=mean, ci_high=mean)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    half = _critical_t95(n - 1) * std / math.sqrt(n)
    return SampleSummary(n=n, mean=mean, std=std,
                         ci_low=mean - half, ci_high=mean + half)


def _rank(pooled: Sequence[float]) -> List[float]:
    """Midranks of a pooled sample (ties share their average rank)."""
    order = sorted(range(len(pooled)), key=lambda i: pooled[i])
    ranks = [0.0] * len(pooled)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and pooled[order[j + 1]] == pooled[order[i]]):
            j += 1
        midrank = (i + j) / 2 + 1  # ranks are 1-based
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        i = j + 1
    return ranks


def _u_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """U for sample ``a`` via the rank-sum identity."""
    ranks = _rank(list(a) + list(b))
    rank_sum_a = sum(ranks[: len(a)])
    return rank_sum_a - len(a) * (len(a) + 1) / 2


def _exact_p(a: Sequence[float], b: Sequence[float],
             observed_u: float) -> float:
    """Two-sided exact p: enumerate every assignment of the pooled
    sample to group A and count Us at least as extreme as observed."""
    pooled = list(a) + list(b)
    n_a = len(a)
    mu = n_a * len(b) / 2
    observed_dev = abs(observed_u - mu)
    total = extreme = 0
    indices = range(len(pooled))
    ranks = _rank(pooled)
    for combo in combinations(indices, n_a):
        rank_sum = sum(ranks[i] for i in combo)
        u = rank_sum - n_a * (n_a + 1) / 2
        total += 1
        # small epsilon guards float midrank arithmetic
        if abs(u - mu) >= observed_dev - 1e-12:
            extreme += 1
    return extreme / total


def _normal_p(a: Sequence[float], b: Sequence[float],
              observed_u: float) -> float:
    """Two-sided normal-approximation p with tie correction and a
    continuity correction of 0.5."""
    n_a, n_b = len(a), len(b)
    n = n_a + n_b
    mu = n_a * n_b / 2
    pooled = sorted(list(a) + list(b))
    tie_term = 0.0
    i = 0
    while i < n:
        j = i
        while j + 1 < n and pooled[j + 1] == pooled[i]:
            j += 1
        t = j - i + 1
        tie_term += t ** 3 - t
        i = j + 1
    variance = n_a * n_b / 12 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0:  # every pooled value identical
        return 1.0
    z = (abs(observed_u - mu) - 0.5) / math.sqrt(variance)
    z = max(z, 0.0)
    return math.erfc(z / math.sqrt(2))


def mann_whitney_u(a: Sequence[float],
                   b: Sequence[float]) -> Tuple[float, float]:
    """Two-sided Mann-Whitney U test; returns ``(U_a, p_value)``.

    Uses the exact permutation distribution whenever the pooled sample
    is small enough to enumerate (the usual case for 5-30 replicate
    runs), otherwise a tie-corrected normal approximation.
    """
    if not a or not b:
        raise AnalysisError("Mann-Whitney needs two non-empty samples")
    observed_u = _u_statistic(a, b)
    if math.comb(len(a) + len(b), len(a)) <= _EXACT_COMBINATION_LIMIT:
        p = _exact_p(a, b, observed_u)
    else:
        p = _normal_p(a, b, observed_u)
    return observed_u, min(1.0, p)


def vargha_delaney_a12(a: Sequence[float],
                       b: Sequence[float]) -> float:
    """P(random a > random b) + P(tie)/2; 0.5 means no effect."""
    if not a or not b:
        raise AnalysisError("A12 needs two non-empty samples")
    u_a = _u_statistic(a, b)
    return u_a / (len(a) * len(b))


def a12_magnitude(a12: float) -> str:
    """Conventional magnitude labels (Vargha & Delaney 2000)."""
    deviation = abs(a12 - 0.5)
    if deviation < 0.06:
        return "negligible"
    if deviation < 0.14:
        return "small"
    if deviation < 0.21:
        return "medium"
    return "large"


def compare(name_a: str, a: Sequence[float], name_b: str,
            b: Sequence[float], alpha: float = 0.05) -> Comparison:
    u, p = mann_whitney_u(a, b)
    a12 = vargha_delaney_a12(a, b)
    return Comparison(a=name_a, b=name_b, u_statistic=u, p_value=p,
                      a12=a12, significant=p < alpha,
                      magnitude=a12_magnitude(a12))


def rank_policies(samples: Dict[str, Sequence[float]],
                  alpha: float = 0.05,
                  higher_is_better: bool = True) -> List[dict]:
    """Rank policies by mean, sharing ranks across insignificance.

    Policies are sorted by mean, then each adjacent pair is tested
    with Mann-Whitney; a pair whose difference is *not* significant at
    ``alpha`` shares a rank — the report refuses to claim an ordering
    the replicate evidence cannot support.  Returns a list of dicts
    ``{name, rank, summary, separated}`` in display order, where
    ``separated`` is False when the policy ties its predecessor.
    """
    if not samples:
        return []
    ordered = sorted(samples, key=lambda k: sum(samples[k]) /
                     len(samples[k]), reverse=higher_is_better)
    out: List[dict] = []
    rank = 1
    for index, name in enumerate(ordered):
        separated = True
        if index > 0:
            prev = ordered[index - 1]
            _, p = mann_whitney_u(samples[prev], samples[name])
            separated = p < alpha
            if separated:
                rank = index + 1
        out.append({"name": name, "rank": rank,
                    "separated": separated,
                    "summary": summarize(list(samples[name])).as_dict()})
    return out
