"""Chaos harness: prove the service's durability guarantees on purpose.

:func:`run_chaos` runs the same trial grid twice:

* a **reference** run — one uninterrupted in-process worker; and
* a **chaos** run — worker processes SIGKILL'd mid-trial (a
  deterministic ``hang`` fault parks each victim inside a known
  trial, so the kill always lands in the claim-to-commit window),
  stale leases reclaimed, optionally a store segment bit-flipped and
  quarantined, then the queue reconciled and drained.

Both stores are then compacted and compared byte for byte.  The
service's whole design — fsync'd CRC'd appends, first-wins dedup,
deterministic compaction, lease reclamation, marker-vs-store
reconciliation — exists to make that comparison come out equal; this
harness is the executable statement of the claim.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.errors import ServiceError
from repro.experiments.queue import TrialQueue
from repro.experiments.service import (
    enqueue_grid,
    open_service,
    work,
)
from repro.experiments.store import ResultsStore
from repro.observability import events as _events
from repro.observability.logs import get_logger
from repro.resilience.faults import FaultInjector, corrupt_file

PathLike = Union[str, Path]

_logger = get_logger("experiments.chaos")

#: How long the parent waits for a victim worker to claim its target
#: trial before declaring the chaos run wedged.
_CLAIM_WAIT_SECONDS = 120.0

#: Safety bound on drain iterations; each iteration either completes
#: trials or proves the queue drained, so a handful always suffices.
_MAX_DRAIN_ROUNDS = 8


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` comparison."""

    reference_digest: str
    chaos_digest: str
    records: int
    kills: int
    corrupted_files: int
    quarantined: int
    reopened: List[str] = field(default_factory=list)
    drained: bool = True

    @property
    def ok(self) -> bool:
        return (self.drained
                and self.reference_digest == self.chaos_digest)

    def render(self) -> str:
        verdict = "IDENTICAL" if self.ok else "MISMATCH"
        return "\n".join([
            "chaos run vs uninterrupted reference:",
            f"  records            {self.records}",
            f"  workers SIGKILLed  {self.kills}",
            f"  files corrupted    {self.corrupted_files}",
            f"  lines quarantined  {self.quarantined}",
            f"  trials reopened    {len(self.reopened)}",
            f"  queue drained      {self.drained}",
            f"  reference digest   {self.reference_digest}",
            f"  chaos digest       {self.chaos_digest}",
            f"  stores             {verdict}",
        ])


def _chaos_worker_entry(root: str, lease_ttl: float,
                        injector: Optional[FaultInjector]) -> None:
    """Child-process worker (module-level so it forks cleanly)."""
    _events.set_event_sink(None)
    queue, store = open_service(root, lease_ttl=lease_ttl)
    work(queue, store, fault_injector=injector)


def _wait_for_claim(queue: TrialQueue, trial_id: str,
                    timeout: float = _CLAIM_WAIT_SECONDS) -> str:
    """Block until some worker holds a live lease on ``trial_id``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        holder = queue.leases.holder(trial_id)
        if holder is not None and not queue.leases.is_stale(trial_id):
            return holder
        time.sleep(0.02)
    raise ServiceError(
        f"chaos victim never claimed trial {trial_id!r} "
        f"within {timeout:g}s")


def _wait_for_stale(queue: TrialQueue, trial_id: str,
                    timeout: float = _CLAIM_WAIT_SECONDS) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if queue.leases.holder(trial_id) is None \
                or queue.leases.is_stale(trial_id):
            return
        time.sleep(0.02)
    raise ServiceError(
        f"lease on {trial_id!r} never went stale within {timeout:g}s")


def _drain(queue: TrialQueue, store: ResultsStore) -> bool:
    """Work + reconcile until the queue is drained; False if wedged."""
    for _ in range(_MAX_DRAIN_ROUNDS):
        work(queue, store)
        queue.reconcile(store)
        if queue.status().drained:
            return True
    return queue.status().drained


def run_chaos(root: PathLike, *, kills: int = 2, corrupt: bool = False,
              scale: float = 1.0 / 512.0,
              traces: Sequence[str] = ("dfn",),
              policies: Sequence[str] = ("lru", "gds(1)"),
              size_fractions: Sequence[float] = (0.01,),
              seeds: Sequence[int] = (42, 1042),
              lease_ttl: float = 1.0) -> ChaosReport:
    """SIGKILL workers mid-trial, optionally corrupt the store, and
    compare the recovered result set against an uninterrupted run.

    Each kill round plants a deterministic ``hang`` fault on one known
    trial, spawns a real worker process, waits for it to claim the
    victim trial (so the kill is guaranteed to land mid-trial, lease
    held, commit pending), SIGKILLs it, and waits for the orphaned
    lease to go stale.  With ``corrupt=True`` a store segment is then
    bit-flipped; the scan must quarantine the damaged record and
    reconciliation must re-open its trial.  Finally the queue is
    drained in-process, both stores are compacted, and their bytes
    compared.
    """
    import multiprocessing

    root = Path(root)
    grid = {"traces": traces, "scale": scale, "policies": policies,
            "size_fractions": size_fractions, "seeds": seeds}

    # Reference: the same grid, no interference.
    ref_queue, ref_store = open_service(root / "reference",
                                        lease_ttl=lease_ttl)
    enqueue_grid(ref_queue, **grid)
    if not _drain(ref_queue, ref_store):
        raise ServiceError("reference run failed to drain")
    ref_store.compact()

    # Chaos: same grid, hostile conditions.
    queue, store = open_service(root / "chaos", lease_ttl=lease_ttl)
    trial_ids = sorted(enqueue_grid(queue, **grid))
    kills = min(kills, len(trial_ids))
    context = multiprocessing.get_context()
    performed = 0
    for round_number in range(kills):
        # Workers claim in sorted-id order, so victim N is only
        # reached after the previous rounds' trials are re-done.
        victim_trial = trial_ids[round_number]
        injector = FaultInjector.of(
            # Hang on every attempt: only SIGKILL ends this worker.
            *[_hang_spec(victim_trial, attempt)
              for attempt in range(1, queue.max_attempts + 1)])
        worker = context.Process(
            target=_chaos_worker_entry,
            args=(str(root / "chaos"), lease_ttl, injector))
        worker.start()
        try:
            _wait_for_claim(queue, victim_trial)
            os.kill(worker.pid, signal.SIGKILL)
        finally:
            worker.join()
        _wait_for_stale(queue, victim_trial)
        performed += 1
        _logger.info(
            "chaos round %d: worker %d SIGKILLed mid-trial %s",
            round_number + 1, worker.pid, victim_trial,
            extra={"round": round_number + 1, "pid": worker.pid,
                   "trial_id": victim_trial})

    if not _drain(queue, store):
        return _report(ref_store, store, performed, 0, [],
                       drained=False)

    corrupted = 0
    reopened: List[str] = []
    if corrupt:
        segments = sorted(store.segments_dir.glob("*.jsonl"))
        targets = segments[:1] if segments else (
            [store.base_path] if store.base_path.exists() else [])
        for path in targets:
            corrupt_file(path, mode="bitflip", seed=7)
            corrupted += 1
        # The scan inside reconcile quarantines the damage; reconcile
        # re-opens the trial whose record it destroyed.
        reopened = queue.reconcile(store)
        if not _drain(queue, store):
            return _report(ref_store, store, performed, corrupted,
                           reopened, drained=False)

    store.compact()
    return _report(ref_store, store, performed, corrupted, reopened,
                   drained=True)


def _hang_spec(trial_id: str, attempt: int):
    from repro.resilience.faults import FaultSpec

    return FaultSpec(key=trial_id, kind="hang", attempts=(attempt,),
                     hang_seconds=3600.0)


def _report(ref_store: ResultsStore, store: ResultsStore, kills: int,
            corrupted: int, reopened: List[str], *,
            drained: bool) -> ChaosReport:
    return ChaosReport(
        reference_digest=ref_store.digest(),
        chaos_digest=store.digest(),
        records=len(store.records()),
        kills=kills,
        corrupted_files=corrupted,
        quarantined=len(store.quarantined()),
        reopened=reopened,
        drained=drained,
    )
