"""Cross-revision regression detection over the results store.

The store keys every record by ``(config_hash, git_hash, seed)``, so
two code revisions that ran the same seeded trial grid leave two
replicate samples per configuration and metric.  This module turns
those into verdicts: for every (trace, scale, policy, size_fraction)
condition and every metric it can find — overall hit rate, byte hit
rate, and the per-document-type hit rates the paper's analysis turns
on — it runs a Mann-Whitney U test plus the Vargha-Delaney A12 effect
size between the baseline and candidate revisions and labels the pair

* ``improved`` / ``regressed`` — significant at ``alpha`` **and** a
  non-negligible effect size (direction from A12);
* ``indistinguishable`` — everything else.  Statistical insignificance
  or a negligible effect is *never* flagged: seed-to-seed noise between
  two identical binaries must come out clean, or the detector is just
  an alarm that cries.

Run it offline (CI does)::

    python -m repro.experiments.regress --root service/ \\
        --baseline abc123 --candidate def456 --fail-on-regression

or through the service CLI as ``experiments service regress``.  With a
store holding exactly two git hashes the revisions are inferred; the
candidate defaults to the current checkout's revision when present.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.experiments.stats import (
    a12_magnitude,
    mann_whitney_u,
    summarize,
    vargha_delaney_a12,
)
from repro.experiments.store import ResultsStore, git_revision

__all__ = [
    "Verdict",
    "RegressionReport",
    "collect_samples",
    "resolve_hashes",
    "detect_regressions",
    "main",
]

#: Verdict labels.
IMPROVED = "improved"
REGRESSED = "regressed"
INDISTINGUISHABLE = "indistinguishable"


@dataclass(frozen=True)
class Verdict:
    """One (condition, metric) comparison between two revisions."""

    trace: str
    scale: float
    policy: str
    size_fraction: float
    metric: str
    n_baseline: int
    n_candidate: int
    mean_baseline: float
    mean_candidate: float
    delta: float
    p_value: float
    a12: float
    magnitude: str
    verdict: str

    @property
    def condition(self) -> str:
        return (f"{self.trace}/scale={self.scale:g}/{self.policy}"
                f"/cache={self.size_fraction:g}")

    def as_dict(self) -> dict:
        return {
            "trace": self.trace, "scale": self.scale,
            "policy": self.policy,
            "size_fraction": self.size_fraction,
            "metric": self.metric,
            "n_baseline": self.n_baseline,
            "n_candidate": self.n_candidate,
            "mean_baseline": self.mean_baseline,
            "mean_candidate": self.mean_candidate,
            "delta": self.delta, "p_value": self.p_value,
            "a12": self.a12, "magnitude": self.magnitude,
            "verdict": self.verdict,
        }


@dataclass
class RegressionReport:
    """All verdicts for one baseline→candidate comparison."""

    baseline: str
    candidate: str
    alpha: float
    verdicts: List[Verdict]

    @property
    def regressions(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.verdict == REGRESSED]

    @property
    def improvements(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.verdict == IMPROVED]

    def as_dict(self) -> dict:
        return {
            "baseline": self.baseline, "candidate": self.candidate,
            "alpha": self.alpha,
            "verdicts": [v.as_dict() for v in self.verdicts],
            "summary": {
                "regressed": len(self.regressions),
                "improved": len(self.improvements),
                "indistinguishable": len(self.verdicts)
                - len(self.regressions) - len(self.improvements),
            },
        }

    def render(self) -> str:
        lines = [
            f"regression check: baseline={self.baseline} -> "
            f"candidate={self.candidate} (alpha={self.alpha:g})",
            f"{'condition':<38} {'metric':<22} {'base':>8} "
            f"{'cand':>8} {'delta':>8} {'p':>7} {'A12':>6} "
            f"{'verdict':<17}",
        ]
        for v in self.verdicts:
            lines.append(
                f"{v.condition:<38} {v.metric:<22} "
                f"{v.mean_baseline:>8.4f} {v.mean_candidate:>8.4f} "
                f"{v.delta:>+8.4f} {v.p_value:>7.4f} {v.a12:>6.3f} "
                f"{v.verdict:<17}")
        if not self.verdicts:
            lines.append("(no configuration present under both "
                         "revisions)")
        lines.append(
            f"verdicts: {len(self.improvements)} improved, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.verdicts) - len(self.improvements) - len(self.regressions)} "
            f"indistinguishable")
        return "\n".join(lines)


def _payload_metrics(payload: dict) -> Dict[str, float]:
    """Every comparable metric a service record carries.

    Older records (pre per-type breakdown) simply yield fewer metrics;
    a revision pair is compared on the intersection both sides have.
    """
    out: Dict[str, float] = {}
    for name in ("hit_rate", "byte_hit_rate"):
        value = payload.get(name)
        if isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            out[name] = float(value)
    for doc_type, value in sorted(
            (payload.get("type_hit_rates") or {}).items()):
        if isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            out[f"hit_rate[{doc_type}]"] = float(value)
    return out


# condition -> git_hash -> metric -> {seed: value}
Samples = Dict[Tuple[str, float, str, float],
               Dict[str, Dict[str, Dict[int, float]]]]


def collect_samples(store: ResultsStore) -> Samples:
    """Group the store's service records for cross-revision tests.

    Keyed by experimental condition — (trace, scale, policy,
    size_fraction) — then git hash, then metric name; the innermost
    dict is keyed by seed so a duplicate append never double-counts a
    replica.
    """
    samples: Samples = {}
    for key, record in sorted(store.records().items()):
        payload = record.get("payload") or {}
        spec = payload.get("spec") or {}
        if not all(field in spec for field in
                   ("trace", "scale", "policy", "size_fraction")):
            continue  # foreign record (not written by the service)
        condition = (spec["trace"], spec["scale"], spec["policy"],
                     spec["size_fraction"])
        by_hash = samples.setdefault(condition, {})
        by_metric = by_hash.setdefault(key.git_hash, {})
        for metric, value in _payload_metrics(payload).items():
            by_metric.setdefault(metric, {})[key.seed] = value
    return samples


def resolve_hashes(store: ResultsStore,
                   baseline: Optional[str] = None,
                   candidate: Optional[str] = None
                   ) -> Tuple[str, str]:
    """Fill in missing revision hashes from the store's contents.

    The candidate defaults to the current checkout's revision when the
    store holds records for it; the baseline can be inferred only when
    that leaves exactly one other revision.  Anything ambiguous is an
    error that lists what the store actually holds — guessing which of
    three revisions to regress against silently would be worse than
    failing.
    """
    hashes = sorted({key.git_hash for key in store.records()})
    if baseline is not None and candidate is not None:
        return baseline, candidate
    if candidate is None:
        current = git_revision()
        if current in hashes:
            candidate = current
        elif baseline is not None and len(hashes) == 2:
            candidate = next(h for h in hashes if h != baseline)
        else:
            raise ServiceError(
                "cannot infer --candidate: current revision "
                f"{current!r} has no records; store holds "
                f"{hashes or '(nothing)'}")
    if baseline is None:
        others = [h for h in hashes if h != candidate]
        if len(others) != 1:
            raise ServiceError(
                "cannot infer --baseline: store holds revisions "
                f"{hashes}; pass --baseline explicitly")
        baseline = others[0]
    return baseline, candidate


def detect_regressions(store: ResultsStore,
                       baseline: Optional[str] = None,
                       candidate: Optional[str] = None,
                       alpha: float = 0.05,
                       metrics: Optional[Sequence[str]] = None
                       ) -> RegressionReport:
    """Compare every shared (condition, metric) pair across revisions.

    A pair is flagged ``improved``/``regressed`` only when the
    Mann-Whitney p-value clears ``alpha`` *and* the A12 effect size is
    non-negligible; direction comes from A12 (candidate vs baseline,
    higher-is-better metrics only live in the store).  ``metrics``
    restricts the comparison to the named metrics.
    """
    baseline, candidate = resolve_hashes(store, baseline, candidate)
    if baseline == candidate:
        raise ServiceError(
            f"baseline and candidate are both {candidate!r}")
    verdicts: List[Verdict] = []
    for condition, by_hash in sorted(collect_samples(store).items(),
                                     key=lambda item: str(item[0])):
        base_metrics = by_hash.get(baseline) or {}
        cand_metrics = by_hash.get(candidate) or {}
        shared = sorted(set(base_metrics) & set(cand_metrics))
        for metric in shared:
            if metrics is not None and metric not in metrics:
                continue
            base = [v for _, v in sorted(base_metrics[metric].items())]
            cand = [v for _, v in sorted(cand_metrics[metric].items())]
            _, p = mann_whitney_u(cand, base)
            a12 = vargha_delaney_a12(cand, base)
            magnitude = a12_magnitude(a12)
            if p < alpha and magnitude != "negligible":
                verdict = IMPROVED if a12 > 0.5 else REGRESSED
            else:
                verdict = INDISTINGUISHABLE
            trace, scale, policy, fraction = condition
            verdicts.append(Verdict(
                trace=trace, scale=scale, policy=policy,
                size_fraction=fraction, metric=metric,
                n_baseline=len(base), n_candidate=len(cand),
                mean_baseline=summarize(base).mean,
                mean_candidate=summarize(cand).mean,
                delta=summarize(cand).mean - summarize(base).mean,
                p_value=p, a12=a12, magnitude=magnitude,
                verdict=verdict))
    return RegressionReport(baseline=baseline, candidate=candidate,
                            alpha=alpha, verdicts=verdicts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.regress",
        description="Statistically-gated regression detection between "
                    "two git revisions sharing one results store.")
    parser.add_argument("--root", default="service/",
                        help="service root directory")
    parser.add_argument("--baseline", default=None,
                        help="baseline git hash (inferred when the "
                             "store holds exactly two)")
    parser.add_argument("--candidate", default=None,
                        help="candidate git hash (default: current "
                             "checkout's revision)")
    parser.add_argument("--alpha", type=float, default=0.05)
    parser.add_argument("--metric", action="append", default=None,
                        help="restrict to this metric (repeatable)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable report "
                             "instead of the table")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any pair is labelled "
                             "'regressed' (for CI gates)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments.service import STORE_DIRNAME
    from repro.experiments.store import canonical_json
    from pathlib import Path

    args = build_parser().parse_args(
        list(sys.argv[1:] if argv is None else argv))
    store = ResultsStore(Path(args.root) / STORE_DIRNAME)
    try:
        report = detect_regressions(
            store, baseline=args.baseline, candidate=args.candidate,
            alpha=args.alpha, metrics=args.metric)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(canonical_json(report.as_dict()))
    else:
        print(report.render())
    if args.fail_on_regression and report.regressions:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
