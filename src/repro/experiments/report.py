"""Writing experiment reports and artifacts to disk."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.experiments.htmlreport import report_from_experiment
from repro.experiments.runner import ExperimentReport

PathLike = Union[str, Path]


def write_report(report: ExperimentReport, outdir: PathLike) -> Path:
    """Write a report's text, JSON data, CSVs, and HTML rendering.

    Layout::

        <outdir>/<experiment_id>/report.txt
        <outdir>/<experiment_id>/report.html
        <outdir>/<experiment_id>/data.json
        <outdir>/<experiment_id>/<artifact>.csv ...

    ``report.html`` is fully self-contained (inline styles + SVG, no
    scripts): sweep experiments get per-policy hit-rate curves with a
    panel per plotted document type, others embed the text report.
    Returns the experiment directory.
    """
    directory = Path(outdir) / report.experiment_id
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "report.txt").write_text(report.text + "\n")
    (directory / "report.html").write_text(
        report_from_experiment(report), encoding="utf-8")
    (directory / "data.json").write_text(json.dumps(
        {
            "experiment_id": report.experiment_id,
            "scale": report.scale_name,
            "data": report.data,
        },
        indent=2, default=str))
    for name, content in report.artifacts.items():
        (directory / name).write_text(content)
    return directory
