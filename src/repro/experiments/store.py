"""Crash-safe, append-only results store for the experiment service.

Every completed trial becomes one JSONL write-ahead record keyed by
``(config_hash, git_hash, seed)``.  A record line is a CRC-verified
envelope::

    {"crc": "1f2e3d4c", "record": {"config_hash": ..., "git_hash": ...,
                                   "seed": ..., "payload": {...}}}

with the CRC computed over the canonical (sorted-keys, no-whitespace)
JSON of the inner record, so any torn append, truncation, or bit flip
is detected on read.  Records are written with ``fsync`` before the
append returns, so a trial reported persisted survives power loss.

Concurrency without coordination: each writing process appends to its
own uniquely named *segment* file under ``segments/``, so concurrent
workers never interleave bytes.  A scan merges the compacted base file
(``results.jsonl``) with every segment; :meth:`ResultsStore.compact`
folds the segments into a canonical base — records deduplicated by key
and sorted — and deletes them.  Because the canonical base is a pure
function of the record *set*, two runs that completed the same trials
compact to **bit-identical** stores regardless of interruptions,
worker counts, or append order; the chaos harness asserts exactly
that.

Corrupt records never poison a scan: a line that fails CRC or JSON
validation is *quarantined* — appended with provenance to
``quarantine/quarantined.jsonl``, removed from its source file via an
atomic rewrite, logged, and surfaced as a ``record_quarantined``
telemetry event.  The scan then continues; lost records are re-run by
the queue's reconcile step, not silently dropped.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
import uuid
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple, Union

from repro.errors import StoreError
from repro.observability import events as _events
from repro.observability.logs import get_logger

PathLike = Union[str, Path]

_logger = get_logger("experiments.store")

RECORD_VERSION = 1

BASE_FILENAME = "results.jsonl"
SEGMENTS_DIRNAME = "segments"
QUARANTINE_DIRNAME = "quarantine"
QUARANTINE_FILENAME = "quarantined.jsonl"


class ResultKey(NamedTuple):
    """Identity of one trial result: what config, what code, what seed."""

    config_hash: str
    git_hash: str
    seed: int

    def as_str(self) -> str:
        return f"{self.config_hash}:{self.git_hash}:{self.seed}"


def canonical_json(obj: object) -> str:
    """The one true serialization — sorted keys, no whitespace — so
    CRCs and compacted stores are byte-stable across processes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _crc(text: str) -> str:
    return format(zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_record(record: dict) -> str:
    """One WAL line (without newline) for a record dict."""
    inner = canonical_json(record)
    return canonical_json({"crc": _crc(inner), "record": record})


def decode_record(line: str) -> dict:
    """Parse and CRC-verify one WAL line; raises ValueError on any
    corruption (torn JSON, missing fields, CRC mismatch)."""
    envelope = json.loads(line)
    if not isinstance(envelope, dict) or "record" not in envelope \
            or "crc" not in envelope:
        raise ValueError("line lacks the crc/record envelope")
    record = envelope["record"]
    expected = _crc(canonical_json(record))
    if envelope["crc"] != expected:
        raise ValueError(
            f"CRC mismatch: stored {envelope['crc']!r}, "
            f"computed {expected!r}")
    for field in ("config_hash", "git_hash", "seed", "payload"):
        if field not in record:
            raise ValueError(f"record lacks {field!r}")
    return record


def git_revision(root: Optional[PathLike] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a repo.

    Results are keyed by it so a store can hold trials from several
    code versions without mixing them.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


@dataclass
class CompactionStats:
    """What one :meth:`ResultsStore.compact` call did."""

    records: int
    segments_merged: int
    quarantined: int
    duplicates_dropped: int
    conflicts: int


class ResultsStore:
    """A directory of crash-safe trial records (see module docstring)."""

    def __init__(self, directory: PathLike):
        self.directory = Path(directory)
        self.segments_dir = self.directory / SEGMENTS_DIRNAME
        self.quarantine_dir = self.directory / QUARANTINE_DIRNAME
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self._segment_stream = None
        self._segment_path: Optional[Path] = None

    # -- writing ----------------------------------------------------------

    @property
    def base_path(self) -> Path:
        return self.directory / BASE_FILENAME

    @property
    def quarantine_path(self) -> Path:
        return self.quarantine_dir / QUARANTINE_FILENAME

    def _open_segment(self):
        if self._segment_stream is None or self._segment_stream.closed:
            # The zero-padded timestamp makes segment names sort in
            # creation order, which is what gives cross-segment
            # first-wins dedup its "first" (pid + uuid only break ties).
            self._segment_path = self.segments_dir / (
                f"seg-{time.time_ns():020d}-{os.getpid()}-"
                f"{uuid.uuid4().hex[:8]}.jsonl")
            self._segment_stream = open(self._segment_path, "a",
                                        encoding="utf-8")
        return self._segment_stream

    def _close_segment(self) -> None:
        if self._segment_stream is not None \
                and not self._segment_stream.closed:
            self._segment_stream.close()
        self._segment_stream = None
        self._segment_path = None

    def append(self, config_hash: str, git_hash: str, seed: int,
               payload: dict) -> ResultKey:
        """Durably append one trial record; returns its key.

        The line is flushed and fsync'd before this returns: a record
        the caller saw appended survives a SIGKILL or power loss one
        instruction later.
        """
        key = ResultKey(config_hash, git_hash, int(seed))
        record = {
            "version": RECORD_VERSION,
            "config_hash": key.config_hash,
            "git_hash": key.git_hash,
            "seed": key.seed,
            "payload": payload,
        }
        line = encode_record(record)
        try:
            stream = self._open_segment()
            stream.write(line + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        except OSError as exc:
            raise StoreError(
                f"cannot append record {key.as_str()!r}: {exc}") from exc
        _events.emit("record_appended", key=key.as_str())
        _logger.debug("record appended: %s", key.as_str(),
                      extra={"key": key.as_str()})
        return key

    def close(self) -> None:
        self._close_segment()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scanning (with quarantine) ---------------------------------------

    def _source_files(self) -> List[Path]:
        """Base first, then segments in name order: a deterministic
        merge order for any record set."""
        files = []
        if self.base_path.exists():
            files.append(self.base_path)
        files.extend(sorted(self.segments_dir.glob("*.jsonl")))
        return files

    def _quarantine(self, source: Path, line_number: int, raw: str,
                    reason: str) -> None:
        entry = {
            "source": source.name,
            "line_number": line_number,
            "raw": raw[:2000],
            "reason": reason,
        }
        try:
            with open(self.quarantine_path, "a",
                      encoding="utf-8") as stream:
                stream.write(canonical_json(entry) + "\n")
                stream.flush()
                os.fsync(stream.fileno())
        except OSError as exc:  # pragma: no cover - disk full etc.
            _logger.error("cannot quarantine record: %s", exc)
        _events.emit("record_quarantined", source=source.name,
                     reason=reason)
        _logger.warning(
            "corrupt record quarantined (%s line %d): %s",
            source.name, line_number, reason,
            extra={"source": source.name, "line_number": line_number,
                   "reason": reason})

    def _atomic_rewrite(self, path: Path, lines: List[str]) -> None:
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as stream:
                for line in lines:
                    stream.write(line + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, path)
            self._fsync_dir(path.parent)
        except OSError as exc:
            raise StoreError(
                f"cannot rewrite {path.name}: {exc}") from exc

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _scan_file(self, path: Path) -> Tuple[List[Tuple[str, dict]],
                                              int]:
        """(encoded line, record) pairs from one file; quarantines and
        strips corrupt lines (the file is rewritten without them)."""
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except FileNotFoundError:
            return [], 0
        except OSError as exc:
            raise StoreError(f"cannot read {path.name}: {exc}") from exc
        good: List[Tuple[str, dict]] = []
        bad = 0
        for number, raw in enumerate(text.splitlines(), start=1):
            if not raw.strip():
                continue
            try:
                record = decode_record(raw)
            except ValueError as exc:
                self._quarantine(path, number, raw, str(exc))
                bad += 1
                continue
            good.append((raw, record))
        if bad:
            # Move the corruption aside physically, not just logically:
            # the rewritten file holds only verified records, so the
            # same bad line is never re-quarantined on the next scan.
            self._atomic_rewrite(path, [line for line, _ in good])
        return good, bad

    def scan(self) -> Iterator[Tuple[ResultKey, dict]]:
        """Yield ``(key, record)`` for every verified record, base then
        segments, quarantining corruption as it is found.  Duplicate
        keys are yielded in encounter order (see :meth:`records` for
        the deduplicated view)."""
        # Scanning may rewrite files; never scan through our own open
        # append handle (the next append simply opens a new segment).
        self._close_segment()
        for path in self._source_files():
            for _, record in self._scan_file(path)[0]:
                yield (ResultKey(record["config_hash"],
                                 record["git_hash"],
                                 int(record["seed"])),
                       record)

    def records(self) -> Dict[ResultKey, dict]:
        """key → record, first occurrence winning.

        First-wins makes resume idempotent: a trial re-executed because
        its completion marker was lost cannot overwrite the record the
        original execution already persisted.
        """
        out: Dict[ResultKey, dict] = {}
        for key, record in self.scan():
            out.setdefault(key, record)
        return out

    def keys(self) -> List[ResultKey]:
        return sorted(self.records())

    def has(self, key: ResultKey) -> bool:
        return key in self.records()

    def get(self, key: ResultKey) -> Optional[dict]:
        return self.records().get(key)

    def payloads(self) -> Dict[ResultKey, dict]:
        """key → trial payload (the caller-supplied result dict)."""
        return {key: record["payload"]
                for key, record in self.records().items()}

    def quarantined(self) -> List[dict]:
        """Every quarantined line's provenance entry, oldest first."""
        if not self.quarantine_path.exists():
            return []
        entries = []
        for raw in self.quarantine_path.read_text(
                encoding="utf-8", errors="replace").splitlines():
            if not raw.strip():
                continue
            try:
                entries.append(json.loads(raw))
            except ValueError:
                entries.append({"raw": raw[:2000],
                                "reason": "unparsable quarantine entry"})
        return entries

    # -- compaction -------------------------------------------------------

    def compact(self) -> CompactionStats:
        """Fold base + segments into the canonical base file.

        The output is deduplicated by key (first occurrence wins, in
        deterministic merge order), sorted by key, and written
        atomically with fsync.  Two stores holding the same record set
        compact to byte-identical files — the property the chaos
        harness checks end to end.
        """
        self._close_segment()
        merged: Dict[ResultKey, dict] = {}
        duplicates = 0
        conflicts = 0
        quarantined = 0
        segments = sorted(self.segments_dir.glob("*.jsonl"))
        for path in self._source_files():
            good, bad = self._scan_file(path)
            quarantined += bad
            for _, record in good:
                key = ResultKey(record["config_hash"],
                                record["git_hash"], int(record["seed"]))
                if key in merged:
                    duplicates += 1
                    if canonical_json(merged[key]) \
                            != canonical_json(record):
                        conflicts += 1
                        _logger.warning(
                            "conflicting duplicate for %s kept "
                            "first-written record", key.as_str(),
                            extra={"key": key.as_str()})
                    continue
                merged[key] = record
        lines = [encode_record(merged[key]) for key in sorted(merged)]
        self._atomic_rewrite(self.base_path, lines)
        for path in segments:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        self._fsync_dir(self.segments_dir)
        stats = CompactionStats(
            records=len(merged),
            segments_merged=len(segments),
            quarantined=quarantined,
            duplicates_dropped=duplicates,
            conflicts=conflicts,
        )
        _events.emit("store_compacted", records=stats.records,
                     segments=stats.segments_merged,
                     quarantined=stats.quarantined)
        _logger.info(
            "store compacted: %d record(s) from %d segment(s), "
            "%d quarantined, %d duplicate(s) dropped",
            stats.records, stats.segments_merged, stats.quarantined,
            stats.duplicates_dropped,
            extra={"records": stats.records,
                   "segments": stats.segments_merged,
                   "quarantined": stats.quarantined})
        return stats

    def digest(self) -> str:
        """CRC-32 of the compacted base file's bytes (compact first for
        a canonical value)."""
        if not self.base_path.exists():
            return _crc("")
        return _crc(self.base_path.read_text(encoding="utf-8"))
