"""Machine-checkable paper claims: the reproduction's attestation.

Every headline finding of the paper is encoded as a named predicate
over simulation results; ``python -m repro.experiments verify-claims``
runs them all and prints a ✓/✗ table.  The same predicates back the
``tests/integration/test_paper_claims.py`` suite; this module makes the
attestation runnable at any scale from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.simulation.results import SweepResult
from repro.types import DocumentType

IMAGE = DocumentType.IMAGE
HTML = DocumentType.HTML
MM = DocumentType.MULTIMEDIA
APP = DocumentType.APPLICATION


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of one claim check."""

    claim_id: str
    description: str
    passed: bool
    detail: str


def _rate(sweep: SweepResult, policy: str, doc_type=None,
          byte_rate: bool = False, point: int = -1) -> float:
    return sweep.series(policy, doc_type, byte_rate)[point][1]


class ClaimChecker:
    """Evaluates the paper's findings over a set of sweeps.

    ``sweeps`` must contain keys ``dfn-const``, ``dfn-packet``,
    ``rtp-const``, ``rtp-packet`` (policy × size grids over the
    respective traces and cost models).
    """

    def __init__(self, sweeps: Dict[str, SweepResult]):
        required = {"dfn-const", "dfn-packet", "rtp-const", "rtp-packet"}
        missing = required - set(sweeps)
        if missing:
            raise ValueError(f"missing sweeps: {sorted(missing)}")
        self.sweeps = sweeps

    # -- individual claims -------------------------------------------------

    def claim_frequency_beats_recency(self) -> ClaimResult:
        sweep = self.sweeps["dfn-const"]
        lfuda = _rate(sweep, "lfu-da")
        lru = _rate(sweep, "lru")
        gdstar = _rate(sweep, "gd*(1)")
        gds = _rate(sweep, "gds(1)")
        passed = lfuda > lru and gdstar > gds
        return ClaimResult(
            "freq-over-recency",
            "Frequency-based schemes beat recency-based in hit rate "
            "(DFN, constant cost)",
            passed,
            f"lfu-da {lfuda:.3f} vs lru {lru:.3f}; "
            f"gd*(1) {gdstar:.3f} vs gds(1) {gds:.3f}")

    def claim_gdstar_tops_images_html(self) -> ClaimResult:
        sweep = self.sweeps["dfn-const"]
        details = []
        passed = True
        for doc_type in (IMAGE, HTML):
            rates = {p: _rate(sweep, p, doc_type) for p in sweep.policies}
            best = max(rates, key=rates.get)
            passed &= best == "gd*(1)"
            details.append(f"{doc_type.value}: best={best}")
        return ClaimResult(
            "gdstar-images-html",
            "GD*(1) clearly superior in hit rate for images and HTML "
            "(DFN)",
            passed, "; ".join(details))

    def claim_multimedia_inversion(self) -> ClaimResult:
        sweep = self.sweeps["dfn-const"]
        lru = _rate(sweep, "lru", MM)
        lfuda = _rate(sweep, "lfu-da", MM)
        gds = _rate(sweep, "gds(1)", MM)
        gdstar = _rate(sweep, "gd*(1)", MM)
        passed = min(lru, lfuda) > gds >= gdstar
        return ClaimResult(
            "mm-inversion",
            "Multimedia hit rate inverts: LRU/LFU-DA best, GD*(1) worst "
            "(DFN, constant cost)",
            passed,
            f"lru {lru:.3f}, lfu-da {lfuda:.3f}, gds(1) {gds:.3f}, "
            f"gd*(1) {gdstar:.3f}")

    def claim_gds_byte_rate_collapse(self) -> ClaimResult:
        sweep = self.sweeps["dfn-const"]
        lru = _rate(sweep, "lru", byte_rate=True)
        gds = _rate(sweep, "gds(1)", byte_rate=True)
        mm_lru = _rate(sweep, "lru", MM, byte_rate=True)
        mm_gds = _rate(sweep, "gds(1)", MM, byte_rate=True)
        passed = lru > gds and mm_lru > 2 * mm_gds
        return ClaimResult(
            "gds-bhr-collapse",
            "GDS(1)'s multimedia byte hit rate collapses, dragging its "
            "overall byte hit rate below LRU (the paper's deliberate "
            "difference from Jin & Bestavros)",
            passed,
            f"overall: lru {lru:.3f} vs gds(1) {gds:.3f}; "
            f"mm: {mm_lru:.3f} vs {mm_gds:.3f}")

    def claim_gdstar_packet_wins(self) -> ClaimResult:
        sweep = self.sweeps["dfn-packet"]
        hit = {p: _rate(sweep, p) for p in sweep.policies}
        byte = {p: _rate(sweep, p, byte_rate=True) for p in sweep.policies}
        passed = (max(hit, key=hit.get) == "gd*(p)"
                  and max(byte, key=byte.get) == "gd*(p)")
        return ClaimResult(
            "gdstar-packet-wins",
            "GD*(P) outperforms LRU, LFU-DA, GDS(P) in both hit rate "
            "and byte hit rate (DFN, packet cost)",
            passed,
            f"best hit {max(hit, key=hit.get)}, "
            f"best byte {max(byte, key=byte.get)}")

    def claim_packet_cost_rescues_multimedia(self) -> ClaimResult:
        gds_packet = _rate(self.sweeps["dfn-packet"], "gds(p)", MM)
        gds_const = _rate(self.sweeps["dfn-const"], "gds(1)", MM)
        passed = gds_packet > gds_const
        return ClaimResult(
            "packet-rescues-mm",
            "The packet cost model stops discriminating large "
            "documents (GDS(P) multimedia hit rate > GDS(1)'s)",
            passed,
            f"gds(p) {gds_packet:.3f} vs gds(1) {gds_const:.3f}")

    def claim_rtp_same_ordering(self) -> ClaimResult:
        sweep = self.sweeps["rtp-const"]
        gdstar = _rate(sweep, "gd*(1)")
        lru = _rate(sweep, "lru")
        mm_lru = _rate(sweep, "lru", MM)
        mm_gdstar = _rate(sweep, "gd*(1)", MM)
        passed = gdstar > lru and mm_lru > mm_gdstar
        return ClaimResult(
            "rtp-same-ordering",
            "RTP yields the same constant-cost ordering as DFN "
            "(GD* leads overall; LRU leads multimedia)",
            passed,
            f"overall gd*(1) {gdstar:.3f} vs lru {lru:.3f}; "
            f"mm lru {mm_lru:.3f} vs gd*(1) {mm_gdstar:.3f}")

    def claim_rtp_advantage_diminishes(self) -> ClaimResult:
        dfn_gap = (_rate(self.sweeps["dfn-const"], "gd*(1)", IMAGE)
                   - _rate(self.sweeps["dfn-const"], "lru", IMAGE))
        rtp_gap = (_rate(self.sweeps["rtp-const"], "gd*(1)", IMAGE)
                   - _rate(self.sweeps["rtp-const"], "lru", IMAGE))
        passed = rtp_gap < dfn_gap
        return ClaimResult(
            "rtp-advantage-diminishes",
            "GD*'s image hit-rate lead over LRU shrinks on the RTP "
            "trace",
            passed,
            f"DFN gap {dfn_gap:.3f} vs RTP gap {rtp_gap:.3f}")

    def claim_rtp_byte_advantage_vanishes(self) -> ClaimResult:
        sweep = self.sweeps["rtp-packet"]
        details = []
        passed = True
        for doc_type in (HTML, MM):
            gdstar = _rate(sweep, "gd*(p)", doc_type, byte_rate=True)
            gds = _rate(sweep, "gds(p)", doc_type, byte_rate=True)
            passed &= gdstar <= gds + 0.02
            details.append(f"{doc_type.value}: gd*(p) {gdstar:.3f} vs "
                           f"gds(p) {gds:.3f}")
        return ClaimResult(
            "rtp-byte-advantage-vanishes",
            "On RTP, GD*(P) no longer beats GDS(P) in byte hit rate "
            "for HTML and multimedia",
            passed, "; ".join(details))

    def claim_hit_rates_monotone(self) -> ClaimResult:
        bad = []
        for key in ("dfn-const", "dfn-packet"):
            sweep = self.sweeps[key]
            for policy in sweep.policies:
                rates = [r for _, r in sweep.series(policy)]
                if rates != sorted(rates):
                    bad.append(f"{key}/{policy}")
        return ClaimResult(
            "hit-rate-monotone",
            "Overall hit rate grows with cache size for every scheme",
            not bad, "violations: " + (", ".join(bad) if bad else "none"))

    # -- driver --------------------------------------------------------------

    def run_all(self) -> List[ClaimResult]:
        checks: List[Callable[[], ClaimResult]] = [
            self.claim_frequency_beats_recency,
            self.claim_gdstar_tops_images_html,
            self.claim_multimedia_inversion,
            self.claim_gds_byte_rate_collapse,
            self.claim_gdstar_packet_wins,
            self.claim_packet_cost_rescues_multimedia,
            self.claim_rtp_same_ordering,
            self.claim_rtp_advantage_diminishes,
            self.claim_rtp_byte_advantage_vanishes,
            self.claim_hit_rates_monotone,
        ]
        return [check() for check in checks]


def render_claim_table(results: List[ClaimResult],
                       title: str = "Paper-claim verification") -> str:
    lines = [title, ""]
    width = max(len(r.claim_id) for r in results)
    for result in results:
        mark = "PASS" if result.passed else "FAIL"
        lines.append(f"[{mark}] {result.claim_id.ljust(width)}  "
                     f"{result.description}")
        lines.append(f"       {' ' * width}  -> {result.detail}")
    passed = sum(r.passed for r in results)
    lines.append("")
    lines.append(f"{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
