"""Experiment implementations.

Each experiment returns an :class:`ExperimentReport` carrying rendered
text (tables / ASCII charts), machine-readable data (dict), and named
CSV artifacts for the figure experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.characterize import characterize
from repro.analysis.plotting import ascii_chart, series_to_csv
from repro.analysis.tables import (
    render_breakdown_table,
    render_properties_table,
    render_statistics_table,
    render_sweep_table,
    render_table,
)
from repro.experiments.config import (
    EXPERIMENT_IDS,
    FIG1_SIZE_FRACTION,
    ExperimentSettings,
    check_experiment_id,
)
from repro.observability import events as _events
from repro.observability.logs import get_logger
from repro.observability.manifest import TelemetryRun
from repro.observability.profiling import maybe_profile
from repro.observability.progress import ProgressReporter
from repro.simulation.simulator import (
    SimulationConfig,
    CacheSimulator,
    SizeInterpretation,
)
from repro.simulation.sweep import cache_sizes_from_fractions, run_sweep
from repro.types import DOCUMENT_TYPES, PLOTTED_TYPES, DocumentType, Trace
from repro.workload.generator import generate_trace
from repro.workload.profiles import dfn_like, rtp_like

_logger = get_logger("experiments")


@dataclass
class ExperimentReport:
    """Outcome of one experiment run."""

    experiment_id: str
    scale_name: str
    text: str
    data: dict = field(default_factory=dict)
    #: filename → CSV content, for figure series.
    artifacts: Dict[str, str] = field(default_factory=dict)


class _TraceCache:
    """Memoizes generated traces within one Python process."""

    def __init__(self):
        self._traces: Dict[tuple, Trace] = {}

    def get(self, profile_name: str, scale: float,
            seed: Optional[int]) -> Trace:
        key = (profile_name, scale, seed)
        if key not in self._traces:
            if profile_name == "dfn":
                profile = (dfn_like(scale=scale) if seed is None
                           else dfn_like(scale=scale, seed=seed))
            else:
                profile = (rtp_like(scale=scale) if seed is None
                           else rtp_like(scale=scale, seed=seed))
            self._traces[key] = generate_trace(profile)
        return self._traces[key]


_TRACES = _TraceCache()


def _dfn(settings: ExperimentSettings) -> Trace:
    return _TRACES.get("dfn", settings.scale, settings.seed)


def _rtp(settings: ExperimentSettings) -> Trace:
    return _TRACES.get("rtp", settings.scale, settings.seed)


# --------------------------------------------------------------------------
# Tables 1-5
# --------------------------------------------------------------------------

def _run_table1(settings: ExperimentSettings) -> ExperimentReport:
    chars = {
        "DFN-like": characterize(_dfn(settings), estimate_locality=False),
        "RTP-like": characterize(_rtp(settings), estimate_locality=False),
    }
    text = render_properties_table(
        chars, title=f"Table 1 (scale={settings.scale_name}). "
                     "Properties of DFN-like and RTP-like traces")
    data = {
        name: {
            "distinct_documents": c.metadata.distinct_documents,
            "total_requests": c.metadata.total_requests,
            "total_size_gb": c.metadata.total_size_gb,
            "requested_gb": c.metadata.requested_gb,
        }
        for name, c in chars.items()
    }
    return ExperimentReport("table1", settings.scale_name, text, data)


def _breakdown_report(experiment_id: str, trace: Trace, label: str,
                      settings: ExperimentSettings) -> ExperimentReport:
    char = characterize(trace, estimate_locality=False)
    text = render_breakdown_table(
        char, title=f"{label} (scale={settings.scale_name})")
    data = {
        "distinct_documents": {t.value: char.breakdown.distinct_documents[t]
                               for t in DOCUMENT_TYPES},
        "overall_size": {t.value: char.breakdown.overall_size[t]
                         for t in DOCUMENT_TYPES},
        "total_requests": {t.value: char.breakdown.total_requests[t]
                           for t in DOCUMENT_TYPES},
        "requested_data": {t.value: char.breakdown.requested_data[t]
                           for t in DOCUMENT_TYPES},
    }
    return ExperimentReport(experiment_id, settings.scale_name, text, data)


def _run_table2(settings: ExperimentSettings) -> ExperimentReport:
    return _breakdown_report(
        "table2", _dfn(settings),
        "Table 2. DFN-like trace: workload characteristics by type",
        settings)


def _run_table3(settings: ExperimentSettings) -> ExperimentReport:
    return _breakdown_report(
        "table3", _rtp(settings),
        "Table 3. RTP-like trace: workload characteristics by type",
        settings)


def _statistics_report(experiment_id: str, trace: Trace, label: str,
                       settings: ExperimentSettings) -> ExperimentReport:
    char = characterize(trace, estimate_locality=True)
    text = render_statistics_table(
        char, title=f"{label} (scale={settings.scale_name})")
    data = {
        t.value: {
            "doc_mean_kb": char.by_type[t].sizes.document.mean_kb,
            "doc_median_kb": char.by_type[t].sizes.document.median_kb,
            "doc_cov": char.by_type[t].sizes.document.cov,
            "transfer_mean_kb": char.by_type[t].sizes.transfer.mean_kb,
            "transfer_median_kb": char.by_type[t].sizes.transfer.median_kb,
            "transfer_cov": char.by_type[t].sizes.transfer.cov,
            "alpha": char.by_type[t].alpha,
            "beta": char.by_type[t].beta,
        }
        for t in DOCUMENT_TYPES
    }
    return ExperimentReport(experiment_id, settings.scale_name, text, data)


def _run_table4(settings: ExperimentSettings) -> ExperimentReport:
    return _statistics_report(
        "table4", _dfn(settings),
        "Table 4. DFN-like trace: sizes and temporal locality by type",
        settings)


def _run_table5(settings: ExperimentSettings) -> ExperimentReport:
    return _statistics_report(
        "table5", _rtp(settings),
        "Table 5. RTP-like trace: sizes and temporal locality by type",
        settings)


# --------------------------------------------------------------------------
# Figure 1: adaptability of GD*
# --------------------------------------------------------------------------

def _run_fig1(settings: ExperimentSettings) -> ExperimentReport:
    trace = _dfn(settings)
    capacity = cache_sizes_from_fractions(trace, [FIG1_SIZE_FRACTION])[0]
    interval = settings.occupancy_interval or max(len(trace) // 200, 1)

    runs = {}
    # The OCR of the paper drops the two policy names in Figure 1's
    # caption; the surrounding prose ("achieves high hit rates [by]
    # not wasting space on large documents" vs "keeps per-class shares
    # near the request mix, delivering even large documents") contrasts
    # the constant-cost and packet-cost behaviours, so we plot the
    # whole Greedy-Dual family under both cost models.
    for policy_name in ("gds(1)", "gd*(1)", "gds(p)", "gd*(p)"):
        config = SimulationConfig(
            capacity_bytes=capacity, policy=policy_name,
            occupancy_interval=interval)
        runs[policy_name] = CacheSimulator(config).run(trace)

    # Reference mixes the occupancy should adapt toward.
    char = characterize(trace, estimate_locality=False)
    request_mix = char.breakdown.total_requests

    sections: List[str] = [
        f"Figure 1 (scale={settings.scale_name}). Occupancy of the web "
        f"cache by document type; cache = {capacity / 1e6:,.0f} MB "
        f"({FIG1_SIZE_FRACTION:.0%} of trace bytes)."
    ]
    artifacts: Dict[str, str] = {}
    data: dict = {"capacity_bytes": capacity, "policies": {}}
    for policy_name, result in runs.items():
        tracker = result.occupancy
        rows = []
        for doc_type in PLOTTED_TYPES:
            rows.append([
                doc_type.label,
                request_mix[doc_type],
                100.0 * tracker.mean_fraction(doc_type, False),
                100.0 * tracker.variability(doc_type, False),
                100.0 * tracker.mean_fraction(doc_type, True),
                100.0 * tracker.variability(doc_type, True),
            ])
        sections.append(render_table(
            ["Type", "% of requests", "mean % cached docs",
             "spread docs", "mean % cached bytes", "spread bytes"],
            rows, title=f"-- {policy_name} --"))
        doc_series = {t.label: tracker.series(t, False)
                      for t in PLOTTED_TYPES}
        byte_series = {t.label: tracker.series(t, True)
                       for t in PLOTTED_TYPES}
        safe = policy_name.replace("*", "star")
        artifacts[f"fig1_{safe}_documents.csv"] = series_to_csv(
            doc_series, x_name="request")
        artifacts[f"fig1_{safe}_bytes.csv"] = series_to_csv(
            byte_series, x_name="request")
        sections.append(ascii_chart(
            byte_series, title=f"{policy_name}: fraction of cached bytes",
            x_label="requests", y_label="fraction"))
        data["policies"][policy_name] = {
            t.value: {
                "request_share_pct": request_mix[t],
                "mean_doc_fraction": tracker.mean_fraction(t, False),
                "doc_spread": tracker.variability(t, False),
                "mean_byte_fraction": tracker.mean_fraction(t, True),
                "byte_spread": tracker.variability(t, True),
            }
            for t in PLOTTED_TYPES
        }
    return ExperimentReport("fig1", settings.scale_name,
                            "\n\n".join(sections), data, artifacts)


# --------------------------------------------------------------------------
# Figures 2/3 and the RTP summaries: policy x size sweeps
# --------------------------------------------------------------------------

_CONSTANT_POLICIES = ("lru", "lfu-da", "gds(1)", "gd*(1)")
_PACKET_POLICIES = ("lru", "lfu-da", "gds(p)", "gd*(p)")


def _run_grid(trace: Trace, policies, capacities,
              settings: ExperimentSettings):
    """Run a sweep grid serially, or in parallel with fault tolerance
    when ``settings.extra`` carries ``sweep_workers`` (the CLI's
    ``--sweep-workers``, with ``--cell-timeout`` / ``--max-retries``
    riding along).  ``engine`` (the CLI's ``--engine``) picks between
    the classic one-pass-per-cell layout and the shared-pass batched
    engine.  All paths are bit-identical."""
    workers = int(settings.extra.get("sweep_workers") or 0)
    engine = settings.extra.get("engine") or "percell"
    if workers > 1:
        from repro.simulation.parallel import run_sweep_parallel

        return run_sweep_parallel(
            trace, policies, capacities,
            n_workers=workers,
            engine=engine,
            max_retries=int(settings.extra.get("max_retries", 2)),
            cell_timeout=settings.extra.get("cell_timeout"))
    return run_sweep(trace, policies, capacities, engine=engine)


def _sweep_report(experiment_id: str, trace: Trace, policies, label: str,
                  settings: ExperimentSettings) -> ExperimentReport:
    capacities = cache_sizes_from_fractions(trace, settings.size_fractions)
    sweep = _run_grid(trace, policies, capacities, settings)

    sections = [f"{label} (scale={settings.scale_name})"]
    artifacts: Dict[str, str] = {}
    data: dict = {"capacities": capacities, "hit_rate": {},
                  "byte_hit_rate": {}}
    panels = [None] + list(PLOTTED_TYPES)  # None = overall
    for doc_type in panels:
        key = doc_type.value if doc_type else "overall"
        data["hit_rate"][key] = {}
        data["byte_hit_rate"][key] = {}
        for byte_rate in (False, True):
            sections.append(render_sweep_table(
                sweep, doc_type=doc_type, byte_rate=byte_rate))
            series = {policy: sweep.series(policy, doc_type, byte_rate)
                      for policy in sweep.policies}
            metric = "bhr" if byte_rate else "hr"
            artifacts[f"{experiment_id}_{key}_{metric}.csv"] = \
                series_to_csv(series, x_name="capacity_bytes")
            bucket = data["byte_hit_rate" if byte_rate else "hit_rate"]
            bucket[key] = {policy: [rate for _, rate in points]
                           for policy, points in series.items()}
    # One chart per figure: the overall hit-rate panel, the shape the
    # paper's figures lead with.
    overall_series = {policy: sweep.series(policy)
                      for policy in sweep.policies}
    sections.append(ascii_chart(
        overall_series, logx=True,
        title="overall hit rate vs cache size",
        x_label="cache bytes", y_label="hit rate"))
    return ExperimentReport(experiment_id, settings.scale_name,
                            "\n\n".join(sections), data, artifacts)


def _run_fig2(settings: ExperimentSettings) -> ExperimentReport:
    return _sweep_report(
        "fig2", _dfn(settings), _CONSTANT_POLICIES,
        "Figure 2. DFN-like trace, constant cost model: hit rate and "
        "byte hit rate by document type", settings)


def _run_fig3(settings: ExperimentSettings) -> ExperimentReport:
    return _sweep_report(
        "fig3", _dfn(settings), _PACKET_POLICIES,
        "Figure 3. DFN-like trace, packet cost model: hit rate and "
        "byte hit rate by document type", settings)


def _run_rtp_const(settings: ExperimentSettings) -> ExperimentReport:
    return _sweep_report(
        "rtp-const", _rtp(settings), _CONSTANT_POLICIES,
        "Section 4.4. RTP-like trace, constant cost model", settings)


def _run_rtp_packet(settings: ExperimentSettings) -> ExperimentReport:
    return _sweep_report(
        "rtp-packet", _rtp(settings), _PACKET_POLICIES,
        "Section 4.4. RTP-like trace, packet cost model", settings)


# --------------------------------------------------------------------------
# Ablations
# --------------------------------------------------------------------------

def _run_ablation_beta(settings: ExperimentSettings) -> ExperimentReport:
    """GD*(1) with online β vs pinned β values."""
    trace = _dfn(settings)
    capacity = cache_sizes_from_fractions(trace, [0.01])[0]
    rows = []
    data = {}
    arms = [("online", None), ("beta=1.0", 1.0), ("beta=0.5", 0.5),
            ("beta=0.1", 0.1)]
    for arm_name, fixed in arms:
        from repro.core.registry import make_policy
        policy = make_policy("gd*(1)", fixed_beta=fixed)
        config = SimulationConfig(capacity_bytes=capacity, policy=policy)
        result = CacheSimulator(config).run(trace)
        rows.append([arm_name, result.hit_rate(), result.byte_hit_rate(),
                     result.final_beta])
        data[arm_name] = {"hit_rate": result.hit_rate(),
                          "byte_hit_rate": result.byte_hit_rate(),
                          "final_beta": result.final_beta}
    text = render_table(
        ["Arm", "Hit rate", "Byte hit rate", "Final beta"], rows,
        title=f"Ablation: GD*(1) beta estimation "
              f"(DFN-like, cache=1% of bytes, scale={settings.scale_name})",
        digits=3)
    return ExperimentReport("ablation-beta", settings.scale_name, text,
                            data)


def _run_ablation_warmup(settings: ExperimentSettings) -> ExperimentReport:
    """Sensitivity of reported rates to the warm-up fraction."""
    trace = _dfn(settings)
    capacity = cache_sizes_from_fractions(trace, [0.01])[0]
    rows = []
    data = {}
    for warmup in (0.0, 0.05, 0.10, 0.30):
        for policy_name in ("lru", "gd*(1)"):
            config = SimulationConfig(
                capacity_bytes=capacity, policy=policy_name,
                warmup_fraction=warmup)
            result = CacheSimulator(config).run(trace)
            rows.append([f"{policy_name} @ {warmup:.0%}",
                         result.hit_rate(), result.byte_hit_rate()])
            data[f"{policy_name}@{warmup}"] = {
                "hit_rate": result.hit_rate(),
                "byte_hit_rate": result.byte_hit_rate()}
    text = render_table(
        ["Arm", "Hit rate", "Byte hit rate"], rows,
        title=f"Ablation: warm-up fraction "
              f"(DFN-like, cache=1% of bytes, scale={settings.scale_name})",
        digits=3)
    return ExperimentReport("ablation-warmup", settings.scale_name, text,
                            data)


def _run_ablation_modification(settings: ExperimentSettings
                               ) -> ExperimentReport:
    """The paper's 5 % rule vs Jin & Bestavros' any-change rule.

    The paper attributes its one disagreement with [8] — GDS(1)'s byte
    hit rate on multimedia — to this choice: under any-change,
    interrupted multimedia transfers masquerade as modifications,
    inflating miss rates for exactly the large documents.
    """
    trace = _dfn(settings)
    capacity = cache_sizes_from_fractions(trace, [0.01])[0]
    rows = []
    data = {}
    for interp in (SizeInterpretation.TRUSTED,
                   SizeInterpretation.PAPER_RULE,
                   SizeInterpretation.ANY_CHANGE):
        for policy_name in ("gds(1)", "gd*(1)"):
            config = SimulationConfig(
                capacity_bytes=capacity, policy=policy_name,
                size_interpretation=interp)
            result = CacheSimulator(config).run(trace)
            mm = DocumentType.MULTIMEDIA
            rows.append([
                f"{policy_name} / {interp.value}",
                result.hit_rate(), result.byte_hit_rate(),
                result.byte_hit_rate(mm), result.invalidations])
            data[f"{policy_name}/{interp.value}"] = {
                "hit_rate": result.hit_rate(),
                "byte_hit_rate": result.byte_hit_rate(),
                "mm_byte_hit_rate": result.byte_hit_rate(mm),
                "invalidations": result.invalidations,
            }
    text = render_table(
        ["Arm", "Hit rate", "Byte hit rate", "MM byte hit rate",
         "Invalidations"], rows,
        title=f"Ablation: modification rule "
              f"(DFN-like, cache=1% of bytes, scale={settings.scale_name})",
        digits=3)
    return ExperimentReport("ablation-modification", settings.scale_name,
                            text, data)


def _run_ablation_partition(settings: ExperimentSettings
                            ) -> ExperimentReport:
    """Static type-partitioning vs the adaptive schemes.

    The paper's motivation — designing replacement schemes around
    document types — invites the explicit design: one capacity slice
    per type.  This ablation compares request-share-partitioned LRU
    against monolithic LRU and GD*(1) (whose utility function
    partitions *implicitly* and adaptively).
    """
    from repro.analysis.characterize import type_breakdown
    from repro.core.partitioned import (
        PartitionedCache, make_policy_factory, request_share_partitioning)
    from repro.simulation.simulator import CacheSimulator

    trace = _dfn(settings)
    capacity = cache_sizes_from_fractions(trace, [0.02])[0]
    shares = request_share_partitioning(
        type_breakdown(trace).total_requests)

    rows = []
    data = {}

    def record(label, result):
        mm = DocumentType.MULTIMEDIA
        rows.append([label, result.hit_rate(), result.byte_hit_rate(),
                     result.hit_rate(mm)])
        data[label] = {"hit_rate": result.hit_rate(),
                       "byte_hit_rate": result.byte_hit_rate(),
                       "mm_hit_rate": result.hit_rate(mm)}

    for policy_name in ("lru", "gd*(1)"):
        config = SimulationConfig(capacity_bytes=capacity,
                                  policy=policy_name)
        record(policy_name, CacheSimulator(config).run(trace))
    for arm, factory_name in (("partitioned-lru", "lru"),
                              ("partitioned-gds(1)", "gds(1)")):
        cache = PartitionedCache(
            capacity, shares=shares,
            policy_factory=make_policy_factory(factory_name))
        config = SimulationConfig(capacity_bytes=capacity, policy="lru")
        result = CacheSimulator(config, cache=cache).run(trace)
        record(arm, result)

    text = render_table(
        ["Arm", "Hit rate", "Byte hit rate", "MM hit rate"], rows,
        title=f"Ablation: static type partitioning "
              f"(DFN-like, cache=2% of bytes, scale={settings.scale_name})",
        digits=3)
    return ExperimentReport("ablation-partition", settings.scale_name,
                            text, data)


def _run_ablation_irm(settings: ExperimentSettings) -> ExperimentReport:
    """Temporal correlation on vs off (Independent Reference Model).

    Regenerates the DFN-like workload with identical popularity and
    sizes but uniform reference placement, isolating how much of each
    scheme's performance comes from short-term temporal correlation.
    """
    from repro.workload.generator import generate_trace as _generate
    from repro.workload.profiles import dfn_like as _dfn_profile

    profile = (_dfn_profile(scale=settings.scale) if settings.seed is None
               else _dfn_profile(scale=settings.scale, seed=settings.seed))
    gaps_trace = _dfn(settings)
    irm_trace = _generate(profile, temporal_model="irm")

    rows = []
    data = {}
    capacity = cache_sizes_from_fractions(gaps_trace, [0.02])[0]
    for arm, trace in (("power-law gaps", gaps_trace),
                       ("irm", irm_trace)):
        for policy_name in ("lru", "gd*(1)"):
            config = SimulationConfig(capacity_bytes=capacity,
                                      policy=policy_name)
            result = CacheSimulator(config).run(trace)
            label = f"{policy_name} / {arm}"
            rows.append([label, result.hit_rate(),
                         result.byte_hit_rate()])
            data[label] = {"hit_rate": result.hit_rate(),
                           "byte_hit_rate": result.byte_hit_rate()}
    text = render_table(
        ["Arm", "Hit rate", "Byte hit rate"], rows,
        title=f"Ablation: temporal correlation vs IRM "
              f"(DFN-like, cache=2% of bytes, scale={settings.scale_name})",
        digits=3)
    return ExperimentReport("ablation-irm", settings.scale_name, text,
                            data)


def _run_ablation_typed_beta(settings: ExperimentSettings
                             ) -> ExperimentReport:
    """Aggregate vs per-type β estimation in GD*.

    Tests the fix the paper's Section 4.4 diagnosis implies: on the
    RTP-like trace, where the per-type temporal-correlation slopes
    diverge most from the image-dominated aggregate, GD* with one β
    estimator per document type should repair some of the replacement
    errors the paper attributes to the aggregate estimate.
    """
    from repro.core.gdstar_typed import GDStarTypedPolicy

    rows = []
    data = {}
    for trace_label, trace in (("dfn", _dfn(settings)),
                               ("rtp", _rtp(settings))):
        capacity = cache_sizes_from_fractions(trace, [0.02])[0]
        for policy_name in ("gd*(1)", "gd*t(1)", "gd*(p)", "gd*t(p)"):
            config = SimulationConfig(capacity_bytes=capacity,
                                      policy=policy_name)
            simulator = CacheSimulator(config)
            result = simulator.run(trace)
            label = f"{policy_name} / {trace_label}"
            mm = DocumentType.MULTIMEDIA
            betas = None
            if isinstance(simulator.policy, GDStarTypedPolicy):
                betas = {t.value: round(simulator.policy.beta(t), 3)
                         for t in PLOTTED_TYPES}
            rows.append([label, result.hit_rate(),
                         result.byte_hit_rate(),
                         result.hit_rate(mm),
                         result.byte_hit_rate(mm)])
            data[label] = {"hit_rate": result.hit_rate(),
                           "byte_hit_rate": result.byte_hit_rate(),
                           "mm_hit_rate": result.hit_rate(mm),
                           "mm_byte_hit_rate": result.byte_hit_rate(mm),
                           "final_betas": betas}
    text = render_table(
        ["Arm", "Hit rate", "Byte hit rate", "MM hit rate", "MM BHR"],
        rows,
        title=f"Ablation: aggregate vs per-type beta in GD* "
              f"(cache=2% of bytes, scale={settings.scale_name})",
        digits=3)
    return ExperimentReport("ablation-typed-beta", settings.scale_name,
                            text, data)


def _run_ablation_seeds(settings: ExperimentSettings) -> ExperimentReport:
    """Seed sensitivity of the headline orderings.

    Regenerates the DFN-like workload under several seeds and checks
    that the Figure-2 hit-rate ordering (GD*(1) > GDS(1) > LFU-DA >
    LRU) is a property of the workload *statistics*, not of one random
    draw.  Wilson intervals quantify the per-seed uncertainty.
    """
    from repro.analysis.confidence import hit_rate_interval

    seeds = (42, 1042, 2042)
    rows = []
    data = {}
    orderings_held = 0
    for seed in seeds:
        trace = _TRACES.get("dfn", settings.scale, seed)
        capacity = cache_sizes_from_fractions(trace, [0.02])[0]
        rates = {}
        for policy_name in _CONSTANT_POLICIES:
            config = SimulationConfig(capacity_bytes=capacity,
                                      policy=policy_name)
            result = CacheSimulator(config).run(trace)
            interval = hit_rate_interval(result)
            rates[policy_name] = result.hit_rate()
            rows.append([f"seed {seed} / {policy_name}",
                         result.hit_rate(), interval.lower,
                         interval.upper])
            data[f"{seed}/{policy_name}"] = {
                "hit_rate": result.hit_rate(),
                "ci_lower": interval.lower,
                "ci_upper": interval.upper,
            }
        ordered = (rates["gd*(1)"] > rates["gds(1)"]
                   > rates["lfu-da"] > rates["lru"])
        orderings_held += ordered
    data["orderings_held"] = orderings_held
    data["seeds"] = len(seeds)
    rows.append([f"ordering held on {orderings_held}/{len(seeds)} seeds",
                 None, None, None])
    text = render_table(
        ["Arm", "Hit rate", "95% lower", "95% upper"], rows,
        title=f"Ablation: seed sensitivity (DFN-like, cache=2% of "
              f"bytes, scale={settings.scale_name})",
        digits=3)
    return ExperimentReport("ablation-seeds", settings.scale_name, text,
                            data)


def _run_policy_zoo(settings: ExperimentSettings) -> ExperimentReport:
    """Every implemented policy on the DFN-like trace, plus bounds.

    The Arlitt-Friedrich-Jin-style wide comparison the paper cites:
    the four paper schemes, the classical baselines, the extension
    policies, admission control, and the clairvoyant Belady ceiling,
    at one cache size.
    """
    from repro.core.admission import SecondHitAdmission
    from repro.core.belady import BeladyPolicy, compute_next_uses
    from repro.core.registry import make_policy

    trace = _dfn(settings)
    capacity = cache_sizes_from_fractions(trace, [0.02])[0]
    contenders = [
        "rand", "fifo", "lru", "lru-2", "slru", "lru-threshold",
        "size", "lfu", "lfu-da", "gds(1)", "gdsf(1)", "gd*(1)",
        "gd*t(1)", "landlord(1)", "hyperbolic(1)",
        "gds(p)", "gd*(p)",
    ]
    rows = []
    data = {}

    def run_one(label, policy):
        config = SimulationConfig(capacity_bytes=capacity, policy=policy)
        result = CacheSimulator(config).run(trace)
        rows.append([label, result.hit_rate(), result.byte_hit_rate()])
        data[label] = {"hit_rate": result.hit_rate(),
                       "byte_hit_rate": result.byte_hit_rate()}

    for name in contenders:
        run_one(name, make_policy(name))
    run_one("2hit+lru", SecondHitAdmission(make_policy("lru")))
    run_one("belady", BeladyPolicy(compute_next_uses(trace.requests)))

    rows.sort(key=lambda row: row[1], reverse=True)
    text = render_table(
        ["Policy", "Hit rate", "Byte hit rate"], rows,
        title=f"Policy zoo (DFN-like, cache=2% of bytes, "
              f"scale={settings.scale_name}), sorted by hit rate",
        digits=3)
    return ExperimentReport("policy-zoo", settings.scale_name, text,
                            data)


def _run_future_workload(settings: ExperimentSettings) -> ExperimentReport:
    """The paper's own prediction, tested against its conclusions.

    The introduction conjectures future workloads with far more
    multimedia and application traffic.  ``future_like()`` realizes
    that conjecture (multimedia requests ×35, application ×4 over the
    DFN mix); this experiment reruns the paper's comparison on it and
    reports which recommendations survive.
    """
    from repro.workload.generator import generate_trace as _generate
    from repro.workload.profiles import future_like

    future = _generate(future_like(scale=settings.scale))
    dfn = _dfn(settings)

    sections = [
        f"Future workload (the paper's introduction conjecture) vs "
        f"DFN baseline (scale={settings.scale_name})."
    ]
    data: dict = {}
    for trace_label, trace in (("dfn", dfn), ("future", future)):
        capacities = cache_sizes_from_fractions(
            trace, settings.size_fractions)
        const = _run_grid(trace, _CONSTANT_POLICIES, capacities,
                          settings)
        packet = _run_grid(trace, _PACKET_POLICIES, capacities,
                           settings)
        sections.append(render_sweep_table(
            const, title=f"{trace_label}: overall hit rate "
                         f"(constant cost)"))
        sections.append(render_sweep_table(
            packet, byte_rate=True,
            title=f"{trace_label}: overall byte hit rate (packet cost)"))
        data[trace_label] = {
            "hit_rate": {p: const.series(p)[-1][1]
                         for p in const.policies},
            "byte_hit_rate_packet": {p: packet.series(
                p, byte_rate=True)[-1][1] for p in packet.policies},
            "mm_hit_rate": {p: const.series(
                p, DocumentType.MULTIMEDIA)[-1][1]
                for p in const.policies},
        }

    # Headline deltas.
    dfn_gap = (data["dfn"]["hit_rate"]["gd*(1)"]
               - data["dfn"]["hit_rate"]["lru"])
    future_gap = (data["future"]["hit_rate"]["gd*(1)"]
                  - data["future"]["hit_rate"]["lru"])
    data["gdstar_lead_dfn"] = dfn_gap
    data["gdstar_lead_future"] = future_gap
    sections.append(
        f"GD*(1) hit-rate lead over LRU: DFN {dfn_gap:.3f} -> "
        f"future {future_gap:.3f}")
    return ExperimentReport("future-workload", settings.scale_name,
                            "\n\n".join(sections), data)


def _run_verify_claims(settings: ExperimentSettings) -> ExperimentReport:
    """Run every encoded paper claim and report PASS/FAIL."""
    from repro.experiments.claims import ClaimChecker, render_claim_table

    dfn = _dfn(settings)
    rtp = _rtp(settings)
    dfn_caps = cache_sizes_from_fractions(dfn, settings.size_fractions)
    rtp_caps = cache_sizes_from_fractions(rtp, settings.size_fractions)
    sweeps = {
        "dfn-const": _run_grid(dfn, _CONSTANT_POLICIES, dfn_caps,
                               settings),
        "dfn-packet": _run_grid(dfn, _PACKET_POLICIES, dfn_caps,
                                settings),
        "rtp-const": _run_grid(rtp, _CONSTANT_POLICIES, rtp_caps,
                               settings),
        "rtp-packet": _run_grid(rtp, _PACKET_POLICIES, rtp_caps,
                                settings),
    }
    results = ClaimChecker(sweeps).run_all()
    text = render_claim_table(
        results,
        title=f"Paper-claim verification (scale={settings.scale_name})")
    data = {r.claim_id: {"passed": r.passed, "detail": r.detail}
            for r in results}
    return ExperimentReport("verify-claims", settings.scale_name, text,
                            data)


_RUNNERS: Dict[str, Callable[[ExperimentSettings], ExperimentReport]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": _run_table4,
    "table5": _run_table5,
    "fig1": _run_fig1,
    "fig2": _run_fig2,
    "fig3": _run_fig3,
    "rtp-const": _run_rtp_const,
    "rtp-packet": _run_rtp_packet,
    "ablation-beta": _run_ablation_beta,
    "ablation-warmup": _run_ablation_warmup,
    "ablation-modification": _run_ablation_modification,
    "ablation-partition": _run_ablation_partition,
    "ablation-irm": _run_ablation_irm,
    "ablation-typed-beta": _run_ablation_typed_beta,
    "ablation-seeds": _run_ablation_seeds,
    "policy-zoo": _run_policy_zoo,
    "future-workload": _run_future_workload,
    "verify-claims": _run_verify_claims,
}


def run_experiment(experiment_id: str, scale: str = "small",
                   settings: Optional[ExperimentSettings] = None
                   ) -> ExperimentReport:
    """Run one experiment by id at the given scale."""
    key = check_experiment_id(experiment_id)
    if settings is None:
        settings = ExperimentSettings.for_scale(scale)
    return _RUNNERS[key](settings)


# --------------------------------------------------------------------------
# Fault-tolerant suite execution
# --------------------------------------------------------------------------

@dataclass
class SuiteFailure:
    """One experiment that failed permanently within a suite run."""

    experiment_id: str
    attempts: int
    error_type: str
    message: str


@dataclass
class SuiteResult:
    """Outcome of a :func:`run_suite` invocation.

    Attributes:
        reports: Completed reports, in requested order (checkpointed
            ones included).
        failures: Experiments that stayed broken after retries.
        executed: Ids actually run in this process.
        resumed: Ids whose reports were loaded from checkpoints.
    """

    reports: List[ExperimentReport] = field(default_factory=list)
    failures: List[SuiteFailure] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)
    resumed: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failures


def _suite_digest(settings: ExperimentSettings) -> str:
    """Hash of every setting that changes experiment *results*.

    ``extra`` is deliberately excluded: execution knobs (worker
    counts, timeouts) alter how results are computed, not what they
    are, and must not invalidate checkpoints.
    """
    from repro.resilience.checkpoint import config_hash

    return config_hash({
        "scale": settings.scale,
        "seed": settings.seed,
        "size_fractions": list(settings.size_fractions),
        "occupancy_interval": settings.occupancy_interval,
    })


def _report_to_payload(report: ExperimentReport) -> dict:
    return {
        "experiment_id": report.experiment_id,
        "scale_name": report.scale_name,
        "text": report.text,
        "data": report.data,
        "artifacts": report.artifacts,
    }


def _report_from_payload(payload: dict) -> ExperimentReport:
    return ExperimentReport(
        experiment_id=payload["experiment_id"],
        scale_name=payload["scale_name"],
        text=payload["text"],
        data=payload.get("data", {}),
        artifacts=payload.get("artifacts", {}),
    )


def run_suite(experiment_ids: Optional[Sequence[str]] = None,
              scale: str = "small",
              settings: Optional[ExperimentSettings] = None,
              *,
              checkpoint_dir=None,
              resume: bool = False,
              max_retries: int = 1,
              failure_policy: str = "partial",
              telemetry_dir=None,
              progress: bool = False,
              profile_dir=None,
              sleep: Callable[[float], None] = time.sleep,
              on_report: Optional[Callable] = None,
              on_failure: Optional[Callable] = None) -> SuiteResult:
    """Run a batch of experiments with per-experiment fault isolation.

    Unlike looping over :func:`run_experiment`, one broken experiment
    cannot take down the batch: each is retried up to ``max_retries``
    times, a permanent failure is recorded as a
    :class:`SuiteFailure` (``failure_policy="partial"``, the default)
    or re-raised (``"raise"``), and — when ``checkpoint_dir`` is given
    — every completed experiment is checkpointed atomically so a
    killed run invoked again with ``resume=True`` re-runs only the
    missing ones.

    Checkpoints are keyed by the experiment id and validated against a
    hash of the result-bearing settings (scale, seed, size fractions);
    checkpoints from other configurations are ignored, never adopted.

    Args:
        experiment_ids: Ids to run (default: all, in DESIGN.md order).
        scale / settings: As for :func:`run_experiment`.
        checkpoint_dir: Directory for per-experiment checkpoints.
        resume: Load matching checkpoints instead of re-running.
        max_retries: Reruns allowed per failing experiment.
        failure_policy: ``"partial"`` records failures and continues;
            ``"raise"`` propagates the first permanent failure.
        telemetry_dir: When set, the run writes ``manifest.json`` and
            ``events.jsonl`` there and installs the event log as the
            process-wide sink, so nested layers (parallel sweeps, the
            trace reader, retries) land in the same stream.
        progress: Print a heartbeat/ETA line to stderr as experiments
            complete.
        profile_dir: When set, each experiment runs under cProfile and
            dumps ``<experiment_id>.prof`` there.
        sleep: Injectable backoff sleep (tests pass a no-op).
        on_report: Callback ``(report, from_checkpoint, elapsed)``
            after each experiment completes.
        on_failure: Callback ``(SuiteFailure)`` after each permanent
            failure (only with ``failure_policy="partial"``).
    """
    from repro.errors import ExperimentError
    from repro.resilience.checkpoint import CheckpointStore
    from repro.resilience.retry import RetryPolicy, retry_call

    if failure_policy not in ("partial", "raise"):
        raise ExperimentError(
            f"failure_policy must be 'partial' or 'raise', "
            f"got {failure_policy!r}")
    if resume and checkpoint_dir is None:
        raise ExperimentError("resume=True requires a checkpoint_dir")
    ids = [check_experiment_id(i) for i in
           (experiment_ids if experiment_ids is not None
            else EXPERIMENT_IDS)]
    if settings is None:
        settings = ExperimentSettings.for_scale(scale)

    store = (CheckpointStore(checkpoint_dir)
             if checkpoint_dir is not None else None)
    digest = _suite_digest(settings) if store is not None else None
    retry_policy = RetryPolicy(max_retries=max_retries, base_delay=0.1)

    telemetry: Optional[TelemetryRun] = None
    if telemetry_dir is not None:
        telemetry = TelemetryRun(
            telemetry_dir, kind="suite",
            settings={
                "experiment_ids": list(ids),
                "scale": settings.scale,
                "scale_name": settings.scale_name,
                "seed": settings.seed,
                "size_fractions": list(settings.size_fractions),
                "occupancy_interval": settings.occupancy_interval,
                "max_retries": max_retries,
                "failure_policy": failure_policy,
                "resume": resume,
            },
            install_sink=True)
    emit = _events.emit
    reporter = (ProgressReporter(total=len(ids), label="suite")
                if progress else None)

    suite = SuiteResult()
    try:
        for experiment_id in ids:
            if store is not None and resume and store.has(experiment_id):
                try:
                    payload = store.load(experiment_id, digest)
                except Exception:
                    payload = None  # wrong config or corrupt: re-run
                if payload is not None:
                    report = _report_from_payload(payload)
                    suite.reports.append(report)
                    suite.resumed.append(experiment_id)
                    emit("experiment_checkpoint_restored",
                         experiment_id=experiment_id)
                    _logger.info("experiment %s restored from "
                                 "checkpoint", experiment_id,
                                 extra={"experiment_id": experiment_id})
                    if reporter is not None:
                        reporter.update(detail=f"{experiment_id} "
                                               "(checkpoint)")
                    if on_report is not None:
                        on_report(report, True, 0.0)
                    continue
            started = time.time()
            emit("experiment_started", experiment_id=experiment_id)
            _logger.info("experiment %s started", experiment_id,
                         extra={"experiment_id": experiment_id})

            def _on_retry(upcoming: int, exc: Exception,
                          eid: str = experiment_id) -> None:
                emit("experiment_retried", experiment_id=eid,
                     attempt=upcoming - 1,
                     error_type=type(exc).__name__)
                _logger.warning(
                    "experiment %s attempt %d failed (%s); retrying",
                    eid, upcoming - 1, type(exc).__name__,
                    extra={"experiment_id": eid,
                           "attempt": upcoming - 1,
                           "error_type": type(exc).__name__})

            def _run_one(eid: str = experiment_id) -> ExperimentReport:
                profile_path = (Path(profile_dir) / f"{eid}.prof"
                                if profile_dir else None)
                with maybe_profile(profile_path):
                    return _RUNNERS[eid](settings)

            try:
                report = retry_call(_run_one, policy=retry_policy,
                                    sleep=sleep, on_retry=_on_retry)
            except Exception as exc:
                failure = SuiteFailure(
                    experiment_id=experiment_id,
                    attempts=retry_policy.max_attempts,
                    error_type=type(exc).__name__,
                    message=str(exc),
                )
                emit("experiment_failed", experiment_id=experiment_id,
                     attempts=retry_policy.max_attempts,
                     error_type=type(exc).__name__)
                _logger.error(
                    "experiment %s failed permanently: %s",
                    experiment_id, exc,
                    extra={"experiment_id": experiment_id,
                           "error_type": type(exc).__name__})
                if failure_policy == "raise":
                    raise
                suite.failures.append(failure)
                if reporter is not None:
                    reporter.update(detail=f"{experiment_id} (failed)")
                if on_failure is not None:
                    on_failure(failure)
                continue
            elapsed = time.time() - started
            suite.reports.append(report)
            suite.executed.append(experiment_id)
            emit("experiment_finished", experiment_id=experiment_id,
                 duration_seconds=round(elapsed, 6))
            _logger.info("experiment %s finished in %.2fs",
                         experiment_id, elapsed,
                         extra={"experiment_id": experiment_id,
                                "duration_seconds": round(elapsed, 6)})
            if store is not None:
                store.save(experiment_id, _report_to_payload(report),
                           digest)
            if reporter is not None:
                reporter.update(detail=experiment_id)
            if on_report is not None:
                on_report(report, False, elapsed)
    except BaseException:
        if telemetry is not None:
            telemetry.finalize("failed")
        raise
    if reporter is not None:
        reporter.finish()
    if telemetry is not None:
        telemetry.finalize("partial" if suite.failures else "complete")
    return suite
