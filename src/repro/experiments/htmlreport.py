"""Self-contained single-file HTML reports with inline SVG charts.

Everything a report needs travels in one ``.html`` file — styles in a
``<style>`` block, charts as inline SVG, data already rendered — so a
report can be attached to a CI run, mailed, or archived next to the
store segments it was computed from, and still open a decade later
with no network, no JavaScript, and no dependency on this repo.

Three chart kinds, composed by two builders:

* hit-rate-vs-cache-size line charts, one series per policy, with 95%
  CI whiskers when the store holds replicate seeds — rendered once for
  the overall rate and once per plotted document type (the paper's
  per-type panels);
* a regression verdict table from
  :class:`repro.experiments.regress.RegressionReport`;
* a span waterfall reconstructed from ``span`` events
  (:mod:`repro.observability.trace`), showing where a run's wall-time
  went across processes.

Colors follow the repo-wide chart conventions: an eight-slot
categorical palette assigned to policies in first-seen order (never
cycled — a ninth series folds into the chart note), CSS custom
properties with a ``prefers-color-scheme`` dark block, ink tokens for
every piece of text (text never wears a series color), and hairline
solid gridlines.  Verdict and status markers pair an icon with a label
so no state is encoded by color alone.
"""

from __future__ import annotations

import html as _html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.stats import summarize
from repro.types import PLOTTED_TYPES

PathLike = Union[str, Path]

__all__ = [
    "line_chart",
    "span_waterfall",
    "verdict_table",
    "render_document",
    "report_from_store",
    "report_from_experiment",
    "write_html_report",
]

#: Categorical palette, light / dark steps of the same eight hues, in
#: the validated fixed order.  Slot assignment follows the entity
#: (policy or span name), never its rank in a particular chart.
PALETTE_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948")
PALETTE_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767")

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink-primary: #0b0b0b;
  --ink-secondary: #52514e;
  --ink-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --good: #006300;
  --critical: #d03b3b;
  --border: rgba(11, 11, 11, 0.10);
%(light_series)s
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink-primary: #ffffff;
    --ink-secondary: #c3c2b7;
    --ink-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --good: #0ca30c;
    --critical: #d03b3b;
%(dark_series)s
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--ink-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 980px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
.subtitle { color: var(--ink-secondary); margin: 0 0 24px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin: 12px 0;
}
.panel h3 {
  font-size: 14px; margin: 0 0 2px; color: var(--ink-primary);
}
.panel .meta { color: var(--ink-muted); font-size: 12px;
               margin: 0 0 10px; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px;
          margin: 8px 0 0; padding: 0; list-style: none;
          font-size: 12px; color: var(--ink-secondary); }
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px;
}
svg { display: block; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI",
           sans-serif; font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%%; font-size: 13px; }
th, td { text-align: left; padding: 5px 10px;
         border-bottom: 1px solid var(--gridline); }
th { color: var(--ink-muted); font-weight: 600; font-size: 12px; }
td.num { text-align: right;
         font-variant-numeric: tabular-nums; }
.verdict-improved { color: var(--good); }
.verdict-regressed { color: var(--critical); font-weight: 600; }
.verdict-indistinguishable { color: var(--ink-muted); }
.note { color: var(--ink-muted); font-size: 12px; }
pre { background: var(--surface-1); border: 1px solid var(--border);
      border-radius: 8px; padding: 16px; overflow-x: auto;
      font-size: 12px; }
"""


def _series_vars(palette: Sequence[str], indent: str) -> str:
    return "\n".join(f"{indent}--series-{i + 1}: {color};"
                     for i, color in enumerate(palette))


def _css() -> str:
    return _CSS % {
        "light_series": _series_vars(PALETTE_LIGHT, "  "),
        "dark_series": _series_vars(PALETTE_DARK, "    "),
    }


def _esc(value: object) -> str:
    return _html.escape(str(value), quote=True)


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(value) < 1024 or unit == "GB":
            return (f"{value:.0f}{unit}" if value >= 10 or unit == "B"
                    else f"{value:.1f}{unit}")
        value /= 1024
    return f"{value:.0f}TB"  # pragma: no cover - capacities cap at GB


def _nice_ceiling(value: float) -> float:
    """The smallest 'nice' tick ceiling >= value."""
    if value <= 0:
        return 1.0
    for ceiling in (0.1, 0.2, 0.25, 0.5, 0.75, 1.0):
        if value <= ceiling:
            return ceiling
    import math
    return math.ceil(value)


class SlotAssigner:
    """First-seen palette slot per entity name, shared across charts
    in one document so a policy keeps its color from panel to panel."""

    def __init__(self, limit: int = len(PALETTE_LIGHT)):
        self._slots: Dict[str, int] = {}
        self.limit = limit

    def slot(self, name: str) -> Optional[int]:
        """1-based slot, or None once the palette is exhausted."""
        if name not in self._slots:
            if len(self._slots) >= self.limit:
                return None
            self._slots[name] = len(self._slots) + 1
        return self._slots[name]


def line_chart(title: str, x_labels: Sequence[str],
               series: Sequence[dict], *, y_label: str = "hit rate",
               meta: str = "", slots: Optional[SlotAssigner] = None,
               width: int = 640, height: int = 280) -> str:
    """One panel: an SVG line chart plus its HTML legend.

    ``series`` items are ``{"name": str, "values": [float|None, ...],
    "lo": [...]|None, "hi": [...]|None}`` — ``lo``/``hi`` draw 95% CI
    whiskers.  X positions are index-spaced over ``x_labels`` (cache
    capacities are a geometric grid, so index spacing reads like the
    conventional log axis without log-scale machinery).
    """
    slots = slots or SlotAssigner()
    margin_l, margin_r, margin_t, margin_b = 52, 16, 10, 34
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    n = max(len(x_labels), 1)

    peak = 0.0
    for one in series:
        for bucket in ("values", "hi"):
            for value in one.get(bucket) or []:
                if value is not None:
                    peak = max(peak, value)
    y_max = _nice_ceiling(peak * 1.05 if peak else 1.0)

    def x_at(index: int) -> float:
        if n == 1:
            return margin_l + plot_w / 2
        return margin_l + plot_w * index / (n - 1)

    def y_at(value: float) -> float:
        return margin_t + plot_h * (1 - value / y_max)

    parts: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'role="img" aria-label="{_esc(title)}">']
    # horizontal hairline gridlines + y tick labels
    ticks = 5
    for i in range(ticks + 1):
        value = y_max * i / ticks
        y = y_at(value)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" '
            f'x2="{width - margin_r}" y2="{y:.1f}" '
            f'stroke="var(--gridline)" stroke-width="1"/>')
        parts.append(
            f'<text x="{margin_l - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end" fill="var(--ink-muted)">'
            f'{value:.2f}</text>')
    # baseline + x tick labels (thinned to ~8)
    base_y = y_at(0)
    parts.append(
        f'<line x1="{margin_l}" y1="{base_y:.1f}" '
        f'x2="{width - margin_r}" y2="{base_y:.1f}" '
        f'stroke="var(--baseline)" stroke-width="1"/>')
    step = max(1, (n + 7) // 8)
    for index, label in enumerate(x_labels):
        if index % step and index != n - 1:
            continue
        parts.append(
            f'<text x="{x_at(index):.1f}" y="{base_y + 16:.1f}" '
            f'text-anchor="middle" fill="var(--ink-muted)">'
            f'{_esc(label)}</text>')
    parts.append(
        f'<text x="{margin_l - 40}" y="{margin_t + plot_h / 2:.1f}" '
        f'fill="var(--ink-muted)" text-anchor="middle" '
        f'transform="rotate(-90 {margin_l - 40} '
        f'{margin_t + plot_h / 2:.1f})">{_esc(y_label)}</text>')

    folded: List[str] = []
    legend: List[str] = []
    for one in series:
        slot = slots.slot(one["name"])
        if slot is None:
            folded.append(one["name"])
            continue
        color = f"var(--series-{slot})"
        values = one.get("values") or []
        lo, hi = one.get("lo"), one.get("hi")
        points = [(x_at(i), y_at(v)) for i, v in enumerate(values)
                  if v is not None]
        # CI whiskers under the line: stem + end caps
        if lo and hi:
            for i, v in enumerate(values):
                if v is None or lo[i] is None or hi[i] is None:
                    continue
                x, y_lo, y_hi = x_at(i), y_at(lo[i]), y_at(hi[i])
                parts.append(
                    f'<line x1="{x:.1f}" y1="{y_lo:.1f}" '
                    f'x2="{x:.1f}" y2="{y_hi:.1f}" '
                    f'stroke="{color}" stroke-width="1.5"/>')
                for y_cap in (y_lo, y_hi):
                    parts.append(
                        f'<line x1="{x - 4:.1f}" y1="{y_cap:.1f}" '
                        f'x2="{x + 4:.1f}" y2="{y_cap:.1f}" '
                        f'stroke="{color}" stroke-width="1.5"/>')
        if len(points) > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
            parts.append(
                f'<polyline points="{path}" fill="none" '
                f'stroke="{color}" stroke-width="2" '
                f'stroke-linejoin="round"/>')
        for x, y in points:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"/>')
        legend.append(
            f'<li><span class="swatch" style="background:{color}">'
            f'</span>{_esc(one["name"])}</li>')
    parts.append("</svg>")

    note = ""
    if folded:
        note = (f'<p class="note">palette exhausted: '
                f'{_esc(", ".join(folded))} not plotted '
                f'({len(folded)} series beyond 8)</p>')
    meta_html = f'<p class="meta">{_esc(meta)}</p>' if meta else ""
    legend_html = ""
    if len(legend) > 1:
        legend_html = f'<ul class="legend">{"".join(legend)}</ul>'
    return (f'<div class="panel"><h3>{_esc(title)}</h3>{meta_html}'
            f'{"".join(parts)}{legend_html}{note}</div>')


def span_waterfall(spans: Sequence[dict],
                   title: str = "span waterfall", *,
                   max_rows: int = 60, width: int = 900) -> str:
    """Horizontal bars from ``span`` events, indented by tree depth.

    Spans are sorted by start time; depth comes from chasing
    ``parent_id`` through the set (a parent in another process's file
    still resolves, because ids are global).  Bars wear the slot color
    of their span *name* — the same phase is the same color on every
    row — and an errored span carries an explicit ``x error`` label,
    never color alone.
    """
    spans = [s for s in spans
             if isinstance(s.get("started_at"), (int, float))
             and isinstance(s.get("duration_seconds"), (int, float))]
    if not spans:
        return (f'<div class="panel"><h3>{_esc(title)}</h3>'
                f'<p class="note">(no span events)</p></div>')
    spans = sorted(spans, key=lambda s: (s["started_at"],
                                         str(s.get("span_id"))))
    dropped = max(len(spans) - max_rows, 0)
    spans = spans[:max_rows]
    by_id = {s.get("span_id"): s for s in spans}

    def depth(span: dict) -> int:
        seen, level = set(), 0
        parent = span.get("parent_id")
        while parent in by_id and parent not in seen:
            seen.add(parent)
            parent = by_id[parent].get("parent_id")
            level += 1
        return level

    t0 = min(s["started_at"] for s in spans)
    t1 = max(s["started_at"] + s["duration_seconds"] for s in spans)
    total = max(t1 - t0, 1e-9)
    label_w, margin_r, row_h = 240, 14, 22
    plot_w = width - label_w - margin_r
    height = row_h * len(spans) + 24
    slots = SlotAssigner()
    parts = [f'<svg viewBox="0 0 {width} {height}" width="100%" '
             f'role="img" aria-label="{_esc(title)}">']
    for i, span in enumerate(spans):
        y = 4 + i * row_h
        x = label_w + plot_w * (span["started_at"] - t0) / total
        bar_w = max(plot_w * span["duration_seconds"] / total, 2.0)
        slot = slots.slot(str(span.get("name")))
        color = (f"var(--series-{slot})" if slot
                 else "var(--ink-muted)")
        indent = min(depth(span), 8) * 12
        name = str(span.get("name"))
        status = str(span.get("status", "ok"))
        suffix = " — x error" if status == "error" else ""
        parts.append(
            f'<text x="{4 + indent}" y="{y + 14}" '
            f'fill="var(--ink-secondary)">{_esc(name)}</text>')
        parts.append(
            f'<rect x="{x:.1f}" y="{y + 3}" width="{bar_w:.1f}" '
            f'height="{row_h - 9}" rx="3" fill="{color}" '
            f'stroke="var(--surface-1)" stroke-width="1"/>')
        duration = span["duration_seconds"]
        text = (f"{duration * 1000:.1f}ms" if duration < 1
                else f"{duration:.2f}s") + suffix
        anchor_x = x + bar_w + 6
        anchor = "start"
        if anchor_x > width - 90:
            anchor_x, anchor = x - 6, "end"
        fill = ("var(--critical)" if status == "error"
                else "var(--ink-muted)")
        parts.append(
            f'<text x="{anchor_x:.1f}" y="{y + 14}" '
            f'text-anchor="{anchor}" fill="{fill}">'
            f'{_esc(text)}</text>')
    parts.append(
        f'<text x="{label_w}" y="{height - 6}" '
        f'fill="var(--ink-muted)">0s</text>')
    parts.append(
        f'<text x="{width - margin_r}" y="{height - 6}" '
        f'text-anchor="end" fill="var(--ink-muted)">'
        f'{total:.2f}s</text>')
    parts.append("</svg>")
    note = (f'<p class="note">showing the first {max_rows} of '
            f'{max_rows + dropped} spans</p>' if dropped else "")
    return (f'<div class="panel"><h3>{_esc(title)}</h3>'
            f'{"".join(parts)}{note}</div>')


_VERDICT_ICONS = {"improved": "▲", "regressed": "▼",
                  "indistinguishable": "·"}


def verdict_table(report_data: dict,
                  title: str = "regression verdicts") -> str:
    """HTML table from ``RegressionReport.as_dict()`` output."""
    rows = []
    for v in report_data.get("verdicts", []):
        verdict = str(v.get("verdict"))
        icon = _VERDICT_ICONS.get(verdict, "")
        condition = (f"{v.get('trace')}/scale={v.get('scale')}"
                     f"/{v.get('policy')}"
                     f"/cache={v.get('size_fraction')}")
        rows.append(
            "<tr>"
            f"<td>{_esc(condition)}</td>"
            f"<td>{_esc(v.get('metric'))}</td>"
            f"<td class='num'>{v.get('mean_baseline', 0):.4f}</td>"
            f"<td class='num'>{v.get('mean_candidate', 0):.4f}</td>"
            f"<td class='num'>{v.get('delta', 0):+.4f}</td>"
            f"<td class='num'>{v.get('p_value', 1):.4f}</td>"
            f"<td class='num'>{v.get('a12', 0.5):.3f}</td>"
            f"<td class='verdict-{_esc(verdict)}'>{icon} "
            f"{_esc(verdict)}</td></tr>")
    if not rows:
        rows.append('<tr><td colspan="8" class="note">(no shared '
                    "configuration between the revisions)</td></tr>")
    summary = report_data.get("summary") or {}
    meta = (f"baseline {report_data.get('baseline')} vs candidate "
            f"{report_data.get('candidate')} at alpha="
            f"{report_data.get('alpha')} — "
            f"{summary.get('improved', 0)} improved, "
            f"{summary.get('regressed', 0)} regressed, "
            f"{summary.get('indistinguishable', 0)} indistinguishable")
    return (
        f'<div class="panel"><h3>{_esc(title)}</h3>'
        f'<p class="meta">{_esc(meta)}</p><table>'
        "<thead><tr><th>condition</th><th>metric</th>"
        "<th>baseline</th><th>candidate</th><th>delta</th>"
        "<th>p</th><th>A12</th><th>verdict</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table></div>')


def render_document(title: str, sections: Sequence[str],
                    subtitle: str = "") -> str:
    """Assemble panels into one complete self-contained document."""
    subtitle_html = (f'<p class="subtitle">{_esc(subtitle)}</p>'
                     if subtitle else "")
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_css()}</style></head>\n"
        f"<body><main><h1>{_esc(title)}</h1>{subtitle_html}"
        f'{"".join(sections)}</main></body></html>\n')


# --------------------------------------------------------------------------
# Builders: store records / experiment reports -> document
# --------------------------------------------------------------------------

def _store_groups(store) -> Dict[tuple, Dict[float, Dict[str, dict]]]:
    """(trace, scale, git_hash) -> size_fraction -> policy -> payloads
    keyed by seed."""
    groups: Dict[tuple, Dict[float, Dict[str, dict]]] = {}
    for key, record in sorted(store.records().items()):
        payload = record.get("payload") or {}
        spec = payload.get("spec") or {}
        if "policy" not in spec or "size_fraction" not in spec:
            continue
        group = groups.setdefault(
            (spec.get("trace"), spec.get("scale"), key.git_hash), {})
        by_policy = group.setdefault(float(spec["size_fraction"]), {})
        by_policy.setdefault(spec["policy"], {})[key.seed] = payload
    return groups


def _series_from_group(fractions: Sequence[float],
                       group: Dict[float, Dict[str, dict]],
                       metric_of) -> List[dict]:
    policies = sorted({policy for by_policy in group.values()
                       for policy in by_policy})
    series = []
    for policy in policies:
        values: List[Optional[float]] = []
        lo: List[Optional[float]] = []
        hi: List[Optional[float]] = []
        for fraction in fractions:
            sample = [metric_of(payload) for _, payload in
                      sorted((group.get(fraction) or {})
                             .get(policy, {}).items())]
            sample = [v for v in sample if v is not None]
            if not sample:
                values.append(None)
                lo.append(None)
                hi.append(None)
                continue
            summary = summarize(sample)
            values.append(summary.mean)
            lo.append(summary.ci_low)
            hi.append(summary.ci_high)
        series.append({"name": policy, "values": values,
                       "lo": lo, "hi": hi})
    return series


def report_from_store(store, *, regression: Optional[dict] = None,
                      span_events: Optional[Sequence[dict]] = None,
                      title: str = "experiment service report") -> str:
    """The full service document: curves, per-type panels, verdicts,
    waterfall — straight from the store (plus optional extras).

    ``regression`` is a ``RegressionReport.as_dict()``;
    ``span_events`` a list of parsed ``span`` event dicts (for
    example ``read_events(path, event="span")`` over each telemetry
    file).
    """
    sections: List[str] = []
    slots = SlotAssigner()
    for group_key, group in sorted(_store_groups(store).items(),
                                   key=lambda item: str(item[0])):
        trace, scale, git_hash = group_key
        fractions = sorted(group)
        x_labels = [f"{fraction:g}" for fraction in fractions]
        meta = (f"trace={trace} scale={scale:g} git={git_hash} — "
                "x: cache size as a fraction of total data; whiskers: "
                "95% CI across seeds")
        sections.append(line_chart(
            f"hit rate vs cache size — {trace} @ {git_hash}",
            x_labels,
            _series_from_group(fractions, group,
                               lambda p: p.get("hit_rate")),
            meta=meta, slots=slots))
        sections.append(line_chart(
            f"byte hit rate vs cache size — {trace} @ {git_hash}",
            x_labels,
            _series_from_group(fractions, group,
                               lambda p: p.get("byte_hit_rate")),
            y_label="byte hit rate", meta=meta, slots=slots))
        for doc_type in PLOTTED_TYPES:
            type_series = _series_from_group(
                fractions, group,
                lambda p, t=doc_type.value:
                (p.get("type_hit_rates") or {}).get(t))
            if not any(v is not None for one in type_series
                       for v in one["values"]):
                continue  # records predate the per-type breakdown
            sections.append(line_chart(
                f"{doc_type.value} hit rate — {trace} @ {git_hash}",
                x_labels, type_series, meta=meta, slots=slots))
    if not sections:
        sections.append('<div class="panel"><p class="note">'
                        "(store holds no service records)</p></div>")
    if regression is not None:
        sections.append(verdict_table(regression))
    if span_events:
        sections.append(span_waterfall(span_events))
    return render_document(title, sections,
                           subtitle="rendered from the results store; "
                                    "self-contained, no scripts")


def report_from_experiment(report) -> str:
    """One suite experiment's document, from its in-memory report.

    Sweep experiments (``data`` carries ``capacities`` plus per-panel
    ``hit_rate``/``byte_hit_rate`` maps) get the full per-type chart
    set; anything else falls back to the text report in a ``<pre>``
    so ``write_report`` can emit ``report.html`` unconditionally.
    """
    data = report.data if isinstance(report.data, dict) else {}
    capacities = data.get("capacities")
    hit_rate = data.get("hit_rate")
    sections: List[str] = []
    if (isinstance(capacities, list) and capacities
            and isinstance(hit_rate, dict)
            and isinstance(hit_rate.get("overall"), dict)):
        slots = SlotAssigner()
        x_labels = [_fmt_bytes(c) for c in capacities]
        for metric, label in (("hit_rate", "hit rate"),
                              ("byte_hit_rate", "byte hit rate")):
            panels = data.get(metric) or {}
            for panel_key in (["overall"]
                              + [t.value for t in PLOTTED_TYPES]):
                by_policy = panels.get(panel_key)
                if not isinstance(by_policy, dict) or not by_policy:
                    continue
                series = [{"name": policy, "values": list(values),
                           "lo": None, "hi": None}
                          for policy, values
                          in sorted(by_policy.items())]
                sections.append(line_chart(
                    f"{panel_key} {label} vs cache size", x_labels,
                    series, y_label=label,
                    meta=f"{report.experiment_id} "
                         f"(scale={report.scale_name})",
                    slots=slots))
    if not sections:
        sections.append(f"<pre>{_esc(report.text)}</pre>")
    return render_document(
        f"{report.experiment_id} — {report.scale_name}", sections)


def write_html_report(path: PathLike, document: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(document, encoding="utf-8")
    return path
