"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments table2
    python -m repro.experiments fig2 --scale small --outdir results/
    python -m repro.experiments all --scale tiny

Long runs can checkpoint and resume::

    python -m repro.experiments all --scale paper \\
        --checkpoint-dir ckpt/ --max-retries 2
    # ... machine dies mid-suite; later:
    python -m repro.experiments all --scale paper \\
        --checkpoint-dir ckpt/ --resume
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import (
    EXPERIMENT_IDS,
    SCALES,
    ExperimentSettings,
)
from repro.experiments.report import write_report
from repro.experiments.runner import run_suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "experiment", choices=list(EXPERIMENT_IDS) + ["all"],
        help="experiment id, or 'all'")
    parser.add_argument(
        "--scale", choices=list(SCALES), default="small",
        help="workload scale (default: small)")
    parser.add_argument(
        "--outdir", default=None,
        help="directory to write report.txt/data.json/CSV artifacts")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress report text on stdout")
    parser.add_argument(
        "--markdown", action="store_true",
        help="also write a SUMMARY.md of the batch (needs --outdir)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the trace-generation seed (default: each "
             "profile's documented seed, for exact reproducibility)")
    fault = parser.add_argument_group("fault tolerance")
    fault.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint each completed experiment here (atomic JSON, "
             "keyed by a config hash)")
    fault.add_argument(
        "--resume", action="store_true",
        help="load completed experiments from --checkpoint-dir instead "
             "of re-running them")
    fault.add_argument(
        "--max-retries", type=int, default=1,
        help="retries per failing experiment, and per failing sweep "
             "cell with --sweep-workers (default: 1)")
    fault.add_argument(
        "--cell-timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds for parallel sweep "
             "cells (needs --sweep-workers)")
    fault.add_argument(
        "--sweep-workers", type=int, default=0,
        help="run figure sweep grids across this many worker processes "
             "with crash recovery (default: 0 = in-process)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.markdown and not args.outdir:
        print("--markdown requires --outdir", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return 2
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        print("--cell-timeout must be positive", file=sys.stderr)
        return 2
    if args.sweep_workers < 0:
        print("--sweep-workers must be >= 0", file=sys.stderr)
        return 2
    ids = list(EXPERIMENT_IDS) if args.experiment == "all" \
        else [args.experiment]
    extra = {}
    if args.sweep_workers:
        extra["sweep_workers"] = args.sweep_workers
        extra["max_retries"] = args.max_retries
        if args.cell_timeout is not None:
            extra["cell_timeout"] = args.cell_timeout
    kwargs = {"extra": extra}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    settings = ExperimentSettings.for_scale(args.scale, **kwargs)

    def on_report(report, from_checkpoint, elapsed):
        if not args.quiet:
            print(report.text)
            if from_checkpoint:
                print(f"\n[{report.experiment_id} restored from "
                      f"checkpoint]\n")
            else:
                print(f"\n[{report.experiment_id} completed in "
                      f"{elapsed:.1f}s]\n")
        if args.outdir:
            directory = write_report(report, args.outdir)
            if not args.quiet:
                print(f"[artifacts written to {directory}]\n")

    def on_failure(failure):
        print(f"[{failure.experiment_id} FAILED after "
              f"{failure.attempts} attempts: {failure.error_type}: "
              f"{failure.message}]", file=sys.stderr)

    suite = run_suite(
        ids, scale=args.scale, settings=settings,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        max_retries=args.max_retries,
        on_report=on_report, on_failure=on_failure)

    if args.markdown:
        from repro.experiments.summary import write_markdown_summary
        path = write_markdown_summary(suite.reports, args.outdir)
        if not args.quiet:
            print(f"[summary written to {path}]")
    return 0 if suite.complete else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
