"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments table2
    python -m repro.experiments fig2 --scale small --outdir results/
    python -m repro.experiments all --scale tiny
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.config import EXPERIMENT_IDS, SCALES
from repro.experiments.report import write_report
from repro.experiments.runner import run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "experiment", choices=list(EXPERIMENT_IDS) + ["all"],
        help="experiment id, or 'all'")
    parser.add_argument(
        "--scale", choices=list(SCALES), default="small",
        help="workload scale (default: small)")
    parser.add_argument(
        "--outdir", default=None,
        help="directory to write report.txt/data.json/CSV artifacts")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress report text on stdout")
    parser.add_argument(
        "--markdown", action="store_true",
        help="also write a SUMMARY.md of the batch (needs --outdir)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the trace-generation seed (default: each "
             "profile's documented seed, for exact reproducibility)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.markdown and not args.outdir:
        print("--markdown requires --outdir", file=sys.stderr)
        return 2
    ids = list(EXPERIMENT_IDS) if args.experiment == "all" \
        else [args.experiment]
    settings = None
    if args.seed is not None:
        from repro.experiments.config import ExperimentSettings
        settings = ExperimentSettings.for_scale(args.scale,
                                                seed=args.seed)
    reports = []
    for experiment_id in ids:
        started = time.time()
        report = run_experiment(experiment_id, scale=args.scale,
                                settings=settings)
        elapsed = time.time() - started
        reports.append(report)
        if not args.quiet:
            print(report.text)
            print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
        if args.outdir:
            directory = write_report(report, args.outdir)
            if not args.quiet:
                print(f"[artifacts written to {directory}]\n")
    if args.markdown:
        from repro.experiments.summary import write_markdown_summary
        path = write_markdown_summary(reports, args.outdir)
        if not args.quiet:
            print(f"[summary written to {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
