"""Command-line entry point: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments table2
    python -m repro.experiments fig2 --scale small --outdir results/
    python -m repro.experiments all --scale tiny

Long runs can checkpoint and resume::

    python -m repro.experiments all --scale paper \\
        --checkpoint-dir ckpt/ --max-retries 2
    # ... machine dies mid-suite; later:
    python -m repro.experiments all --scale paper \\
        --checkpoint-dir ckpt/ --resume

The analytical-model subcommand (:mod:`repro.model.cli`) answers
hit-rate questions without a simulation pass::

    python -m repro.experiments model curve --profile dfn
    python -m repro.experiments model validate --profile dfn --irm

The cache-network subcommand (:mod:`repro.network.cli`) drives
hierarchies, meshes, paths, and trees through one engine::

    python -m repro.experiments network run --profile dfn \\
        --topology tree --strategy probcache
    python -m repro.experiments network validate --profile dfn --irm

The serving subcommand (:mod:`repro.serving.cli`) runs the policies
as a live sharded cache and load-replays workloads against one::

    python -m repro.experiments serving serve --capacity 50000000
    python -m repro.experiments serving replay --profile dfn --irm \\
        --validate --max-mae 0.01
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import (
    EXPERIMENT_IDS,
    SCALES,
    ExperimentSettings,
)
from repro.experiments.report import write_report
from repro.experiments.runner import run_suite
from repro.observability.logs import LOG_LEVELS, configure, get_logger

_logger = get_logger("experiments.cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument(
        "experiment", choices=list(EXPERIMENT_IDS) + ["all"],
        help="experiment id, or 'all' ('model' dispatches to the "
             "analytical-model subcommand: predict/curve/validate; "
             "'service' to the durable experiment service: "
             "enqueue/work/status/report/regress/compact/chaos; "
             "'serving' to the online cache: serve/replay)")
    parser.add_argument(
        "--scale", choices=list(SCALES), default="small",
        help="workload scale (default: small)")
    parser.add_argument(
        "--outdir", default=None,
        help="directory to write report.txt/data.json/CSV artifacts")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress report text on stdout")
    parser.add_argument(
        "--markdown", action="store_true",
        help="also write a SUMMARY.md of the batch (needs --outdir)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the trace-generation seed (default: each "
             "profile's documented seed, for exact reproducibility)")
    fault = parser.add_argument_group("fault tolerance")
    fault.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint each completed experiment here (atomic JSON, "
             "keyed by a config hash)")
    fault.add_argument(
        "--resume", action="store_true",
        help="load completed experiments from --checkpoint-dir instead "
             "of re-running them")
    fault.add_argument(
        "--max-retries", type=int, default=1,
        help="retries per failing experiment, and per failing sweep "
             "cell with --sweep-workers (default: 1)")
    fault.add_argument(
        "--cell-timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds for parallel sweep "
             "cells (needs --sweep-workers)")
    fault.add_argument(
        "--sweep-workers", type=int, default=0,
        help="run figure sweep grids across this many worker processes "
             "with crash recovery (default: 0 = in-process)")
    fault.add_argument(
        "--engine", choices=("percell", "batched"), default="percell",
        help="sweep execution engine: 'percell' runs one trace pass "
             "per (policy, capacity) cell, 'batched' runs every cell "
             "of a grid over one shared trace pass (bit-identical "
             "results; composes with --sweep-workers, --resume and "
             "checkpoints, which stay per cell)")
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="info",
        help="diagnostic verbosity on stderr (default: info)")
    obs.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines instead of text")
    obs.add_argument(
        "--telemetry-dir", default=None,
        help="write manifest.json + events.jsonl (run config, cell and "
             "experiment lifecycle, retries, timeouts) to this "
             "directory")
    obs.add_argument(
        "--trace-spans", action="store_true",
        help="emit hierarchical span events (simulate/pass phases, "
             "sweeps) into the telemetry stream; needs "
             "--telemetry-dir to land anywhere")
    obs.add_argument(
        "--progress", action="store_true",
        help="print a heartbeat/ETA line to stderr as experiments "
             "complete")
    obs.add_argument(
        "--profile", metavar="DIR", default=None,
        help="profile each experiment under cProfile and dump "
             "<experiment-id>.prof into DIR")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "model":
        # The analytical-model verbs carry their own option surface;
        # dispatch before the experiment parser rejects them.
        from repro.model.cli import main as model_main
        return model_main(argv[1:])
    if argv and argv[0] == "service":
        # Durable experiment service verbs (enqueue/work/status/
        # report/compact/chaos); same early-dispatch pattern.
        from repro.experiments.service import main as service_main
        return service_main(argv[1:])
    if argv and argv[0] == "network":
        # Cache-network verbs (run/sweep/placement/validate/enqueue);
        # same early-dispatch pattern.
        from repro.network.cli import main as network_main
        return network_main(argv[1:])
    if argv and argv[0] == "serving":
        # Online-serving verbs (serve/replay); same early-dispatch
        # pattern.
        from repro.serving.cli import main as serving_main
        return serving_main(argv[1:])
    args = build_parser().parse_args(argv)
    configure(level=args.log_level, json_lines=args.log_json)
    if args.trace_spans:
        from repro.observability.trace import enable_tracing
        enable_tracing()
    if args.markdown and not args.outdir:
        print("--markdown requires --outdir", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return 2
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        print("--cell-timeout must be positive", file=sys.stderr)
        return 2
    if args.sweep_workers < 0:
        print("--sweep-workers must be >= 0", file=sys.stderr)
        return 2
    ids = list(EXPERIMENT_IDS) if args.experiment == "all" \
        else [args.experiment]
    extra = {"engine": args.engine}
    if args.sweep_workers:
        extra["sweep_workers"] = args.sweep_workers
        extra["max_retries"] = args.max_retries
        if args.cell_timeout is not None:
            extra["cell_timeout"] = args.cell_timeout
    kwargs = {"extra": extra}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    settings = ExperimentSettings.for_scale(args.scale, **kwargs)

    def on_report(report, from_checkpoint, elapsed):
        # Results go to stdout; diagnostics go through the logging
        # layer on stderr so --log-json stays machine-parseable.
        if not args.quiet:
            print(report.text)
        if from_checkpoint:
            _logger.info("%s restored from checkpoint",
                         report.experiment_id,
                         extra={"experiment_id": report.experiment_id})
        else:
            _logger.info("%s completed in %.1fs",
                         report.experiment_id, elapsed,
                         extra={"experiment_id": report.experiment_id,
                                "duration_seconds": round(elapsed, 6)})
        if args.outdir:
            directory = write_report(report, args.outdir)
            _logger.info("artifacts written to %s", directory,
                         extra={"experiment_id": report.experiment_id,
                                "outdir": str(directory)})

    def on_failure(failure):
        _logger.error(
            "%s FAILED after %d attempts: %s: %s",
            failure.experiment_id, failure.attempts,
            failure.error_type, failure.message,
            extra={"experiment_id": failure.experiment_id,
                   "attempts": failure.attempts,
                   "error_type": failure.error_type})

    suite = run_suite(
        ids, scale=args.scale, settings=settings,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
        max_retries=args.max_retries,
        telemetry_dir=args.telemetry_dir, progress=args.progress,
        profile_dir=args.profile,
        on_report=on_report, on_failure=on_failure)

    if args.markdown:
        from repro.experiments.summary import write_markdown_summary
        path = write_markdown_summary(suite.reports, args.outdir)
        _logger.info("summary written to %s", path,
                     extra={"path": str(path)})
    return 0 if suite.complete else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
