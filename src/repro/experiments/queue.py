"""Durable trial queue: filesystem-backed, lease-claimed, resumable.

A *trial* is one unit of experiment work (see
:class:`repro.experiments.service.TrialSpec`).  The queue is a
directory::

    queue/
      trials/<trial_id>.json      one spec per pending trial (atomic)
      leases/<trial_id>.lease     live claims (repro.resilience.lease)
      done/<trial_id>.json        completion markers (atomic, fsync'd)
      failed/<trial_id>.json      trials abandoned after max attempts
      attempts/<trial_id>         per-trial attempt counter
      quarantine/                 unparsable spec files, moved aside

Trial ids are content hashes of the spec, so enqueueing is idempotent:
re-running ``enqueue`` after a crash re-creates nothing and duplicates
nothing.  Workers claim trials through
:class:`~repro.resilience.lease.LeaseManager`: a SIGKILL'd or hung
worker stops renewing its lease, the lease goes stale after its TTL,
and the next ``claim`` by any worker on any machine reclaims it — the
trial is automatically re-queued with its attempt counter intact, so
deterministic failures are abandoned (with a ``trial_abandoned`` event)
instead of retried forever.

Completion is recorded *after* the result is durably in the results
store, and :meth:`TrialQueue.reconcile` walks completion markers and
re-opens any whose record has vanished from the store (e.g. because it
was quarantined as corrupt) — the queue converges to exactly one
verified record per trial, never losing a cell and never trusting a
marker the store cannot back.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.errors import ServiceError
from repro.experiments.store import ResultKey, ResultsStore, canonical_json
from repro.observability import events as _events
from repro.observability.logs import get_logger
from repro.resilience.checkpoint import config_hash
from repro.resilience.lease import Lease, LeaseManager

PathLike = Union[str, Path]

_logger = get_logger("experiments.queue")

#: Claim attempts allowed per trial before it is abandoned.
DEFAULT_MAX_ATTEMPTS = 3


def trial_id_for(spec: dict) -> str:
    """Content-hash identity of a trial spec (idempotent enqueue)."""
    return config_hash(spec)


@dataclass
class ClaimedTrial:
    """A trial this process currently holds the lease for."""

    trial_id: str
    spec: dict
    lease: Lease
    attempt: int


@dataclass
class QueueStatus:
    """Point-in-time census of the queue."""

    pending: int
    running: int
    stale: int
    done: int
    failed: int

    @property
    def total(self) -> int:
        return self.pending + self.running + self.stale + self.done \
            + self.failed

    @property
    def drained(self) -> bool:
        return self.pending == 0 and self.running == 0 \
            and self.stale == 0

    def as_dict(self) -> dict:
        return {"pending": self.pending, "running": self.running,
                "stale": self.stale, "done": self.done,
                "failed": self.failed, "total": self.total}


class TrialQueue:
    """A durable, multi-process trial queue (see module docstring)."""

    def __init__(self, directory: PathLike, owner: Optional[str] = None,
                 lease_ttl: float = 30.0,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 clock: Callable[[], float] = time.time):
        if max_attempts < 1:
            raise ServiceError("max_attempts must be >= 1")
        self.directory = Path(directory)
        self.trials_dir = self.directory / "trials"
        self.done_dir = self.directory / "done"
        self.failed_dir = self.directory / "failed"
        self.attempts_dir = self.directory / "attempts"
        self.quarantine_dir = self.directory / "quarantine"
        for path in (self.trials_dir, self.done_dir, self.failed_dir,
                     self.attempts_dir, self.quarantine_dir):
            path.mkdir(parents=True, exist_ok=True)
        self.leases = LeaseManager(self.directory / "leases",
                                   owner=owner, ttl_seconds=lease_ttl,
                                   clock=clock)
        self.max_attempts = max_attempts

    @property
    def owner(self) -> str:
        return self.leases.owner

    # -- low-level helpers ------------------------------------------------

    def _atomic_write(self, path: Path, payload: dict,
                      durable: bool = True) -> None:
        """Atomic (and, by default, power-loss durable) JSON write.

        ``durable=False`` skips the fsyncs for state that is cheap to
        reconstruct: a done marker lost to power loss just means the
        trial is re-claimed, sees its record already in the store, and
        rewrites the marker without re-executing.
        """
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        with open(tmp, "w", encoding="utf-8") as stream:
            stream.write(canonical_json(payload))
            stream.flush()
            if durable:
                os.fsync(stream.fileno())
        os.replace(tmp, path)
        if durable:
            self._fsync_dir(path.parent)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _read_attempts(self, trial_id: str) -> int:
        try:
            return int((self.attempts_dir / trial_id).read_text())
        except (OSError, ValueError):
            return 0

    def _bump_attempts(self, trial_id: str) -> int:
        attempt = self._read_attempts(trial_id) + 1
        path = self.attempts_dir / trial_id
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(str(attempt))
        os.replace(tmp, path)
        return attempt

    # -- enqueue ----------------------------------------------------------

    def enqueue(self, spec: dict) -> tuple:
        """Add one trial; returns ``(trial_id, newly_enqueued)``.

        Enqueueing the same spec twice (same content hash) is a no-op,
        so interrupted enqueue scripts can simply be re-run.
        """
        trial_id = trial_id_for(spec)
        path = self.trials_dir / f"{trial_id}.json"
        if path.exists():
            return trial_id, False
        self._atomic_write(path, {"trial_id": trial_id, "spec": spec})
        _events.emit("trial_enqueued", trial_id=trial_id)
        _logger.debug("trial enqueued: %s", trial_id,
                      extra={"trial_id": trial_id})
        return trial_id, True

    # -- introspection ----------------------------------------------------

    def trial_ids(self) -> List[str]:
        return sorted(path.stem for path in
                      self.trials_dir.glob("*.json"))

    def done_ids(self) -> List[str]:
        return sorted(path.stem for path in self.done_dir.glob("*.json"))

    def failed_ids(self) -> List[str]:
        return sorted(path.stem
                      for path in self.failed_dir.glob("*.json"))

    def spec_for(self, trial_id: str) -> Optional[dict]:
        """The spec dict for a trial; quarantines an unreadable file
        (moved aside, never re-parsed) and returns None."""
        path = self.trials_dir / f"{trial_id}.json"
        try:
            envelope = json.loads(path.read_text(encoding="utf-8",
                                                 errors="replace"))
            spec = envelope["spec"]
            if not isinstance(spec, dict):
                raise ValueError("spec is not an object")
            return spec
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            target = self.quarantine_dir / path.name
            try:
                os.replace(path, target)
            except OSError:  # pragma: no cover
                pass
            _events.emit("record_quarantined", source=path.name,
                         reason=f"unreadable trial spec: {exc}")
            _logger.warning("unreadable trial spec quarantined: %s",
                            trial_id, extra={"trial_id": trial_id})
            return None

    def status(self) -> QueueStatus:
        done = set(self.done_ids())
        failed = set(self.failed_ids())
        pending = running = stale = 0
        for trial_id in self.trial_ids():
            if trial_id in done or trial_id in failed:
                continue
            holder = self.leases.holder(trial_id)
            if holder is None and not self.leases.is_stale(trial_id):
                pending += 1
            elif self.leases.is_stale(trial_id):
                stale += 1
            else:
                running += 1
        return QueueStatus(pending=pending, running=running,
                           stale=stale, done=len(done),
                           failed=len(failed))

    # -- claim / complete / fail ------------------------------------------

    def claim(self) -> Optional[ClaimedTrial]:
        """Claim the next open trial, reclaiming stale leases.

        Returns None when nothing is claimable (drained, or every open
        trial is freshly leased by someone else).  A trial whose
        attempt counter has reached ``max_attempts`` is abandoned into
        ``failed/`` instead of claimed again.
        """
        done = set(self.done_ids())
        failed = set(self.failed_ids())
        for trial_id in self.trial_ids():
            if trial_id in done or trial_id in failed:
                continue
            attempts_so_far = self._read_attempts(trial_id)
            if attempts_so_far >= self.max_attempts:
                self._abandon(trial_id, attempts_so_far,
                              "attempt budget exhausted")
                continue
            was_stale = self.leases.is_stale(trial_id)
            lease = self.leases.acquire(trial_id)
            if lease is None:
                continue
            spec = self.spec_for(trial_id)
            if spec is None:
                self.leases.release(lease)
                continue
            attempt = self._bump_attempts(trial_id)
            if was_stale or lease.reclaimed_from is not None:
                _events.emit("trial_requeued", trial_id=trial_id,
                             reason="stale lease reclaimed")
                _logger.warning(
                    "trial %s re-queued (stale lease reclaimed from "
                    "%s)", trial_id, lease.reclaimed_from,
                    extra={"trial_id": trial_id,
                           "previous_owner": lease.reclaimed_from})
            _events.emit("trial_claimed", trial_id=trial_id,
                         owner=self.owner, attempt=attempt)
            _logger.debug("trial claimed: %s (attempt %d)", trial_id,
                          attempt, extra={"trial_id": trial_id,
                                          "attempt": attempt})
            return ClaimedTrial(trial_id=trial_id, spec=spec,
                                lease=lease, attempt=attempt)
        return None

    def _abandon(self, trial_id: str, attempts: int,
                 reason: str) -> None:
        path = self.failed_dir / f"{trial_id}.json"
        if path.exists():
            return
        self._atomic_write(path, {"trial_id": trial_id,
                                  "attempts": attempts,
                                  "reason": reason})
        _events.emit("trial_abandoned", trial_id=trial_id,
                     attempts=attempts, reason=reason)
        _logger.error("trial %s abandoned after %d attempt(s): %s",
                      trial_id, attempts, reason,
                      extra={"trial_id": trial_id, "attempts": attempts,
                             "reason": reason})

    def complete(self, claimed: ClaimedTrial,
                 result_key: Optional[ResultKey] = None,
                 duration_seconds: float = 0.0) -> None:
        """Mark a claimed trial done (call *after* the result is
        durably stored) and release its lease."""
        marker = {"trial_id": claimed.trial_id,
                  "attempts": claimed.attempt}
        if result_key is not None:
            marker["result_key"] = {
                "config_hash": result_key.config_hash,
                "git_hash": result_key.git_hash,
                "seed": result_key.seed,
            }
        self._atomic_write(self.done_dir / f"{claimed.trial_id}.json",
                           marker, durable=False)
        self.leases.release(claimed.lease)
        _events.emit("trial_completed", trial_id=claimed.trial_id,
                     owner=self.owner,
                     duration_seconds=round(duration_seconds, 6))
        _logger.info("trial completed: %s (attempt %d, %.2fs)",
                     claimed.trial_id, claimed.attempt,
                     duration_seconds,
                     extra={"trial_id": claimed.trial_id,
                            "attempt": claimed.attempt,
                            "duration_seconds":
                                round(duration_seconds, 6)})

    def release(self, claimed: ClaimedTrial, reason: str) -> None:
        """Give a claimed trial back (e.g. after an execution error)
        without consuming its completion; the attempt stays charged."""
        self.leases.release(claimed.lease)
        _events.emit("trial_requeued", trial_id=claimed.trial_id,
                     reason=reason)
        _logger.warning("trial %s released back to the queue: %s",
                        claimed.trial_id, reason,
                        extra={"trial_id": claimed.trial_id,
                               "reason": reason})

    # -- reconcile --------------------------------------------------------

    def reconcile(self, store: ResultsStore) -> List[str]:
        """Re-open done trials whose store record has vanished.

        A completion marker promises "the record is in the store"; if
        the record was since quarantined as corrupt, that promise is
        broken and the trial must run again.  Returns the re-opened
        trial ids.  Markers without a recorded key are left alone.
        """
        present: Dict[ResultKey, dict] = store.records()
        reopened = []
        for trial_id in self.done_ids():
            path = self.done_dir / f"{trial_id}.json"
            try:
                marker = json.loads(path.read_text())
                raw_key = marker.get("result_key")
            except (OSError, ValueError):
                raw_key = None  # unreadable marker: treat as broken
            if raw_key is not None:
                key = ResultKey(raw_key["config_hash"],
                                raw_key["git_hash"],
                                int(raw_key["seed"]))
                if key in present:
                    continue
            elif raw_key is None and path.exists() \
                    and self._marker_parses(path):
                continue  # legacy marker without a key: trust it
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            # The attempt budget restarts: the previous attempts did
            # succeed, their record was lost to corruption afterwards.
            try:
                (self.attempts_dir / trial_id).unlink()
            except FileNotFoundError:
                pass
            _events.emit("trial_requeued", trial_id=trial_id,
                         reason="store record missing")
            _logger.warning(
                "trial %s re-opened: completion marker has no backing "
                "store record", trial_id,
                extra={"trial_id": trial_id})
            reopened.append(trial_id)
        return reopened

    @staticmethod
    def _marker_parses(path: Path) -> bool:
        try:
            json.loads(path.read_text())
            return True
        except (OSError, ValueError):
            return False
