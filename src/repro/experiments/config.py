"""Experiment identifiers, scales, and shared settings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: Named workload scales: fraction of the real traces' request volume.
SCALES: Dict[str, float] = {
    "tiny": 1.0 / 512.0,    # ~13k requests; unit-test speed
    "small": 1.0 / 64.0,    # ~105k requests; default for benches
    "medium": 1.0 / 16.0,   # ~420k requests
    "paper": 1.0,           # full 6.7M / 4.1M requests
}

#: All runnable experiment ids, in DESIGN.md order.
EXPERIMENT_IDS: Tuple[str, ...] = (
    "table1", "table2", "table3", "table4", "table5",
    "fig1", "fig2", "fig3",
    "rtp-const", "rtp-packet",
    "ablation-beta", "ablation-warmup", "ablation-modification",
    "ablation-partition", "ablation-irm", "ablation-typed-beta",
    "ablation-seeds", "policy-zoo", "future-workload", "verify-claims",
)

#: Cache-size ladder as fractions of overall trace size (paper: ~0.5 %
#: to ~4 %).
DEFAULT_SIZE_FRACTIONS: Tuple[float, ...] = (0.005, 0.01, 0.02, 0.04)

#: Figure-1 cache size as a fraction of overall trace size (the paper
#: used a fixed 1 GB cache on the full DFN trace, roughly this share).
FIG1_SIZE_FRACTION = 0.02


@dataclass
class ExperimentSettings:
    """Resolved settings shared by all experiments.

    Attributes:
        scale: Workload scale factor (see :data:`SCALES`).
        scale_name: The name the factor came from, for reporting.
        size_fractions: Cache-size ladder for sweeps.
        occupancy_interval: Figure-1 sampling cadence (requests); 0
            picks ~200 samples automatically.
        seed: Base RNG seed for trace generation.
    """

    scale: float = SCALES["small"]
    scale_name: str = "small"
    size_fractions: Sequence[float] = DEFAULT_SIZE_FRACTIONS
    occupancy_interval: int = 0
    seed: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def for_scale(cls, scale: str = "small", **kwargs) -> "ExperimentSettings":
        if scale not in SCALES:
            raise ExperimentError(
                f"unknown scale {scale!r}; known: {', '.join(SCALES)}")
        return cls(scale=SCALES[scale], scale_name=scale, **kwargs)


def check_experiment_id(experiment_id: str) -> str:
    key = experiment_id.strip().lower()
    if key not in EXPERIMENT_IDS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            + ", ".join(EXPERIMENT_IDS))
    return key
