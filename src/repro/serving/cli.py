"""The ``serving`` subcommand of the experiments CLI.

Two verbs::

    python -m repro.experiments serving serve \\
        --shards 4 --policy lru --capacity 50000000 --port 7070
    python -m repro.experiments serving replay \\
        --profile dfn --profile-scale 0.0156 --irm \\
        --shards 4 --policy lru --size-fraction 0.05 \\
        --validate --max-mae 0.01 --max-model-mae 0.02 \\
        --report serving-replay.json

``serve`` runs the asyncio TCP front end until interrupted.
``replay`` fires a workload (synthetic profile or trace file) at an
in-process sharded cache, one thread per shard, and — with
``--validate`` — re-simulates every shard's substream through
:func:`repro.simulation.engine.run_cells` and the Che model, exiting
non-zero when either disagreement exceeds its tolerance.  That is the
CI ``serving`` gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.observability.logs import LOG_LEVELS, configure, get_logger
from repro.observability.manifest import TelemetryRun
from repro.serving.replay import (
    ReplayConfig,
    ReplayReport,
    ReplayValidation,
    replay,
    validate_replay,
)
from repro.serving.sharding import ShardedCache

_logger = get_logger("serving.cli")

PROFILE_NAMES = ("dfn", "rtp", "future", "uniform")
DEFAULT_PROFILE_SCALE = 1.0 / 256.0
DEFAULT_SIZE_FRACTION = 0.05


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    source = parser.add_argument_group("workload source")
    source.add_argument(
        "--trace", default=None, metavar="PATH",
        help="replay this trace file (squid/clf/csv, .gz ok)")
    source.add_argument(
        "--profile", choices=PROFILE_NAMES, default=None,
        help="generate a synthetic trace from a named profile")
    source.add_argument(
        "--profile-scale", type=float, default=DEFAULT_PROFILE_SCALE,
        help="profile scale factor (default: 1/256)")
    source.add_argument(
        "--seed", type=int, default=None,
        help="override the profile's seed")
    source.add_argument(
        "--irm", action="store_true",
        help="generate under the Independent Reference Model (the "
             "regime the Che comparison assumes)")


def _add_cache_options(parser: argparse.ArgumentParser) -> None:
    cache = parser.add_argument_group("cache shape")
    cache.add_argument(
        "--shards", type=int, default=4,
        help="number of consistent-hash shards (default: 4)")
    cache.add_argument(
        "--policy", default="lru",
        help="replacement policy name (default: lru)")
    cache.add_argument(
        "--capacity", type=int, default=None,
        help="aggregate capacity in bytes (overrides --size-fraction)")
    cache.add_argument(
        "--size-fraction", type=float, default=DEFAULT_SIZE_FRACTION,
        help="aggregate capacity as a fraction of the workload's "
             f"unique bytes (default: {DEFAULT_SIZE_FRACTION})")
    cache.add_argument(
        "--vnodes", type=int, default=128,
        help="ring points per shard (default: 128)")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="info",
        help="diagnostic verbosity on stderr (default: info)")
    obs.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines")
    obs.add_argument(
        "--telemetry-dir", default=None,
        help="write manifest.json + events.jsonl here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments serving",
        description="Online serving: run the replacement policies as "
                    "a live sharded cache, or replay a workload "
                    "against one and validate the hit rates.")
    verbs = parser.add_subparsers(dest="verb", required=True)

    p_serve = verbs.add_parser(
        "serve", help="run the TCP cache server until interrupted")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7070,
        help="listen port (0 picks a free one; default: 7070)")
    _add_cache_options(p_serve)
    _add_common_options(p_serve)

    p_replay = verbs.add_parser(
        "replay", help="fire a workload at an in-process sharded "
                       "cache and report throughput + hit rates")
    _add_workload_options(p_replay)
    _add_cache_options(p_replay)
    p_replay.add_argument(
        "--sample-every", type=int, default=16,
        help="time every Nth request for the latency histogram "
             "(default: 16)")
    p_replay.add_argument(
        "--validate", action="store_true",
        help="re-simulate each shard's substream (run_cells) and "
             "predict it (Che model); report the disagreements")
    p_replay.add_argument(
        "--max-mae", type=float, default=None,
        help="with --validate: fail (exit 1) when the per-shard "
             "replay-vs-simulation hit-rate MAE exceeds this")
    p_replay.add_argument(
        "--max-model-mae", type=float, default=None,
        help="with --validate: fail (exit 1) when the per-shard "
             "replay-vs-model hit-rate MAE exceeds this (model "
             "policies only)")
    p_replay.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a summary")
    p_replay.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the full replay/validation report as JSON")
    _add_common_options(p_replay)
    return parser


def _load_trace(args):
    if (args.trace is None) == (args.profile is None):
        raise ConfigurationError(
            "exactly one of --trace or --profile is required")
    if args.trace is not None:
        from repro.trace.pipeline import load_trace

        return load_trace(args.trace)
    from repro.workload.generator import generate_trace
    from repro.workload.profiles import profile_by_name, uniform_profile

    if args.profile == "uniform":
        profile = uniform_profile(
            seed=args.seed if args.seed is not None else 7)
        if args.profile_scale != DEFAULT_PROFILE_SCALE:
            profile = profile.scaled(
                args.profile_scale / DEFAULT_PROFILE_SCALE)
    else:
        profile = profile_by_name(args.profile,
                                  scale=args.profile_scale,
                                  seed=args.seed)
    return generate_trace(profile,
                          temporal_model="irm" if args.irm else "gaps")


def _capacity_for(args, trace) -> int:
    if args.capacity is not None:
        return args.capacity
    unique_bytes = sum({r.url: r.size
                        for r in trace.requests}.values())
    return max(int(unique_bytes * args.size_fraction), args.shards)


def _run_serve(args) -> int:
    import asyncio

    if args.capacity is None:
        raise ConfigurationError("serve requires --capacity")
    cache = ShardedCache(args.capacity, n_shards=args.shards,
                         policy=args.policy, vnodes=args.vnodes)
    from repro.serving.server import CacheServer

    async def _serve() -> None:
        server = CacheServer(cache, host=args.host, port=args.port)
        await server.start()
        print(f"serving {args.policy} x{args.shards} on "
              f"{server.host}:{server.port}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _summary(validation: Optional[ReplayValidation],
             report: ReplayReport) -> str:
    lines = [
        f"replayed {report.requests:,} requests over "
        f"{report.n_shards} shards ({report.policy}) in "
        f"{report.duration_seconds:.2f}s — "
        f"{report.requests_per_second:,.0f} req/s",
        f"hit rate {report.hit_rate:.4f} "
        f"(latency p50 {report.latency_quantiles['p50'] * 1e6:.1f}µs "
        f"p99 {report.latency_quantiles['p99'] * 1e6:.1f}µs over "
        f"{report.latency_samples:,} samples)",
    ]
    for shard in report.per_shard:
        lines.append(f"  {shard.shard}: {shard.requests:>8,} req  "
                     f"hit {shard.hit_rate:.4f}")
    if validation is not None:
        lines.append(
            f"vs simulator: MAE {validation.sim_mae:.6f} "
            f"max {validation.sim_max_error:.6f}")
        if validation.model_mae is not None:
            lines.append(
                f"vs Che model: MAE {validation.model_mae:.4f} "
                f"max {validation.model_max_error:.4f}")
        else:
            lines.append("vs Che model: n/a (policy outside lru/"
                         "fifo/random)")
    return "\n".join(lines)


def _run_replay(args) -> int:
    trace = _load_trace(args)
    config = ReplayConfig(
        capacity_bytes=_capacity_for(args, trace),
        n_shards=args.shards, policy=args.policy,
        vnodes=args.vnodes,
        latency_sample_every=args.sample_every)
    if args.validate:
        validation = validate_replay(trace, config)
        report = validation.report
        payload = validation.as_dict()
    else:
        validation = None
        report = replay(trace, config)
        payload = report.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(_summary(validation, report))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        _logger.info("replay report written to %s", args.report,
                     extra={"path": args.report})

    failed = False
    if validation is not None and args.max_mae is not None:
        if validation.sim_mae > args.max_mae:
            _logger.error(
                "replay-vs-simulation MAE %.6f exceeds %.6f",
                validation.sim_mae, args.max_mae,
                extra={"sim_mae": validation.sim_mae,
                       "tolerance": args.max_mae})
            failed = True
    if validation is not None and args.max_model_mae is not None:
        if (validation.model_mae is not None
                and validation.model_mae > args.max_model_mae):
            _logger.error(
                "replay-vs-model MAE %.4f exceeds %.4f",
                validation.model_mae, args.max_model_mae,
                extra={"model_mae": validation.model_mae,
                       "tolerance": args.max_model_mae})
            failed = True
    return 1 if failed else 0


_VERBS = {
    "serve": _run_serve,
    "replay": _run_replay,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure(level=args.log_level, json_lines=args.log_json)
    settings = {key: value for key, value in sorted(vars(args).items())
                if key not in ("log_level", "log_json",
                               "telemetry_dir") and value is not None}
    run = None
    if args.telemetry_dir:
        run = TelemetryRun(args.telemetry_dir,
                           kind=f"serving-{args.verb}",
                           settings=settings)
    try:
        code = _VERBS[args.verb](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        code = 2
    except Exception:
        if run is not None:
            run.finalize("failed")
        raise
    if run is not None:
        run.finalize("complete" if code == 0 else "failed")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
