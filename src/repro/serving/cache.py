"""A thread-safe served cache around one replacement policy.

:class:`ServedCache` wraps the simulator's
:class:`~repro.core.cache.Cache` + policy pair for concurrent online
use.  Design rules:

* **One lock, whole operations.**  Every cache/policy touch — reads
  included — runs under one per-instance lock, because policy
  structures are transiently inconsistent mid-operation (see the
  concurrency contract in :mod:`repro.core.policy`).  The lock is held
  for microseconds (dict + dlist/heap ops); fills happen *outside* it.
* **Simulator semantics, bit for bit.**  :meth:`request` is exactly
  ``Cache.reference`` under the lock, so a replayed request stream
  produces the hit sequence the simulator would — the property the
  triple-path validation in :mod:`repro.serving.replay` rests on.
* **Single-flight fills.**  :meth:`get_or_fetch` coalesces concurrent
  misses on one URL: the first thread becomes the fill leader and
  calls the loader once; followers wait on the flight's event and
  share the result.  Loaders run unlocked, so a slow origin stalls
  only the threads that need that document.
* **Serialized op journal.**  With ``record_ops=True`` every mutating
  operation is appended (under the lock) to a journal in its
  serialization order, so a stress test can replay the journal
  sequentially and demand the exact same final state — the
  linearizability check in ``tests/serving/``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.cache import Cache
from repro.core.policy import AccessOutcome, CacheEntry, ReplacementPolicy
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.types import DocumentType


@dataclass(frozen=True)
class CachedDocument:
    """Immutable snapshot of one resident document, safe to hand out
    after the lock is released (a live :class:`CacheEntry` is not)."""

    url: str
    size: int
    doc_type: DocumentType
    frequency: int
    payload: Optional[bytes] = None


@dataclass
class ServingStats:
    """Point-in-time counters of one served cache (taken under lock)."""

    resident_docs: int
    occupancy_bytes: int
    capacity_bytes: int
    hits: int
    misses: int
    evictions: int
    invalidations: int
    bypasses: int
    deletes: int
    fills: int
    coalesced_fills: int
    next_victim: Optional[str] = None
    hit_rate: float = field(init=False)

    def __post_init__(self):
        lookups = self.hits + self.misses
        self.hit_rate = self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "resident_docs": self.resident_docs,
            "occupancy_bytes": self.occupancy_bytes,
            "capacity_bytes": self.capacity_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "bypasses": self.bypasses,
            "deletes": self.deletes,
            "fills": self.fills,
            "coalesced_fills": self.coalesced_fills,
            "next_victim": self.next_victim,
            "hit_rate": self.hit_rate,
        }


class _Flight:
    """One in-progress miss fill, shared by its coalesced waiters."""

    __slots__ = ("done", "document", "error")

    def __init__(self):
        self.done = threading.Event()
        self.document: Optional[CachedDocument] = None
        self.error: Optional[BaseException] = None


#: Loader signature for :meth:`ServedCache.get_or_fetch`: given a URL,
#: return ``(size, doc_type)`` or ``(size, doc_type, payload)``.
Loader = Callable[[str], tuple]


class ServedCache:
    """One policy-driven cache instance, safe for concurrent callers."""

    def __init__(self, capacity_bytes: int,
                 policy: Union[str, ReplacementPolicy] = "lru",
                 name: str = "cache", record_ops: bool = False):
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.name = name
        self.policy = policy
        self._cache = Cache(capacity_bytes, policy)
        self._cache.on_evict = self._dropped
        self._lock = threading.RLock()
        self._payloads: Dict[str, bytes] = {}
        self._flights: Dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self.deletes = 0
        self.fills = 0
        self.coalesced_fills = 0
        self._journal: Optional[List[tuple]] = [] if record_ops else None

    # -- introspection (all under the lock: policy structures are never
    # observable mid-operation) -------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self._cache.capacity_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def __contains__(self, url: str) -> bool:
        with self._lock:
            return url in self._cache

    @property
    def occupancy_bytes(self) -> int:
        with self._lock:
            return self._cache.used_bytes

    def stats(self) -> ServingStats:
        with self._lock:
            cache = self._cache
            victim = cache.next_victim()
            return ServingStats(
                resident_docs=len(cache),
                occupancy_bytes=cache.used_bytes,
                capacity_bytes=cache.capacity_bytes,
                hits=cache.hits, misses=cache.misses,
                evictions=cache.evictions,
                invalidations=cache.invalidations,
                bypasses=cache.bypasses, deletes=self.deletes,
                fills=self.fills,
                coalesced_fills=self.coalesced_fills,
                next_victim=victim.url if victim is not None else None)

    def resident_urls(self) -> List[str]:
        """Snapshot of resident URLs (arbitrary order)."""
        with self._lock:
            return [entry.url for entry in self._cache.entries()]

    def contents(self) -> Dict[str, int]:
        """Snapshot ``{url: size}`` of the resident set."""
        with self._lock:
            return {e.url: e.size for e in self._cache.entries()}

    def check_invariants(self) -> None:
        """Byte accounting, policy/residency agreement, payload sync —
        asserted under the lock (the lock-granularity test hammers this
        from reader threads while writers are mid-eviction)."""
        with self._lock:
            self._cache.check_invariants()
            check = getattr(self.policy, "_heap", None)
            if check is not None and hasattr(check, "check_invariants"):
                check.check_invariants()
            for url in self._payloads:
                assert url in self._cache, (
                    f"payload for non-resident {url!r}")

    # -- the serving API ---------------------------------------------------

    def request(self, url: str, size: int,
                doc_type: DocumentType = DocumentType.OTHER
                ) -> AccessOutcome:
        """One reference with exact simulator semantics (hit, admit on
        miss, stale-copy replacement), serialized by the lock."""
        with self._lock:
            outcome = self._cache.reference(url, size, doc_type)
            if self._journal is not None:
                self._journal.append(("request", url, size,
                                      doc_type.value))
            return outcome

    def get(self, url: str) -> Optional[CachedDocument]:
        """Hit path: a resident document is referenced (policy order
        and frequency update) and returned as a snapshot; a miss
        returns None and counts a lookup miss *without* admitting
        anything (the fill path is :meth:`get_or_fetch` / :meth:`put`).
        """
        with self._lock:
            entry = self._cache.get(url)
            if entry is None:
                self._cache.misses += 1
                if self._journal is not None:
                    self._journal.append(("miss", url))
                return None
            outcome = self._cache.reference(url, entry.size,
                                            entry.doc_type)
            if self._journal is not None:
                self._journal.append(("request", url, entry.size,
                                      entry.doc_type.value))
            if outcome is not AccessOutcome.HIT:  # pragma: no cover
                raise AssertionError(
                    "resident entry re-referenced at its own size "
                    f"must hit, got {outcome}")
            return self._snapshot(entry)

    def put(self, url: str, size: int,
            doc_type: DocumentType = DocumentType.OTHER,
            payload: Optional[bytes] = None) -> AccessOutcome:
        """Insert/refresh a document (counts as one reference)."""
        if payload is not None and len(payload) != size:
            raise ConfigurationError(
                f"payload is {len(payload)} bytes but size={size}")
        with self._lock:
            outcome = self._cache.reference(url, size, doc_type)
            if payload is not None and url in self._cache:
                self._payloads[url] = payload
            if self._journal is not None:
                self._journal.append(("put", url, size, doc_type.value))
            return outcome

    def delete(self, url: str) -> bool:
        """Remove a document without counting a reference."""
        with self._lock:
            removed = self._cache.invalidate(url)
            if removed:
                self.deletes += 1
            if self._journal is not None:
                self._journal.append(("delete", url))
            return removed

    def flush(self) -> None:
        with self._lock:
            self._cache.flush()
            self._payloads.clear()
            if self._journal is not None:
                self._journal.append(("flush",))

    # -- single-flight miss fill ------------------------------------------

    def get_or_fetch(self, url: str, loader: Loader) -> CachedDocument:
        """Return the document, filling it through ``loader`` on miss.

        Concurrent misses on one URL coalesce: exactly one caller (the
        leader) runs ``loader(url)``; the rest block on the flight and
        share its result (or its exception).  The loader runs with no
        locks held.  A loader returning a document larger than the
        cache still yields the document to every waiter — it just is
        not admitted (bypass), matching the simulator's semantics.
        """
        document = self.get(url)
        if document is not None:
            return document
        while True:
            with self._flights_lock:
                flight = self._flights.get(url)
                leader = flight is None
                if leader:
                    flight = self._flights[url] = _Flight()
            if not leader:
                flight.done.wait()
                with self._lock:
                    self.coalesced_fills += 1
                if flight.error is not None:
                    raise flight.error
                if flight.document is not None:
                    return flight.document
                continue  # leader failed to produce; retry as leader
            try:
                document = self._fill(url, loader)
                flight.document = document
                return document
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._flights_lock:
                    del self._flights[url]
                flight.done.set()

    def _fill(self, url: str, loader: Loader) -> CachedDocument:
        loaded = loader(url)
        if not isinstance(loaded, tuple) or len(loaded) not in (2, 3):
            raise ConfigurationError(
                "loader must return (size, doc_type[, payload]), got "
                f"{loaded!r}")
        size, doc_type = loaded[0], loaded[1]
        payload = loaded[2] if len(loaded) == 3 else None
        with self._lock:
            self.fills += 1
            # Another leader may have admitted between our miss and
            # this fill (we re-check rather than double-reference).
            entry = self._cache.get(url)
            if entry is None or entry.size != size:
                self.put(url, size, doc_type, payload)
                entry = self._cache.get(url)
            if entry is not None:
                return self._snapshot(entry)
            # Bypassed (larger than the cache): serve without caching.
            return CachedDocument(url=url, size=size, doc_type=doc_type,
                                  frequency=0, payload=payload)

    # -- internals ---------------------------------------------------------

    def _snapshot(self, entry: CacheEntry) -> CachedDocument:
        return CachedDocument(url=entry.url, size=entry.size,
                              doc_type=entry.doc_type,
                              frequency=entry.frequency,
                              payload=self._payloads.get(entry.url))

    def _dropped(self, entry: CacheEntry) -> None:
        # Cache.on_evict observer: keep the payload sidecar in sync.
        self._payloads.pop(entry.url, None)

    # -- the op journal (linearizability harness) --------------------------

    def journal(self) -> List[tuple]:
        """The serialized op log (requires ``record_ops=True``)."""
        if self._journal is None:
            raise ConfigurationError(
                "ServedCache was not built with record_ops=True")
        with self._lock:
            return list(self._journal)

    @staticmethod
    def replay_journal(journal: List[tuple], capacity_bytes: int,
                       policy: Union[str, ReplacementPolicy]
                       ) -> "ServedCache":
        """Apply a journal sequentially to a fresh cache.

        Because every journal entry was appended under the lock at the
        moment its operation took effect, a sequential replay must end
        in exactly the state the concurrent run ended in — the
        linearizability oracle.
        """
        replica = ServedCache(capacity_bytes, policy)
        for op in journal:
            kind = op[0]
            if kind == "request" or kind == "put":
                replica.request(op[1], op[2], DocumentType(op[3]))
            elif kind == "miss":
                with replica._lock:
                    replica._cache.misses += 1
            elif kind == "delete":
                replica.delete(op[1])
            elif kind == "flush":
                replica.flush()
            else:  # pragma: no cover - journal is library-written
                raise ConfigurationError(f"unknown journal op {op!r}")
        return replica
