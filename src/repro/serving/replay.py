"""Load-replay: fire a workload trace at a sharded served cache.

The harness partitions a trace by the cache's own hash ring (an
untimed pre-pass), then runs **one thread per shard**, each firing its
shard's substream in trace order as fast as the lock allows.  One
thread per shard keeps each shard's request order identical to its
substream, which is what makes the replayed hit sequence reproducible:
the served cache must then match a
:func:`~repro.simulation.engine.run_cells` simulation of the same
substream *exactly* — and, independently, land within the Che model's
validation tolerance.  :func:`validate_replay` computes both
comparisons; CI gates on them (triple-path validation: daemon,
simulator, and analytical model mutually checking each other).

Throughput instrumentation is sampled: every ``latency_sample_every``-th
request is timed with ``perf_counter`` into a reused observability
:class:`~repro.observability.metrics.Histogram` (µs-range buckets), so
the hot loop stays cheap enough to measure hundreds of thousands of
requests per second from pure Python.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.policy import AccessOutcome
from repro.errors import ConfigurationError
from repro.model.catalog import catalog_from_trace
from repro.model.che import predict
from repro.model.solver import MODEL_POLICIES, normalize_policy
from repro.observability.events import emit
from repro.observability.metrics import Histogram
from repro.serving.sharding import ShardedCache, split_budget
from repro.simulation.engine import SimulationConfig, run_cells
from repro.types import DocumentType, Request, Trace

#: Latency buckets in seconds: 1 µs to 100 ms.  A lock-plus-dict
#: request lands in the low microseconds; anything in the ms buckets
#: means lock convoying worth investigating.
LATENCY_BUCKETS = (1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5,
                   1e-4, 1e-3, 1e-2, 1e-1)


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs for one replay run.

    ``capacity_bytes`` is the *aggregate* budget, split uniformly over
    ``n_shards`` (matching :func:`~repro.serving.sharding.split_budget`
    so validation can rebuild identical per-shard capacities).
    """

    capacity_bytes: int
    n_shards: int = 4
    policy: str = "lru"
    vnodes: int = 128
    latency_sample_every: int = 16

    def validate(self) -> None:
        if self.capacity_bytes < self.n_shards:
            raise ConfigurationError(
                f"capacity {self.capacity_bytes} cannot cover "
                f"{self.n_shards} shards")
        if self.n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        if self.latency_sample_every < 1:
            raise ConfigurationError(
                "latency_sample_every must be >= 1")


@dataclass
class ShardReplayResult:
    """What one shard saw during the replay."""

    shard: str
    requests: int
    hits: int
    misses: int
    capacity_bytes: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {"shard": self.shard, "requests": self.requests,
                "hits": self.hits, "misses": self.misses,
                "capacity_bytes": self.capacity_bytes,
                "hit_rate": self.hit_rate}


@dataclass
class ReplayReport:
    """Everything one replay produced."""

    trace_name: str
    policy: str
    n_shards: int
    capacity_bytes: int
    requests: int
    hits: int
    misses: int
    duration_seconds: float
    requests_per_second: float
    per_shard: List[ShardReplayResult]
    per_type_hit_rate: Dict[str, float]
    latency_quantiles: Dict[str, float]
    latency_samples: int
    hit_rate: float = field(init=False)

    def __post_init__(self):
        lookups = self.hits + self.misses
        self.hit_rate = self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "trace_name": self.trace_name, "policy": self.policy,
            "n_shards": self.n_shards,
            "capacity_bytes": self.capacity_bytes,
            "requests": self.requests, "hits": self.hits,
            "misses": self.misses, "hit_rate": self.hit_rate,
            "duration_seconds": self.duration_seconds,
            "requests_per_second": self.requests_per_second,
            "per_shard": [s.as_dict() for s in self.per_shard],
            "per_type_hit_rate": dict(self.per_type_hit_rate),
            "latency_quantiles": dict(self.latency_quantiles),
            "latency_samples": self.latency_samples,
        }


@dataclass
class ShardValidation:
    """Replay vs. simulator (and optionally model) for one shard."""

    shard: str
    requests: int
    replayed_hit_rate: float
    simulated_hit_rate: float
    model_hit_rate: Optional[float]

    @property
    def sim_error(self) -> float:
        return abs(self.replayed_hit_rate - self.simulated_hit_rate)

    @property
    def model_error(self) -> Optional[float]:
        if self.model_hit_rate is None:
            return None
        return abs(self.replayed_hit_rate - self.model_hit_rate)

    def as_dict(self) -> dict:
        return {"shard": self.shard, "requests": self.requests,
                "replayed_hit_rate": self.replayed_hit_rate,
                "simulated_hit_rate": self.simulated_hit_rate,
                "model_hit_rate": self.model_hit_rate,
                "sim_error": self.sim_error,
                "model_error": self.model_error}


@dataclass
class ReplayValidation:
    """The triple-path verdict: replay vs. simulation vs. model."""

    report: ReplayReport
    shards: List[ShardValidation]

    @property
    def sim_mae(self) -> float:
        return (sum(s.sim_error for s in self.shards)
                / len(self.shards) if self.shards else 0.0)

    @property
    def sim_max_error(self) -> float:
        return max((s.sim_error for s in self.shards), default=0.0)

    @property
    def model_mae(self) -> Optional[float]:
        errors = [s.model_error for s in self.shards
                  if s.model_error is not None]
        if not errors:
            return None
        return sum(errors) / len(errors)

    @property
    def model_max_error(self) -> Optional[float]:
        errors = [s.model_error for s in self.shards
                  if s.model_error is not None]
        return max(errors) if errors else None

    def as_dict(self) -> dict:
        return {"report": self.report.as_dict(),
                "shards": [s.as_dict() for s in self.shards],
                "sim_mae": self.sim_mae,
                "sim_max_error": self.sim_max_error,
                "model_mae": self.model_mae,
                "model_max_error": self.model_max_error}


def _requests_of(trace: Union[Trace, Sequence[Request]]
                 ) -> Sequence[Request]:
    return trace.requests if isinstance(trace, Trace) else trace


def partition_trace(trace: Union[Trace, Sequence[Request]],
                    cache: ShardedCache
                    ) -> Dict[str, List[Request]]:
    """Group a trace's requests by owning shard, preserving order."""
    ring = cache.ring
    out: Dict[str, List[Request]] = {name: []
                                     for name in ring.shards}
    for request in _requests_of(trace):
        out[ring.owner(request.url)].append(request)
    return out


class _ShardWorker(threading.Thread):
    """Fires one shard's substream in order; accumulates privately and
    merges under the report lock at the end (no shared hot state)."""

    def __init__(self, cache: ShardedCache, shard: str,
                 substream: List[Request], sample_every: int,
                 start_gate: threading.Event):
        super().__init__(name=f"replay-{shard}", daemon=True)
        self.cache = cache
        self.shard_name = shard
        self.substream = substream
        self.sample_every = sample_every
        self.start_gate = start_gate
        self.hits = 0
        self.type_hits: Dict[DocumentType, int] = {}
        self.type_requests: Dict[DocumentType, int] = {}
        self.latencies: List[float] = []
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            shard = self.cache.shard(self.shard_name)
            sample_every = self.sample_every
            perf = time.perf_counter
            hits = 0
            type_hits = self.type_hits
            type_requests = self.type_requests
            latencies = self.latencies
            self.start_gate.wait()
            for index, request in enumerate(self.substream):
                doc_type = request.doc_type
                if index % sample_every:
                    outcome = shard.request(request.url, request.size,
                                            doc_type)
                else:
                    began = perf()
                    outcome = shard.request(request.url, request.size,
                                            doc_type)
                    latencies.append(perf() - began)
                hit = outcome is AccessOutcome.HIT
                hits += hit
                type_requests[doc_type] = (
                    type_requests.get(doc_type, 0) + 1)
                if hit:
                    type_hits[doc_type] = (
                        type_hits.get(doc_type, 0) + 1)
            self.hits = hits
        except BaseException as exc:  # surfaced by replay()
            self.error = exc


def replay(trace: Union[Trace, Sequence[Request]],
           config: ReplayConfig,
           cache: Optional[ShardedCache] = None) -> ReplayReport:
    """Replay a trace against a sharded cache, one thread per shard.

    Pass ``cache`` to replay against an existing instance (its shard
    count/policy must match the config); otherwise a fresh
    :class:`ShardedCache` is built from the config.
    """
    config.validate()
    if cache is None:
        cache = ShardedCache(config.capacity_bytes,
                             n_shards=config.n_shards,
                             policy=config.policy,
                             vnodes=config.vnodes)
    elif len(cache.shard_names) != config.n_shards:
        raise ConfigurationError(
            f"cache has {len(cache.shard_names)} shards, config says "
            f"{config.n_shards}")
    substreams = partition_trace(trace, cache)
    start_gate = threading.Event()
    workers = [
        _ShardWorker(cache, shard, substreams[shard],
                     config.latency_sample_every, start_gate)
        for shard in cache.shard_names]
    for worker in workers:
        worker.start()
    began = time.perf_counter()
    start_gate.set()
    for worker in workers:
        worker.join()
    duration = time.perf_counter() - began
    for worker in workers:
        if worker.error is not None:
            raise worker.error

    histogram = Histogram("serving_request_latency_seconds",
                          buckets=LATENCY_BUCKETS)
    for worker in workers:
        for value in worker.latencies:
            histogram.observe(value)

    per_shard = []
    for worker in workers:
        stats = cache.shard(worker.shard_name).stats()
        per_shard.append(ShardReplayResult(
            shard=worker.shard_name, requests=len(worker.substream),
            hits=stats.hits, misses=stats.misses,
            capacity_bytes=stats.capacity_bytes))

    type_requests: Dict[DocumentType, int] = {}
    type_hits: Dict[DocumentType, int] = {}
    for worker in workers:
        for doc_type, count in worker.type_requests.items():
            type_requests[doc_type] = (
                type_requests.get(doc_type, 0) + count)
        for doc_type, count in worker.type_hits.items():
            type_hits[doc_type] = type_hits.get(doc_type, 0) + count
    per_type = {
        doc_type.value: type_hits.get(doc_type, 0) / count
        for doc_type, count in sorted(type_requests.items(),
                                      key=lambda kv: kv[0].value)
        if count}

    total_requests = sum(len(s) for s in substreams.values())
    hits = sum(w.hits for w in workers)
    report = ReplayReport(
        trace_name=getattr(trace, "name", "trace"),
        policy=config.policy, n_shards=config.n_shards,
        capacity_bytes=cache.capacity_bytes,
        requests=total_requests, hits=hits,
        misses=total_requests - hits,
        duration_seconds=duration,
        requests_per_second=(total_requests / duration
                             if duration > 0 else 0.0),
        per_shard=per_shard, per_type_hit_rate=per_type,
        latency_quantiles=histogram.quantiles(),
        latency_samples=histogram.count)
    emit("replay_finished", requests=report.requests,
         threads=len(workers), shards=config.n_shards,
         policy=config.policy, hit_rate=round(report.hit_rate, 6),
         duration_seconds=round(duration, 6),
         requests_per_second=round(report.requests_per_second, 1))
    return report


def validate_replay(trace: Union[Trace, Sequence[Request]],
                    config: ReplayConfig,
                    report: Optional[ReplayReport] = None
                    ) -> ReplayValidation:
    """Check a replay against the simulator and the Che model.

    Per shard: re-simulate the shard's substream with
    :func:`run_cells` at ``warmup_fraction=0.0`` (replay measures
    every request) on the same capacity — the replayed hit rate must
    match **exactly** for deterministic single-thread-per-shard
    replays; and, for policies the model supports
    (:data:`MODEL_POLICIES`), predict the shard's hit rate analytically
    from its substream's catalog — agreement within the model's usual
    few-percent tolerance.
    """
    if report is None:
        report = replay(trace, config)
    probe = ShardedCache(config.capacity_bytes,
                         n_shards=config.n_shards,
                         policy=config.policy, vnodes=config.vnodes)
    substreams = partition_trace(trace, probe)
    budgets = dict(zip(probe.shard_names,
                       split_budget(config.capacity_bytes,
                                    config.n_shards)))
    replayed = {s.shard: s for s in report.per_shard}
    try:
        model_policy = normalize_policy(config.policy)
    except Exception:
        model_policy = None
    if model_policy not in MODEL_POLICIES:
        model_policy = None

    shards = []
    for shard in probe.shard_names:
        substream = substreams[shard]
        if not substream:
            continue
        [sim] = run_cells(
            substream,
            [SimulationConfig(capacity_bytes=budgets[shard],
                              policy=config.policy,
                              warmup_fraction=0.0)],
            trace_name=f"{report.trace_name}/{shard}")
        model_rate = None
        if model_policy is not None:
            catalog = catalog_from_trace(substream,
                                         name=f"{shard}-substream")
            model_rate = predict(catalog, budgets[shard],
                                 policy=model_policy).hit_rate
        shards.append(ShardValidation(
            shard=shard, requests=len(substream),
            replayed_hit_rate=replayed[shard].hit_rate,
            simulated_hit_rate=sim.hit_rate(),
            model_hit_rate=model_rate))
    return ReplayValidation(report=report, shards=shards)
