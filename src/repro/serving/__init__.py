"""Online serving: the replacement policies as a real concurrent cache.

The simulator answers "what *would* this policy do"; this package runs
the same policy objects as a live cache serving concurrent traffic:

* :class:`~repro.serving.cache.ServedCache` — one policy-driven cache
  behind a per-instance lock, with ``get``/``put``/``delete``, a
  single-flight miss-fill path (K concurrent misses on one document
  fetch once), and exactly the simulator's eviction semantics;
* :class:`~repro.serving.sharding.ShardedCache` — a consistent-hash
  ring over N :class:`ServedCache` instances with per-shard capacity
  budgets and live add/remove of shards;
* :mod:`repro.serving.server` / :mod:`repro.serving.client` — an
  asyncio TCP front end speaking a tiny length-prefixed JSON protocol,
  plus in-process sync/async clients;
* :mod:`repro.serving.replay` — a load-replay harness that fires a
  workload trace at a served cache from one thread per shard at line
  rate, then validates the replayed hit rates against (a) a
  :func:`~repro.simulation.engine.run_cells` simulation of each
  shard's substream and (b) the Che model's per-shard prediction —
  the daemon as a third mutually-checking evaluation path.

Correctness before throughput: replay with one thread per shard is
deterministic, so the served cache must reproduce the simulator's
per-shard hit rates *exactly*; CI gates the three-way agreement.
"""

from repro.serving.cache import CachedDocument, ServedCache, ServingStats
from repro.serving.sharding import HashRing, ShardedCache
from repro.serving.replay import (
    ReplayConfig,
    ReplayReport,
    ReplayValidation,
    replay,
    validate_replay,
)

__all__ = [
    "CachedDocument",
    "ServedCache",
    "ServingStats",
    "HashRing",
    "ShardedCache",
    "ReplayConfig",
    "ReplayReport",
    "ReplayValidation",
    "replay",
    "validate_replay",
]
