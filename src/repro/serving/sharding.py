"""Consistent-hash sharding over N served cache instances.

:class:`HashRing` places ``vnodes`` points per shard on a 64-bit ring
(md5 of ``"shard-name#replica"`` — stable across processes and
``PYTHONHASHSEED``, unlike ``hash()``); a URL maps to the first point
clockwise from its own hash.  Adding or removing one shard therefore
moves only ``~1/N`` of the key space — the property that makes live
resharding affordable.

:class:`ShardedCache` is the routing layer: it owns the ring plus one
:class:`~repro.serving.cache.ServedCache` per shard and forwards
``get``/``put``/``delete``/``request`` to the owning shard.  Shard
membership changes swap in a *new* ring under a membership lock
(copy-on-write: in-flight requests finish against the ring they
started with, and per-request routing never locks anything global —
each shard's own lock is the only serialization point).

Per-shard capacity budgets are explicit: ``capacity_bytes`` is the
aggregate budget, split uniformly unless per-shard budgets are given —
holding the total constant is what makes sharded hit rates comparable
against a single cache of the same size.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.policy import AccessOutcome
from repro.errors import ConfigurationError
from repro.observability.events import emit
from repro.observability.metrics import get_registry
from repro.serving.cache import CachedDocument, Loader, ServedCache
from repro.types import DocumentType

#: Ring points per shard.  128 keeps the max/mean key-share imbalance
#: under ~10% for small N while the ring stays a few KB.
DEFAULT_VNODES = 128


def _ring_hash(data: str) -> int:
    """64-bit stable hash (first 8 bytes of md5, big-endian)."""
    return int.from_bytes(
        hashlib.md5(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over a set of shard names."""

    def __init__(self, shards: Iterable[str],
                 vnodes: int = DEFAULT_VNODES):
        names = list(shards)
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate shard names: {names}")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.shards: Tuple[str, ...] = tuple(names)
        points: List[Tuple[int, str]] = []
        for name in names:
            for replica in range(vnodes):
                points.append((_ring_hash(f"{name}#{replica}"), name))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [name for _, name in points]

    def __len__(self) -> int:
        return len(self.shards)

    def owner(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise)."""
        if not self._hashes:
            raise ConfigurationError("ring has no shards")
        index = bisect.bisect_right(self._hashes, _ring_hash(key))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def partition(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """Group keys by owning shard (every shard present, possibly
        empty) — the replay harness's pre-pass."""
        out: Dict[str, List[str]] = {name: [] for name in self.shards}
        for key in keys:
            out[self.owner(key)].append(key)
        return out


class ShardedCache:
    """Consistent-hash router over per-shard :class:`ServedCache`\\ s."""

    def __init__(self, capacity_bytes: int, n_shards: int = 4,
                 policy: str = "lru", vnodes: int = DEFAULT_VNODES,
                 shard_capacities: Optional[Sequence[int]] = None,
                 name: str = "sharded", record_ops: bool = False):
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        self.name = name
        self.policy_name = policy
        self.vnodes = vnodes
        self._record_ops = record_ops
        self._membership = threading.RLock()
        names = [f"shard-{i}" for i in range(n_shards)]
        if shard_capacities is None:
            shard_capacities = split_budget(capacity_bytes, n_shards)
        elif len(shard_capacities) != n_shards:
            raise ConfigurationError(
                f"{len(shard_capacities)} budgets for {n_shards} shards")
        self._shards: Dict[str, ServedCache] = {
            shard: ServedCache(budget, policy, name=shard,
                               record_ops=record_ops)
            for shard, budget in zip(names, shard_capacities)}
        self._ring = HashRing(names, vnodes=vnodes)

    # -- topology ----------------------------------------------------------

    @property
    def ring(self) -> HashRing:
        """The current ring (immutable; safe to use lock-free)."""
        return self._ring

    @property
    def shard_names(self) -> Tuple[str, ...]:
        return self._ring.shards

    def shard(self, name: str) -> ServedCache:
        shard = self._shards.get(name)
        if shard is None:
            raise ConfigurationError(f"unknown shard {name!r}")
        return shard

    def shard_for(self, url: str) -> ServedCache:
        return self._shards[self._ring.owner(url)]

    @property
    def capacity_bytes(self) -> int:
        with self._membership:
            return sum(s.capacity_bytes for s in self._shards.values())

    def add_shard(self, name: str, capacity_bytes: int) -> ServedCache:
        """Bring one shard online; keys hashing to its ring points are
        owned by it from the moment the new ring is swapped in.

        Documents those keys left behind on their old shards are not
        migrated: they become cold residue that the old shard's policy
        evicts naturally — the standard consistent-hashing trade.
        """
        with self._membership:
            if name in self._shards:
                raise ConfigurationError(
                    f"shard {name!r} already exists")
            shard = ServedCache(capacity_bytes, self.policy_name,
                                name=name, record_ops=self._record_ops)
            self._shards[name] = shard
            self._ring = HashRing(list(self._ring.shards) + [name],
                                  vnodes=self.vnodes)
            emit("shard_rebalanced", action="added", shard=name,
                 shards=len(self._ring))
            return shard

    def remove_shard(self, name: str, drain: bool = True) -> None:
        """Take one shard offline.

        With ``drain=True`` its resident documents are re-``put`` onto
        the surviving shards (at frequency 1 — residency moves, policy
        history does not), so a removal is a rebalance instead of a
        mass cache-miss event.
        """
        with self._membership:
            if len(self._shards) == 1:
                raise ConfigurationError(
                    "cannot remove the last shard")
            shard = self.shard(name)
            survivors = [s for s in self._ring.shards if s != name]
            self._ring = HashRing(survivors, vnodes=self.vnodes)
            del self._shards[name]
            if drain:
                for url, size in shard.contents().items():
                    self.shard_for(url).put(url, size)
            shard.flush()
            emit("shard_rebalanced", action="removed", shard=name,
                 shards=len(self._ring))

    # -- the serving API (routed) ------------------------------------------

    def request(self, url: str, size: int,
                doc_type: DocumentType = DocumentType.OTHER
                ) -> AccessOutcome:
        return self.shard_for(url).request(url, size, doc_type)

    def get(self, url: str) -> Optional[CachedDocument]:
        return self.shard_for(url).get(url)

    def put(self, url: str, size: int,
            doc_type: DocumentType = DocumentType.OTHER,
            payload: Optional[bytes] = None) -> AccessOutcome:
        return self.shard_for(url).put(url, size, doc_type, payload)

    def delete(self, url: str) -> bool:
        return self.shard_for(url).delete(url)

    def get_or_fetch(self, url: str, loader: Loader) -> CachedDocument:
        return self.shard_for(url).get_or_fetch(url, loader)

    def __contains__(self, url: str) -> bool:
        return url in self.shard_for(url)

    def __len__(self) -> int:
        with self._membership:
            return sum(len(s) for s in self._shards.values())

    # -- aggregated introspection -----------------------------------------

    def stats(self) -> dict:
        with self._membership:
            shards = {name: self._shards[name].stats().as_dict()
                      for name in self._ring.shards}
        totals = {
            key: sum(s[key] for s in shards.values())
            for key in ("resident_docs", "occupancy_bytes",
                        "capacity_bytes", "hits", "misses", "evictions",
                        "invalidations", "bypasses", "deletes", "fills",
                        "coalesced_fills")}
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        return {"shards": shards, "total": totals}

    def check_invariants(self) -> None:
        with self._membership:
            for shard in self._shards.values():
                shard.check_invariants()

    def publish_metrics(self) -> None:
        """Export per-shard occupancy/residency gauges through the
        metrics registry.  Called from stats endpoints and the replay
        harness's reporting points — never per request — so the no-op
        default registry keeps the hot path clean."""
        registry = get_registry()
        if not registry.enabled:
            return
        with self._membership:
            for name in self._ring.shards:
                stats = self._shards[name].stats()
                registry.gauge("serving_shard_occupancy_bytes",
                               shard=name).set(stats.occupancy_bytes)
                registry.gauge("serving_shard_resident_docs",
                               shard=name).set(stats.resident_docs)
                registry.gauge("serving_shard_hits_total",
                               shard=name).set(stats.hits)
                registry.gauge("serving_shard_misses_total",
                               shard=name).set(stats.misses)


def split_budget(capacity_bytes: int, n_shards: int) -> List[int]:
    """Split an aggregate byte budget uniformly, remainder to the
    earliest shards; every shard gets at least one byte."""
    if capacity_bytes < n_shards:
        raise ConfigurationError(
            f"cannot split {capacity_bytes} bytes over {n_shards} "
            "shards")
    base, remainder = divmod(capacity_bytes, n_shards)
    return [base + (1 if i < remainder else 0) for i in range(n_shards)]
