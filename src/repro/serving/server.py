"""Asyncio TCP front end for a served (possibly sharded) cache.

Wire protocol: each message is a 4-byte big-endian length prefix
followed by that many bytes of UTF-8 JSON.  Requests carry an ``op``
plus op-specific fields; responses always carry ``ok`` (bool) and
either the result fields or an ``error`` string.  Binary payloads ride
inside the JSON as latin-1-mapped strings (byte-transparent both
ways), which keeps the protocol one codec deep — this is a measurement
front end, not a production proxy.

Ops::

    {"op": "ping"}                                   -> {"ok": true, "pong": true}
    {"op": "request", "url", "size", "doc_type"?}    -> {"ok": true, "outcome": "hit"|...}
    {"op": "get", "url"}                             -> {"ok": true, "found": bool, ...}
    {"op": "put", "url", "size", "doc_type"?,
     "payload"?}                                     -> {"ok": true, "outcome": ...}
    {"op": "delete", "url"}                          -> {"ok": true, "deleted": bool}
    {"op": "stats"}                                  -> {"ok": true, "stats": {...}}

The event loop only frames and decodes; cache work happens in the
handler coroutine directly because every :class:`ServedCache`
operation is a sub-microsecond lock-plus-dict affair — punting it to a
thread pool would cost more than the lock ever blocks.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.observability.events import emit
from repro.observability.logs import get_logger
from repro.serving.cache import ServedCache
from repro.serving.sharding import ShardedCache
from repro.types import DocumentType

_logger = get_logger("serving.server")

MAX_FRAME = 64 * 1024 * 1024  # refuse absurd frames instead of OOMing

_LEN = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ConfigurationError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """One decoded frame, or None on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ConfigurationError(
            f"peer announced a {length}-byte frame (max {MAX_FRAME})")
    body = await reader.readexactly(length)
    return json.loads(body.decode("utf-8"))


class CacheServer:
    """Serve one :class:`ServedCache` / :class:`ShardedCache` over TCP."""

    def __init__(self, cache: Union[ServedCache, ShardedCache],
                 host: str = "127.0.0.1", port: int = 0):
        self.cache = cache
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        shards = (len(self.cache.shard_names)
                  if isinstance(self.cache, ShardedCache) else 1)
        policy = (self.cache.policy_name
                  if isinstance(self.cache, ShardedCache)
                  else self.cache.policy.name)
        emit("serving_started", host=self.host, port=self.port,
             shards=shards, policy=policy,
             capacity_bytes=self.cache.capacity_bytes)
        _logger.info("serving %s on %s:%d", policy, self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except (ConfigurationError, ValueError,
                        asyncio.IncompleteReadError) as exc:
                    writer.write(encode_frame(
                        {"ok": False, "error": f"bad frame: {exc}"}))
                    await writer.drain()
                    break
                if message is None:
                    break
                writer.write(encode_frame(self._dispatch(message)))
                await writer.drain()
        except ConnectionResetError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(self, message: dict) -> dict:
        try:
            op = message.get("op")
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "stats":
                stats = self.cache.stats()
                if not isinstance(stats, dict):
                    stats = stats.as_dict()
                if isinstance(self.cache, ShardedCache):
                    self.cache.publish_metrics()
                return {"ok": True, "stats": stats}
            if op == "request":
                outcome = self.cache.request(
                    message["url"], int(message["size"]),
                    DocumentType(message.get("doc_type", "other")))
                return {"ok": True, "outcome": outcome.value}
            if op == "get":
                document = self.cache.get(message["url"])
                if document is None:
                    return {"ok": True, "found": False}
                response = {"ok": True, "found": True,
                            "url": document.url, "size": document.size,
                            "doc_type": document.doc_type.value,
                            "frequency": document.frequency}
                if document.payload is not None:
                    response["payload"] = document.payload.decode(
                        "latin-1")
                return response
            if op == "put":
                payload = message.get("payload")
                if payload is not None:
                    payload = payload.encode("latin-1")
                outcome = self.cache.put(
                    message["url"], int(message["size"]),
                    DocumentType(message.get("doc_type", "other")),
                    payload)
                return {"ok": True, "outcome": outcome.value}
            if op == "delete":
                return {"ok": True,
                        "deleted": self.cache.delete(message["url"])}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # surface, don't kill the connection
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}


async def serve(cache: Union[ServedCache, ShardedCache],
                host: str = "127.0.0.1", port: int = 0) -> CacheServer:
    """Start a :class:`CacheServer` and return it (caller stops it)."""
    server = CacheServer(cache, host, port)
    await server.start()
    return server
