"""Clients for the serving protocol (sync socket + asyncio).

:class:`CacheClient` is a plain blocking-socket client — one
connection, one outstanding request — which is what the protocol tests
and simple drivers need.  :class:`AsyncCacheClient` speaks the same
frames over asyncio streams for use inside the server's own loop.

Both return the decoded response dict verbatim; a response with
``ok: false`` raises :class:`ServingProtocolError` carrying the
server's error string, so callers never have to remember to check.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

from repro.errors import ReproError
from repro.serving.server import encode_frame, read_frame
from repro.types import DocumentType

_LEN = struct.Struct(">I")


class ServingProtocolError(ReproError):
    """The server answered ``ok: false`` (its error string attached)."""


def _check(response: dict) -> dict:
    if not response.get("ok"):
        raise ServingProtocolError(
            response.get("error", "server reported failure"))
    return response


class CacheClient:
    """Blocking client: ``with CacheClient(host, port) as c: c.get(url)``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 10.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "CacheClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _roundtrip(self, message: dict) -> dict:
        self._sock.sendall(encode_frame(message))
        header = self._recv_exact(_LEN.size)
        (length,) = _LEN.unpack(header)
        body = self._recv_exact(length)
        return _check(json.loads(body.decode("utf-8")))

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            chunk = self._sock.recv(n)
            if not chunk:
                raise ServingProtocolError(
                    "connection closed mid-frame")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def request(self, url: str, size: int,
                doc_type: DocumentType = DocumentType.OTHER) -> str:
        return self._roundtrip({"op": "request", "url": url,
                                "size": size,
                                "doc_type": doc_type.value})["outcome"]

    def get(self, url: str) -> Optional[dict]:
        response = self._roundtrip({"op": "get", "url": url})
        if not response["found"]:
            return None
        if "payload" in response:
            response["payload"] = response["payload"].encode("latin-1")
        return response

    def put(self, url: str, size: int,
            doc_type: DocumentType = DocumentType.OTHER,
            payload: Optional[bytes] = None) -> str:
        message = {"op": "put", "url": url, "size": size,
                   "doc_type": doc_type.value}
        if payload is not None:
            message["payload"] = payload.decode("latin-1")
        return self._roundtrip(message)["outcome"]

    def delete(self, url: str) -> bool:
        return self._roundtrip({"op": "delete", "url": url})["deleted"]

    def stats(self) -> dict:
        return self._roundtrip({"op": "stats"})["stats"]


class AsyncCacheClient:
    """Asyncio client speaking the same frames (for in-loop callers)."""

    def __init__(self):
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 0) -> "AsyncCacheClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(
            host, port)
        return client

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            await self._writer.wait_closed()
            self._writer = None

    async def call(self, message: dict) -> dict:
        """One raw round trip (``ok`` checked)."""
        self._writer.write(encode_frame(message))
        await self._writer.drain()
        response = await read_frame(self._reader)
        if response is None:
            raise ServingProtocolError("connection closed mid-frame")
        return _check(response)

    async def ping(self) -> bool:
        return bool((await self.call({"op": "ping"})).get("pong"))

    async def request(self, url: str, size: int,
                      doc_type: DocumentType = DocumentType.OTHER
                      ) -> str:
        response = await self.call(
            {"op": "request", "url": url, "size": size,
             "doc_type": doc_type.value})
        return response["outcome"]

    async def get(self, url: str) -> Optional[dict]:
        response = await self.call({"op": "get", "url": url})
        if not response["found"]:
            return None
        if "payload" in response:
            response["payload"] = response["payload"].encode("latin-1")
        return response

    async def put(self, url: str, size: int,
                  doc_type: DocumentType = DocumentType.OTHER,
                  payload: Optional[bytes] = None) -> str:
        message = {"op": "put", "url": url, "size": size,
                   "doc_type": doc_type.value}
        if payload is not None:
            message["payload"] = payload.decode("latin-1")
        return (await self.call(message))["outcome"]

    async def delete(self, url: str) -> bool:
        return (await self.call({"op": "delete", "url": url}))["deleted"]

    async def stats(self) -> dict:
        return (await self.call({"op": "stats"}))["stats"]
