"""``python -m repro.serving`` — the serving CLI (serve/replay)."""

import sys

from repro.serving.cli import main

sys.exit(main())
