"""Policy × cache-size sweeps (the shape of Figures 2 and 3).

The paper plots hit rate and byte hit rate "for increasing cache sizes
... chosen from about 0.5 % to about 4 % of overall trace size".
:func:`cache_sizes_from_fractions` converts those fractions to byte
capacities for a given trace; :func:`run_sweep` runs the full grid,
constructing a fresh policy and cache per cell.

Two execution engines produce bit-identical grids:

* ``percell`` — the classic loop: every (policy, capacity) cell gets
  its own :class:`~repro.simulation.simulator.CacheSimulator` and its
  own full trace pass.
* ``batched`` — all cells ride **one** shared trace pass through
  :func:`repro.simulation.engine.run_cells`, so trace iteration and
  size resolution are paid once for the whole grid (and eligible LRU
  cells collapse into a single stack-distance ladder).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.simulation.engine import run_cells
from repro.simulation.results import SweepResult
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
)
from repro.types import Trace

#: The paper's cache-size ladder, as fractions of overall trace size.
PAPER_SIZE_FRACTIONS = (0.005, 0.01, 0.02, 0.04)


def cache_sizes_from_fractions(
        trace: Trace,
        fractions: Sequence[float] = PAPER_SIZE_FRACTIONS) -> List[int]:
    """Byte capacities equal to the given fractions of the trace's
    overall (distinct-document) size."""
    if not fractions:
        raise ConfigurationError("need at least one size fraction")
    if any(f <= 0 for f in fractions):
        raise ConfigurationError("size fractions must be positive")
    total = trace.metadata().total_size_bytes
    if total <= 0:
        raise ConfigurationError("trace has no bytes to size against")
    return sorted({max(int(total * f), 1) for f in fractions})


def run_sweep(trace: Union[Trace, str, Path],
              policies: Iterable[str],
              capacities: Sequence[int],
              warmup_fraction: float = 0.10,
              size_interpretation: SizeInterpretation =
              SizeInterpretation.TRUSTED,
              occupancy_interval: int = 0,
              progress: Optional[Callable[[str, int], None]] = None,
              policy_kwargs: Optional[dict] = None,
              engine: str = "percell") -> SweepResult:
    """Run every (policy, capacity) cell over the trace.

    Args:
        trace: The driving workload — a :class:`~repro.types.Trace`,
            or a trace *file path* (any format
            :func:`repro.trace.reader.open_trace` handles), swept with
            bounded memory: the percell engine re-decodes the file
            once per cell, the batched engine decodes it once for the
            whole grid.
        policies: Policy names (see :mod:`repro.core.registry`).
        capacities: Cache capacities in bytes.
        warmup_fraction: Warm-up share per run (paper: 0.10).
        size_interpretation: Modification handling mode.
        occupancy_interval: Per-type occupancy sampling cadence
            (0 = off); only meaningful for adaptability studies.
        progress: Optional callback invoked with (policy, capacity)
            before each cell, for long sweeps.  With the batched
            engine all callbacks fire up front, before the single
            shared pass starts.
        policy_kwargs: Extra arguments forwarded to
            :func:`~repro.core.registry.make_policy` (e.g. fixed_beta).
        engine: ``"percell"`` (one trace pass per cell) or
            ``"batched"`` (one shared pass for the whole grid); the
            grids are bit-identical.

    Returns a :class:`~repro.simulation.results.SweepResult` whose grid
    is keyed by policy name and capacity.
    """
    from repro.core.registry import make_policy

    if engine not in ("percell", "batched"):
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'percell' or 'batched'")
    if isinstance(trace, (str, Path)):
        return _run_sweep_from_file(
            Path(trace), policies, capacities, warmup_fraction,
            size_interpretation, occupancy_interval, progress,
            policy_kwargs, engine)
    if getattr(trace, "is_columnar", False) and engine == "percell":
        # The batched engine consumes the columns directly; the percell
        # loop wants Request objects, so decode the mmap exactly once
        # for the whole grid instead of once per cell.
        trace = Trace(trace.iter_requests(), name=trace.name)
    sweep = SweepResult(trace_name=trace.name)
    kwargs = policy_kwargs or {}
    if engine == "batched":
        configs = []
        for policy_name in policies:
            for capacity in capacities:
                if progress is not None:
                    progress(policy_name, capacity)
                configs.append(SimulationConfig(
                    capacity_bytes=capacity,
                    policy=make_policy(policy_name, **kwargs),
                    warmup_fraction=warmup_fraction,
                    size_interpretation=size_interpretation,
                    occupancy_interval=occupancy_interval,
                ))
        for result in run_cells(trace, configs, trace_name=trace.name):
            sweep.add(result)
        return sweep
    for policy_name in policies:
        for capacity in capacities:
            if progress is not None:
                progress(policy_name, capacity)
            policy = make_policy(policy_name, **kwargs)
            config = SimulationConfig(
                capacity_bytes=capacity,
                policy=policy,
                warmup_fraction=warmup_fraction,
                size_interpretation=size_interpretation,
                occupancy_interval=occupancy_interval,
            )
            result = CacheSimulator(config).run(trace)
            sweep.add(result)
    return sweep


def _run_sweep_from_file(path: Path, policies, capacities,
                         warmup_fraction, size_interpretation,
                         occupancy_interval, progress, policy_kwargs,
                         engine: str) -> SweepResult:
    """Sweep a trace *file* with bounded memory.

    This is where the two engines differ most: streaming means the
    trace is never materialized, so the percell engine has no choice
    but to re-decode (and, for raw logs, re-preprocess) the file for
    every cell — the ``O(cells × requests)`` trace tax — while the
    batched engine decodes once and drives every cell from the same
    chunk stream.
    """
    from repro.core.registry import make_policy
    from repro.trace.columnar import is_columnar_file, open_columnar
    from repro.trace.pipeline import count_requests, iter_trace

    name = path.stem
    total = count_requests(path)
    sweep = SweepResult(trace_name=name)
    kwargs = policy_kwargs or {}

    def make_config(policy_name, capacity):
        return SimulationConfig(
            capacity_bytes=capacity,
            policy=make_policy(policy_name, **kwargs),
            warmup_fraction=warmup_fraction,
            size_interpretation=size_interpretation,
            occupancy_interval=occupancy_interval,
        )

    if is_columnar_file(path):
        # Columnar files skip text decoding entirely: the batched
        # engine consumes the mmap'd columns, the percell engine
        # decodes Request objects exactly once for the whole grid.
        with open_columnar(path) as columnar:
            if engine == "batched":
                configs = []
                for policy_name in policies:
                    for capacity in capacities:
                        if progress is not None:
                            progress(policy_name, capacity)
                        configs.append(make_config(policy_name, capacity))
                for result in run_cells(columnar, configs,
                                        trace_name=name):
                    sweep.add(result)
                return sweep
            requests = list(columnar.iter_requests())
        warmup = int(total * warmup_fraction)
        for policy_name in policies:
            for capacity in capacities:
                if progress is not None:
                    progress(policy_name, capacity)
                simulator = CacheSimulator(
                    make_config(policy_name, capacity))
                sweep.add(simulator.run_stream(
                    iter(requests), warmup_requests=warmup,
                    trace_name=name))
        return sweep

    if engine == "batched":
        configs = []
        for policy_name in policies:
            for capacity in capacities:
                if progress is not None:
                    progress(policy_name, capacity)
                configs.append(make_config(policy_name, capacity))
        for result in run_cells(iter_trace(path), configs,
                                trace_name=name, total_requests=total):
            sweep.add(result)
        return sweep
    warmup = int(total * warmup_fraction)
    for policy_name in policies:
        for capacity in capacities:
            if progress is not None:
                progress(policy_name, capacity)
            simulator = CacheSimulator(make_config(policy_name, capacity))
            sweep.add(simulator.run_stream(
                iter_trace(path), warmup_requests=warmup,
                trace_name=name))
    return sweep
