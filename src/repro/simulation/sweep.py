"""Policy × cache-size sweeps (the shape of Figures 2 and 3).

The paper plots hit rate and byte hit rate "for increasing cache sizes
... chosen from about 0.5 % to about 4 % of overall trace size".
:func:`cache_sizes_from_fractions` converts those fractions to byte
capacities for a given trace; :func:`run_sweep` runs the full grid,
constructing a fresh policy and cache per cell.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.simulation.results import SweepResult
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
)
from repro.types import Trace

#: The paper's cache-size ladder, as fractions of overall trace size.
PAPER_SIZE_FRACTIONS = (0.005, 0.01, 0.02, 0.04)


def cache_sizes_from_fractions(
        trace: Trace,
        fractions: Sequence[float] = PAPER_SIZE_FRACTIONS) -> List[int]:
    """Byte capacities equal to the given fractions of the trace's
    overall (distinct-document) size."""
    if not fractions:
        raise ConfigurationError("need at least one size fraction")
    if any(f <= 0 for f in fractions):
        raise ConfigurationError("size fractions must be positive")
    total = trace.metadata().total_size_bytes
    if total <= 0:
        raise ConfigurationError("trace has no bytes to size against")
    return sorted({max(int(total * f), 1) for f in fractions})


def run_sweep(trace: Trace,
              policies: Iterable[str],
              capacities: Sequence[int],
              warmup_fraction: float = 0.10,
              size_interpretation: SizeInterpretation =
              SizeInterpretation.TRUSTED,
              occupancy_interval: int = 0,
              progress: Optional[Callable[[str, int], None]] = None,
              policy_kwargs: Optional[dict] = None) -> SweepResult:
    """Run every (policy, capacity) cell over the trace.

    Args:
        trace: The driving workload.
        policies: Policy names (see :mod:`repro.core.registry`).
        capacities: Cache capacities in bytes.
        warmup_fraction: Warm-up share per run (paper: 0.10).
        size_interpretation: Modification handling mode.
        occupancy_interval: Per-type occupancy sampling cadence
            (0 = off); only meaningful for adaptability studies.
        progress: Optional callback invoked with (policy, capacity)
            before each cell, for long sweeps.
        policy_kwargs: Extra arguments forwarded to
            :func:`~repro.core.registry.make_policy` (e.g. fixed_beta).

    Returns a :class:`~repro.simulation.results.SweepResult` whose grid
    is keyed by policy name and capacity.
    """
    from repro.core.registry import make_policy

    sweep = SweepResult(trace_name=trace.name)
    kwargs = policy_kwargs or {}
    for policy_name in policies:
        for capacity in capacities:
            if progress is not None:
                progress(policy_name, capacity)
            policy = make_policy(policy_name, **kwargs)
            config = SimulationConfig(
                capacity_bytes=capacity,
                policy=policy,
                warmup_fraction=warmup_fraction,
                size_interpretation=size_interpretation,
                occupancy_interval=occupancy_interval,
            )
            result = CacheSimulator(config).run(trace)
            sweep.add(result)
    return sweep
