"""Sibling cache mesh (ICP-style cooperation).

The paper's DFN trace comes from the *DFN cache mesh* (reference [6]):
peer proxies that, on a local miss, ask their siblings before going to
the origin — the Internet Cache Protocol pattern.  Where the
:mod:`~repro.simulation.hierarchy` module models parent/child levels,
this module models the flat peer topology:

* each request goes to its home proxy (round-robin client assignment);
* a local miss queries all siblings; a sibling hit serves the document
  (cheaper than origin, dearer than local) and, optionally, the home
  proxy keeps a copy (``replicate_on_sibling_hit``);
* otherwise the origin serves and the home proxy caches.

The classic ICP trade-off falls out and is pinned by tests:
replication raises local hit rates but burns aggregate capacity on
duplicates, so with tight budgets the non-replicating mesh serves more
distinct bytes from the pool.

Since the :mod:`repro.network` refactor this module is a thin
constructor over the general cache-network engine: the flat peer
shape comes from :func:`repro.network.topology.sibling_mesh` (all
proxies are edge nodes sharing one sibling ring) and the walk from
:class:`repro.network.engine.NetworkSimulator` under
leave-copy-everywhere — the same cache-call sequence the loop that
used to live here made.  ``tests/network/data/golden_mesh.json`` pins
that equivalence across the whole policy registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.core.policy import ReplacementPolicy
from repro.errors import ConfigurationError
from repro.network.engine import NetworkConfig, NetworkSimulator
from repro.network.topology import sibling_mesh
from repro.simulation.metrics import TypeMetrics
from repro.types import Request, Trace


@dataclass
class MeshConfig:
    """Topology and behaviour of the sibling mesh."""

    proxy_capacity_bytes: int
    n_proxies: int = 4
    policy: str = "lru"
    #: Copy a sibling-served document into the home proxy too (the
    #: bandwidth-hungry variant of ICP deployments).
    replicate_on_sibling_hit: bool = True
    warmup_fraction: float = 0.10

    def validate(self) -> None:
        if self.proxy_capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.n_proxies < 2:
            raise ConfigurationError("a mesh needs at least two proxies")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")


@dataclass
class MeshResult:
    """Outcome of one mesh run."""

    config: MeshConfig
    trace_name: str = "trace"
    total_requests: int = 0
    warmup_requests: int = 0
    #: Hits in the client's home proxy.
    local: TypeMetrics = field(default_factory=TypeMetrics)
    #: Requests served anywhere in the mesh (local or sibling).
    mesh: TypeMetrics = field(default_factory=TypeMetrics)
    sibling_hits: int = 0

    @property
    def local_hit_rate(self) -> float:
        return self.local.overall.hit_rate

    @property
    def mesh_hit_rate(self) -> float:
        return self.mesh.overall.hit_rate

    @property
    def sibling_hit_share(self) -> float:
        """Fraction of mesh hits supplied by a sibling."""
        hits = self.mesh.overall.hits
        return self.sibling_hits / hits if hits else 0.0


class MeshSimulator:
    """Drives a trace through the sibling mesh.

    A one-level LCE network whose edge nodes share a sibling ring:
    ``local`` metrics are the merged home-proxy populations, ``mesh``
    the network-wide view, ``sibling_hits`` the engine's sibling-serve
    count.  ``policies`` optionally supplies one pre-built policy per
    proxy (pre-seeded randomized policies, mixed-policy meshes).
    """

    def __init__(self, config: MeshConfig,
                 policies: Optional[Sequence[ReplacementPolicy]] = None):
        config.validate()
        self.config = config
        self._network = NetworkSimulator(NetworkConfig(
            topology=sibling_mesh(
                config.proxy_capacity_bytes,
                n_proxies=config.n_proxies,
                policy=config.policy,
                policies=policies),
            strategy="lce",
            warmup_fraction=config.warmup_fraction,
            replicate_on_sibling_hit=config.replicate_on_sibling_hit))

    def run(self, trace: Union[Trace, Sequence[Request]],
            trace_name: Optional[str] = None) -> MeshResult:
        name = (trace_name or getattr(trace, "trace_name", None)
                or getattr(trace, "name", "trace"))
        net = self._network.run(trace, trace_name=name)
        return MeshResult(
            config=self.config,
            trace_name=net.trace_name,
            total_requests=net.total_requests,
            warmup_requests=net.warmup_requests,
            local=net.edge_metrics(),
            mesh=net.network,
            sibling_hits=net.sibling_serves,
        )


def simulate_mesh(trace: Union[Trace, Sequence[Request]],
                  proxy_capacity_bytes: int,
                  **config_kwargs) -> MeshResult:
    """One-call mesh simulation."""
    config = MeshConfig(proxy_capacity_bytes=proxy_capacity_bytes,
                        **config_kwargs)
    return MeshSimulator(config).run(trace)
