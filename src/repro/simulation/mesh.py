"""Sibling cache mesh (ICP-style cooperation).

The paper's DFN trace comes from the *DFN cache mesh* (reference [6]):
peer proxies that, on a local miss, ask their siblings before going to
the origin — the Internet Cache Protocol pattern.  Where the
:mod:`~repro.simulation.hierarchy` module models parent/child levels,
this module models the flat peer topology:

* each request goes to its home proxy (round-robin client assignment);
* a local miss queries all siblings; a sibling hit serves the document
  (cheaper than origin, dearer than local) and, optionally, the home
  proxy keeps a copy (``replicate_on_sibling_hit``);
* otherwise the origin serves and the home proxy caches.

The classic ICP trade-off falls out and is pinned by tests:
replication raises local hit rates but burns aggregate capacity on
duplicates, so with tight budgets the non-replicating mesh serves more
distinct bytes from the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.cache import Cache
from repro.core.policy import AccessOutcome, ReplacementPolicy
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.simulation.metrics import TypeMetrics
from repro.types import Request, Trace


@dataclass
class MeshConfig:
    """Topology and behaviour of the sibling mesh."""

    proxy_capacity_bytes: int
    n_proxies: int = 4
    policy: str = "lru"
    #: Copy a sibling-served document into the home proxy too (the
    #: bandwidth-hungry variant of ICP deployments).
    replicate_on_sibling_hit: bool = True
    warmup_fraction: float = 0.10

    def validate(self) -> None:
        if self.proxy_capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.n_proxies < 2:
            raise ConfigurationError("a mesh needs at least two proxies")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")


@dataclass
class MeshResult:
    """Outcome of one mesh run."""

    config: MeshConfig
    trace_name: str = "trace"
    total_requests: int = 0
    warmup_requests: int = 0
    #: Hits in the client's home proxy.
    local: TypeMetrics = field(default_factory=TypeMetrics)
    #: Requests served anywhere in the mesh (local or sibling).
    mesh: TypeMetrics = field(default_factory=TypeMetrics)
    sibling_hits: int = 0

    @property
    def local_hit_rate(self) -> float:
        return self.local.overall.hit_rate

    @property
    def mesh_hit_rate(self) -> float:
        return self.mesh.overall.hit_rate

    @property
    def sibling_hit_share(self) -> float:
        """Fraction of mesh hits supplied by a sibling."""
        hits = self.mesh.overall.hits
        return self.sibling_hits / hits if hits else 0.0


class MeshSimulator:
    """Drives a trace through the sibling mesh."""

    def __init__(self, config: MeshConfig,
                 policies: Optional[Sequence[ReplacementPolicy]] = None):
        config.validate()
        self.config = config
        if policies is not None:
            if len(policies) != config.n_proxies:
                raise ConfigurationError(
                    "need exactly one policy per proxy")
            built = list(policies)
        else:
            built = [make_policy(config.policy)
                     for _ in range(config.n_proxies)]
        self.proxies: List[Cache] = [
            Cache(config.proxy_capacity_bytes, policy)
            for policy in built
        ]

    def run(self, trace: Union[Trace, Sequence[Request]],
            trace_name: Optional[str] = None) -> MeshResult:
        requests = trace.requests if isinstance(trace, Trace) else trace
        total = len(requests)
        warmup = int(total * self.config.warmup_fraction)
        result = MeshResult(
            config=self.config,
            trace_name=trace_name or getattr(trace, "trace_name", None)
            or getattr(trace, "name", "trace"),
            total_requests=total,
            warmup_requests=warmup,
        )
        n = self.config.n_proxies
        replicate = self.config.replicate_on_sibling_hit
        for index, request in enumerate(requests):
            home = self.proxies[index % n]
            outcome = home.reference(request.url, request.size,
                                     request.doc_type)
            local_hit = outcome is AccessOutcome.HIT
            sibling_hit = False
            if not local_hit:
                for offset in range(1, n):
                    sibling = self.proxies[(index + offset) % n]
                    entry = sibling.get(request.url)
                    if entry is not None and entry.size == request.size:
                        sibling_hit = True
                        # Serving refreshes the sibling's entry.
                        sibling.reference(request.url, request.size,
                                          request.doc_type)
                        break
                if sibling_hit and not replicate:
                    # The home proxy admitted the document on its miss
                    # path above; a non-replicating mesh drops it again
                    # (the sibling remains the owner).
                    home.invalidate(request.url)
            if index < warmup:
                continue
            transfer = min(request.transfer_size, request.size)
            result.local.record(request.doc_type, local_hit, transfer)
            result.mesh.record(request.doc_type,
                               local_hit or sibling_hit, transfer)
            if sibling_hit:
                result.sibling_hits += 1
        return result


def simulate_mesh(trace: Union[Trace, Sequence[Request]],
                  proxy_capacity_bytes: int,
                  **config_kwargs) -> MeshResult:
    """One-call mesh simulation."""
    config = MeshConfig(proxy_capacity_bytes=proxy_capacity_bytes,
                        **config_kwargs)
    return MeshSimulator(config).run(trace)
