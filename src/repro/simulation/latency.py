"""User-perceived latency accounting.

The paper frames the constant cost model as the choice of
"institutional proxy caches, which mainly aim at reducing end user
latency" — but reports hit rates, the proxy-side proxy for latency.
This module closes the loop: a :class:`LatencyModel` assigns each
request a service time (fast on hits, RTT + transmission on misses),
and the simulator aggregates mean latency per document type, so policy
comparisons can be read directly in milliseconds saved.

The model is deliberately first-order (fixed RTTs, fixed bandwidth, no
queueing): enough to rank policies and expose the hit-rate/latency
disconnect for large documents, without pretending to be a network
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.errors import ConfigurationError
from repro.structures.streaming import StreamingStats
from repro.types import DOCUMENT_TYPES, DocumentType


@dataclass(frozen=True)
class Link:
    """One network hop: propagation delay plus transmission bandwidth.

    The unit the cache-network engine (:mod:`repro.network`) sums over
    paths: every edge of a topology — client↔proxy, proxy↔parent,
    proxy↔sibling, top↔origin — is a ``Link``.  The single-cache
    :class:`LatencyModel` is the two-link special case
    (:meth:`LatencyModel.from_links`).
    """

    rtt: float
    bandwidth: float                         # bytes/second

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ConfigurationError("rtt must be positive")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")

    def time(self, transfer_bytes: int) -> float:
        """Service time for a transfer crossing only this hop."""
        return self.rtt + transfer_bytes / self.bandwidth


def path_latency(links: Iterable[Link], transfer_bytes: int) -> float:
    """Service time along a multi-hop path.

    RTTs add; the transfer is charged once, at the path's bottleneck
    bandwidth (the model streams, it does not store-and-forward) — the
    generalization of :meth:`LatencyModel.miss_latency`, whose
    client+origin path bottlenecks at the origin link.  Summation is
    left-to-right so a one- or two-link path reproduces the
    single-cache model's floats exactly.
    """
    rtt = 0.0
    bottleneck = float("inf")
    for link in links:
        rtt += link.rtt
        if link.bandwidth < bottleneck:
            bottleneck = link.bandwidth
    return rtt + transfer_bytes / bottleneck


@dataclass(frozen=True)
class LatencyModel:
    """First-order service-time model.

    * hit:  ``hit_rtt`` + size / ``proxy_bandwidth`` (client↔proxy);
    * miss: ``hit_rtt`` + ``origin_rtt`` + size / ``origin_bandwidth``
      (the proxy must fetch before it can serve).

    Defaults sketch a 2001 institutional setup: 5 ms to the proxy on a
    10 Mbit/s LAN; 70 ms and 1.5 Mbit/s to origins.

    The hard-coded proxy/origin pair is the two-link special case of
    :func:`path_latency`; :meth:`from_links` builds the model from
    explicit :class:`Link` hops and :attr:`client_link` /
    :attr:`origin_link` recover them, which is how the cache-network
    engine shares one latency vocabulary with the single-cache path.
    """

    hit_rtt: float = 0.005
    origin_rtt: float = 0.070
    proxy_bandwidth: float = 1_250_000.0     # bytes/second
    origin_bandwidth: float = 187_500.0

    def __post_init__(self) -> None:
        for name in ("hit_rtt", "origin_rtt", "proxy_bandwidth",
                     "origin_bandwidth"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @classmethod
    def from_links(cls, client: Link, origin: Link) -> "LatencyModel":
        """Build the single-cache model from its two hops."""
        return cls(hit_rtt=client.rtt, origin_rtt=origin.rtt,
                   proxy_bandwidth=client.bandwidth,
                   origin_bandwidth=origin.bandwidth)

    @property
    def client_link(self) -> Link:
        """The client↔proxy hop (the hit path)."""
        return Link(rtt=self.hit_rtt, bandwidth=self.proxy_bandwidth)

    @property
    def origin_link(self) -> Link:
        """The proxy↔origin hop (appended on misses)."""
        return Link(rtt=self.origin_rtt,
                    bandwidth=self.origin_bandwidth)

    def hit_latency(self, transfer_bytes: int) -> float:
        return self.hit_rtt + transfer_bytes / self.proxy_bandwidth

    def miss_latency(self, transfer_bytes: int) -> float:
        return (self.hit_rtt + self.origin_rtt
                + transfer_bytes / self.origin_bandwidth)


@dataclass
class LatencyMetrics:
    """Mean/total service time, overall and per type."""

    model: LatencyModel
    overall: StreamingStats = field(default_factory=StreamingStats)
    by_type: Dict[DocumentType, StreamingStats] = field(
        default_factory=lambda: {t: StreamingStats()
                                 for t in DOCUMENT_TYPES})

    def record(self, doc_type: DocumentType, hit: bool,
               transfer_bytes: int) -> None:
        latency = (self.model.hit_latency(transfer_bytes) if hit
                   else self.model.miss_latency(transfer_bytes))
        self.overall.add(latency)
        self.by_type[doc_type].add(latency)

    def mean_latency(self, doc_type: DocumentType = None) -> float:
        stats = self.overall if doc_type is None else self.by_type[doc_type]
        return stats.mean

    def total_latency(self, doc_type: DocumentType = None) -> float:
        stats = self.overall if doc_type is None else self.by_type[doc_type]
        return stats.total

    def no_cache_baseline(self) -> float:
        """Mean latency had every request gone to the origin.

        Derivable in closed form because the model is linear: replace
        each recorded latency with its miss-path value.  Computed by
        re-deriving from the recorded means would need the hit split,
        so the simulator records it directly into
        :attr:`baseline`."""
        return self.baseline.mean

    baseline: StreamingStats = field(default_factory=StreamingStats)

    def record_baseline(self, transfer_bytes: int) -> None:
        self.baseline.add(self.model.miss_latency(transfer_bytes))

    @property
    def speedup(self) -> float:
        """No-cache mean latency / achieved mean latency (≥ 1)."""
        achieved = self.overall.mean
        if not achieved or achieved != achieved:
            return 1.0
        return self.baseline.mean / achieved
