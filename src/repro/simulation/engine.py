"""The shared-pass simulation engine.

Sweeping the paper's grids costs ``O(cells × requests)`` when every
(policy, capacity) cell re-iterates the trace: trace iteration,
:class:`SizeInterpretation` resolution, and modification/staleness
reconstruction are identical across cells, yet the classic simulator
repays them per cell.  This module splits the simulator into the two
stages that actually differ in reusability:

* :class:`ReferenceStream` — the per-request *reference-stream* stage.
  It resolves each raw :class:`~repro.types.Request` into an immutable
  reference tuple ``(url, size, doc_type, transfer, raw_size,
  timestamp)`` exactly once per pass.  Resolution state (the
  :class:`~repro.trace.modification.ModificationDetector`) depends only
  on the size interpretation and tolerance — never on the cache — so
  one resolver serves every cell that shares those knobs.

* :class:`CacheCell` — one cache + policy +
  :class:`~repro.simulation.metrics.TypeMetrics` (plus optional
  occupancy/latency/cost accounting) consuming resolved references.
  Cells are independent: N of them ride the same pass, so a sweep
  costs one trace iteration instead of N.

:func:`run_cells` drives any number of cells over one pass and returns
their :class:`~repro.simulation.results.SimulationResult`\\ s in input
order, **bit-identical** to running each cell through
:class:`~repro.simulation.simulator.CacheSimulator` alone.  Identity
holds because (a) each cell still sees every reference in trace order,
(b) requested-side tallies are integers (order-independent sums), and
(c) cost accumulation — the one float — only happens in per-cell
general mode, which replays the classic per-request loop.

LRU inclusion fast path
-----------------------

A byte-bounded LRU cache is a stack algorithm whenever no reference
bypasses the cache and no resident copy is invalidated: a reference
then hits a capacity-``C`` cache **iff** its byte-weighted stack
distance plus the document size is ≤ ``C``.  (Eviction of ``d``
requires residents above ``d`` plus the incoming document to exceed
``C − size(d)``, and all of those are intervening distinct documents;
conversely at a hit every intervening document is resident above
``d``.)  Under those preconditions — ``TRUSTED`` sizes, per-URL sizes
stable across the trace, every document no larger than the capacity,
no TTL model, and plain LRU with no extra accounting — the entire LRU
capacity ladder is served by **one**
:func:`repro.analysis.stack_distance.stack_distances` pass, with exact
hit/eviction counts.  Cells that fail any precondition silently fall
back to ordinary simulation in the shared pass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import islice
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.cache import Cache
from repro.core.gdstar import GDStarPolicy
from repro.core.lru import LRUPolicy
from repro.core.policy import AccessOutcome, ReplacementPolicy
from repro.core.registry import make_policy
from repro.errors import ConfigurationError, SimulationError
from repro.observability.events import emit
from repro.observability.logs import get_logger
from repro.observability.metrics import get_registry
from repro.observability.profiling import PhaseTimings, phase_timer
from repro.observability.trace import span as _span
from repro.simulation.freshness import FreshnessTracker, TTLModel
from repro.simulation.metrics import TypeMetrics
from repro.simulation.occupancy import OccupancyTracker
from repro.simulation.results import SimulationResult
from repro.trace.modification import ModificationDetector, ModificationPolicy
from repro.types import DOCUMENT_TYPES, DocumentType, Request, Trace

_logger = get_logger("simulation")

#: Requests resolved per chunk of the shared pass.  Chunks amortize the
#: per-slice overhead while keeping the resolved tuples cache-warm for
#: every cell that consumes them.
DEFAULT_CHUNK_SIZE = 4096


class SizeInterpretation(enum.Enum):
    """How request sizes are turned into document sizes."""

    TRUSTED = "trusted"
    PAPER_RULE = "paper-rule"
    ANY_CHANGE = "any-change"


@dataclass
class SimulationConfig:
    """Knobs for one simulation run.

    Attributes:
        capacity_bytes: Cache capacity.
        policy: Policy name (see :mod:`repro.core.registry`) or a
            ready-built policy instance.
        warmup_fraction: Leading fraction of requests that fill the
            cache without being measured (paper: 10 %).
        size_interpretation: See :mod:`repro.simulation.simulator`.
        occupancy_interval: Sample per-type occupancy every N requests;
            0 disables tracking.
        modification_tolerance: The 5 % threshold of the paper rule.
        ttl_model: Optional per-type freshness lifetimes; a resident
            copy older than its TTL (in trace time) is invalidated and
            the reference counts as a miss.  None (the default, and
            the paper's methodology) never expires documents.
    """

    capacity_bytes: int
    policy: Union[str, ReplacementPolicy] = "lru"
    warmup_fraction: float = 0.10
    size_interpretation: SizeInterpretation = SizeInterpretation.TRUSTED
    occupancy_interval: int = 0
    modification_tolerance: float = 0.05
    ttl_model: Optional[TTLModel] = None
    #: When set, per-request retrieval costs under this model are
    #: accumulated so results expose ``cost_savings_ratio`` — the
    #: objective a Greedy-Dual policy under the same model maximizes.
    report_cost_model: Optional[object] = None
    #: When set, per-request service times under this model are
    #: accumulated; the result carries a
    #: :class:`~repro.simulation.latency.LatencyMetrics`.
    latency_model: Optional[object] = None

    def validate(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if self.occupancy_interval < 0:
            raise ConfigurationError("occupancy_interval must be >= 0")


# ----- stage (a): the reference stream --------------------------------------


class _TrustedResolver:
    """Believes the request's ``size``/``transfer_size`` split."""

    detector: Optional[ModificationDetector] = None

    def resolve(self, requests: Sequence[Request]) -> list:
        out = []
        append = out.append
        for r in requests:
            size = r.size
            t = r.transfer_size
            append((r.url, size, r.doc_type,
                    t if t < size else size, size, r.timestamp))
        return out

    def resolve_one(self, r: Request) -> tuple:
        size = r.size
        t = r.transfer_size
        return (r.url, size, r.doc_type,
                t if t < size else size, size, r.timestamp)


class _DetectorResolver:
    """Reconstructs document sizes from the logged transfer sizes."""

    def __init__(self, policy: ModificationPolicy, tolerance: float):
        self.detector = ModificationDetector(tolerance=tolerance,
                                             policy=policy)

    def resolve(self, requests: Sequence[Request]) -> list:
        observe = self.detector.observe
        out = []
        append = out.append
        for r in requests:
            raw = r.size
            t = r.transfer_size
            append((r.url, observe(r.url, t).document_size, r.doc_type,
                    t if t < raw else raw, raw, r.timestamp))
        return out

    def resolve_one(self, r: Request) -> tuple:
        raw = r.size
        t = r.transfer_size
        return (r.url, self.detector.observe(r.url, t).document_size,
                r.doc_type, t if t < raw else raw, raw, r.timestamp)


def make_resolver(config: SimulationConfig):
    """Build the resolver a config's size interpretation calls for."""
    interp = config.size_interpretation
    if interp is SizeInterpretation.TRUSTED:
        return _TrustedResolver()
    policy = (ModificationPolicy.PAPER
              if interp is SizeInterpretation.PAPER_RULE
              else ModificationPolicy.ANY_CHANGE)
    return _DetectorResolver(policy, config.modification_tolerance)


class ReferenceStream:
    """Resolves raw requests into reference tuples once per pass.

    Resolution state is keyed by ``(interpretation, tolerance)``: every
    cell sharing those knobs consumes the same resolved chunk, so the
    modification detector runs once regardless of how many cells ride
    the pass.
    """

    def __init__(self):
        self._resolvers: Dict[tuple, object] = {}

    @staticmethod
    def resolver_key(config: SimulationConfig) -> tuple:
        interp = config.size_interpretation
        if interp is SizeInterpretation.TRUSTED:
            return ("trusted",)
        return (interp.value, config.modification_tolerance)

    def resolver(self, config: SimulationConfig):
        key = self.resolver_key(config)
        resolver = self._resolvers.get(key)
        if resolver is None:
            resolver = make_resolver(config)
            self._resolvers[key] = resolver
        return resolver


# ----- stage (b): cache cells -----------------------------------------------


class CacheCell:
    """One cache + policy + metrics consuming resolved references.

    A cell is the per-configuration remainder of the old monolithic
    simulator: it owns the cache, the policy, the metrics, and the
    optional occupancy/latency/cost/freshness accounting, but not the
    trace walk or size resolution — those arrive pre-resolved via
    :meth:`process_chunk`.

    Cells with no per-request extras (cost model, latency model,
    occupancy sampling, TTL freshness) run in *deferred* mode: the hot
    loop counts hits only, and the requested-side totals — identical
    for every cell sharing a warmup boundary — are merged in at
    :meth:`finalize`.  Integer totals make the merge exact, so deferred
    results equal the per-request accounting bit for bit.
    """

    def __init__(self, config: SimulationConfig, cache=None):
        """``cache`` overrides the config's capacity/policy pair with a
        prebuilt cache-compatible object (e.g. a
        :class:`~repro.core.partitioned.PartitionedCache`)."""
        config.validate()
        self.config = config
        if cache is not None:
            self.cache = cache
            self.policy = getattr(cache, "policy", None)
        else:
            if isinstance(config.policy, ReplacementPolicy):
                self.policy = config.policy
            else:
                self.policy = make_policy(config.policy)
            self.cache = Cache(config.capacity_bytes, self.policy)
        self.metrics = TypeMetrics()
        self.occupancy: Optional[OccupancyTracker] = None
        if config.occupancy_interval:
            self.occupancy = OccupancyTracker(config.occupancy_interval)
        self._freshness: Optional[FreshnessTracker] = None
        if config.ttl_model is not None:
            self._freshness = FreshnessTracker(config.ttl_model)
        self.latency = None
        if config.latency_model is not None:
            from repro.simulation.latency import LatencyMetrics
            self.latency = LatencyMetrics(model=config.latency_model)
        self._cost_model = config.report_cost_model
        self._warmup = 0
        self._deferred = False
        self._hit_overall = [0, 0]
        self._hit_by_type: Dict[DocumentType, list] = {}
        self._evictions_override: Optional[int] = None

    # -- pass protocol ----------------------------------------------------

    @property
    def fast(self) -> bool:
        """True when the cell needs no per-request extras and can run
        the deferred hits-only hot loop."""
        return (self._cost_model is None and self.latency is None
                and self.occupancy is None and self._freshness is None)

    @property
    def deferred(self) -> bool:
        return self._deferred

    def begin_run(self, warmup_requests: int, deferred: bool) -> None:
        """Arm the cell for one pass with an absolute warmup count."""
        self._warmup = warmup_requests
        self._deferred = deferred and self.fast
        self._evictions_override = None
        if self._deferred:
            self._hit_overall = [0, 0]
            self._hit_by_type = {t: [0, 0] for t in DOCUMENT_TYPES}

    def process_chunk(self, chunk: Sequence[tuple], start: int) -> None:
        """Consume resolved references for positions ``start+1 ..
        start+len(chunk)`` (positions are 1-based)."""
        if not self._deferred:
            position = start
            process_one = self.process_one
            for ref in chunk:
                position += 1
                process_one(ref, position)
            return
        reference = self.cache.reference
        w_end = self._warmup - start
        if w_end > 0:
            if w_end >= len(chunk):
                for url, size, doc_type, _t, _raw, _ts in chunk:
                    reference(url, size, doc_type)
                return
            for url, size, doc_type, _t, _raw, _ts in chunk[:w_end]:
                reference(url, size, doc_type)
            tail = chunk[w_end:]
        else:
            tail = chunk
        hit_outcome = AccessOutcome.HIT
        overall = self._hit_overall
        by_type = self._hit_by_type
        for url, size, doc_type, transfer, _raw, _ts in tail:
            if reference(url, size, doc_type) is hit_outcome:
                overall[0] += 1
                overall[1] += transfer
                bucket = by_type[doc_type]
                bucket[0] += 1
                bucket[1] += transfer

    def process_chunk_hinted(self, chunk: Sequence[tuple], start: int,
                             costs: Sequence[float]) -> None:
        """Deferred hot loop with per-reference Greedy-Dual key costs.

        ``costs[j]`` is the policy cost model's cost of ``chunk[j]``'s
        clamped size, precomputed as one array op by the columnar
        engine; the policy consumes it through its ``_hint_cost`` slot
        instead of recomputing ``cost_model.cost(size)`` per reference.
        Only the columnar driver calls this, and only on deferred cells
        whose policy advertises the slot.
        """
        reference = self.cache.reference
        policy = self.policy
        w_end = self._warmup - start
        hit_outcome = AccessOutcome.HIT
        overall = self._hit_overall
        by_type = self._hit_by_type
        j = 0
        try:
            for url, size, doc_type, transfer, _raw, _ts in chunk:
                policy._hint_cost = costs[j]
                outcome = reference(url, size, doc_type)
                if j >= w_end and outcome is hit_outcome:
                    overall[0] += 1
                    overall[1] += transfer
                    bucket = by_type[doc_type]
                    bucket[0] += 1
                    bucket[1] += transfer
                j += 1
        finally:
            policy._hint_cost = None

    def process_one(self, ref: tuple, position: int) -> AccessOutcome:
        """Full per-request path: freshness, reference, accounting."""
        url, size, doc_type, transfer, raw_size, timestamp = ref
        cache = self.cache
        freshness = self._freshness
        if freshness is not None and url in cache:
            if freshness.expired(url, doc_type, timestamp):
                cache.invalidate(url)
        outcome = cache.reference(url, size, doc_type)
        if freshness is not None and outcome is not AccessOutcome.HIT:
            freshness.on_fetch(url, timestamp)
        if position > self._warmup:
            hit = outcome is AccessOutcome.HIT
            cost = (self._cost_model.cost(raw_size)
                    if self._cost_model is not None else 0.0)
            self.metrics.record(doc_type, hit, transfer, cost)
            if self.latency is not None:
                self.latency.record(doc_type, hit, transfer)
                self.latency.record_baseline(transfer)
        if self.occupancy is not None:
            self.occupancy.maybe_sample(cache, position)
        return outcome

    def finalize(self, trace_name: str, total_requests: int,
                 requested: Optional[Dict[DocumentType, list]] = None,
                 warmup: Optional[int] = None) -> SimulationResult:
        """Fold deferred tallies into the metrics and build the result.

        ``requested`` carries the shared requested-side totals for this
        cell's warmup boundary (deferred mode only).
        """
        if self._deferred:
            if requested is None:
                raise SimulationError(
                    "deferred cell finalized without requested totals")
            requests_total = 0
            bytes_total = 0
            by_type = self.metrics.by_type
            for doc_type, (count, nbytes) in requested.items():
                acc = by_type[doc_type]
                acc.requests += count
                acc.requested_bytes += nbytes
                hits = self._hit_by_type[doc_type]
                acc.hits += hits[0]
                acc.hit_bytes += hits[1]
                requests_total += count
                bytes_total += nbytes
            overall = self.metrics.overall
            overall.requests += requests_total
            overall.requested_bytes += bytes_total
            overall.hits += self._hit_overall[0]
            overall.hit_bytes += self._hit_overall[1]
            self._deferred = False
        final_beta = None
        if isinstance(self.policy, GDStarPolicy):
            final_beta = self.policy.beta
        policy_name = (self.policy.name if self.policy is not None
                       else type(self.cache).__name__.lower())
        ttl_expiries = (self._freshness.expiries
                        if self._freshness is not None else None)
        evictions = (self._evictions_override
                     if self._evictions_override is not None
                     else self.cache.evictions)
        return SimulationResult(
            policy=policy_name,
            capacity_bytes=self.config.capacity_bytes,
            trace_name=trace_name,
            total_requests=total_requests,
            warmup_requests=self._warmup if warmup is None else warmup,
            metrics=self.metrics,
            occupancy=self.occupancy,
            evictions=evictions,
            invalidations=self.cache.invalidations,
            bypasses=self.cache.bypasses,
            final_beta=final_beta,
            ttl_expiries=ttl_expiries,
            latency=self.latency,
        )


# ----- the shared pass ------------------------------------------------------


def _new_requested_totals() -> Dict[DocumentType, list]:
    return {t: [0, 0] for t in DOCUMENT_TYPES}


def _accumulate_requested(raw_chunk: Sequence[Request], start: int,
                          boundaries: Dict[int, Dict[DocumentType, list]],
                          ) -> None:
    """Tally measured requests/bytes per type for each warmup boundary.

    Requested-side totals depend only on the raw requests (transfer is
    ``min(transfer_size, size)`` regardless of size interpretation), so
    one tally per distinct warmup boundary serves every deferred cell.
    """
    n = len(raw_chunk)
    for boundary, totals in boundaries.items():
        measured_from = boundary - start
        if measured_from >= n:
            continue
        part = raw_chunk if measured_from <= 0 else raw_chunk[measured_from:]
        for r in part:
            size = r.size
            t = r.transfer_size
            bucket = totals[r.doc_type]
            bucket[0] += 1
            bucket[1] += t if t < size else size


def drive_pass(requests: Sequence[Request], offset: int,
               groups: Sequence[Tuple[object, List[CacheCell]]],
               boundaries: Optional[Dict[int, Dict[DocumentType, list]]],
               chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
    """Feed ``requests`` (absolute positions starting at ``offset``)
    through each resolver group's cells, chunk by chunk."""
    n = len(requests)
    for start in range(0, n, chunk_size):
        raw = requests[start:start + chunk_size]
        absolute_start = offset + start
        for resolver, cell_list in groups:
            chunk = resolver.resolve(raw)
            for cell in cell_list:
                cell.process_chunk(chunk, absolute_start)
        if boundaries:
            _accumulate_requested(raw, absolute_start, boundaries)


def drive_pass_streaming(request_iter: Iterator[Request],
                         groups: Sequence[Tuple[object, List[CacheCell]]],
                         boundaries: Optional[Dict[int, Dict[DocumentType,
                                                             list]]],
                         chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Feed a lazily decoded request stream through the cells.

    The bounded-memory sibling of :func:`drive_pass`: only one chunk of
    raw requests (plus its resolved tuples) is alive at a time, so a
    multi-million-request trace file drives N cells without ever being
    materialized.  Returns the number of requests consumed.
    """
    offset = 0
    while True:
        raw = list(islice(request_iter, chunk_size))
        if not raw:
            return offset
        for resolver, cell_list in groups:
            chunk = resolver.resolve(raw)
            for cell in cell_list:
                cell.process_chunk(chunk, offset)
        if boundaries:
            _accumulate_requested(raw, offset, boundaries)
        offset += len(raw)


def _lru_ladder_split(requests: Sequence[Request],
                      cells: Sequence[CacheCell],
                      ) -> Tuple[List[CacheCell], List[CacheCell]]:
    """Partition cells into (ladder, ordinary) for the LRU fast path.

    Config-side preconditions: plain LRU, TRUSTED sizes, deferred mode
    (no cost/latency/occupancy/TTL accounting).  Trace-side: every URL
    keeps one size across the trace and no document exceeds the cell's
    capacity (so no bypasses, no invalidations — the regime where
    byte-bounded LRU obeys inclusion exactly).
    """
    candidates = [
        cell for cell in cells
        if (cell.deferred
            and type(cell.policy) is LRUPolicy
            and type(cell.cache) is Cache
            and (cell.config.size_interpretation
                 is SizeInterpretation.TRUSTED))
    ]
    if not candidates:
        return [], list(cells)
    sizes: Dict[str, int] = {}
    max_size = 0
    stable = True
    for r in requests:
        size = r.size
        previous = sizes.get(r.url)
        if previous is None:
            sizes[r.url] = size
            if size > max_size:
                max_size = size
        elif previous != size:
            stable = False
            break
    if not stable:
        return [], list(cells)
    ladder = [cell for cell in candidates
              if cell.config.capacity_bytes >= max_size]
    if not ladder:
        return [], list(cells)
    excluded = set(map(id, ladder))
    ordinary = [cell for cell in cells if id(cell) not in excluded]
    return ladder, ordinary


def _run_lru_ladder(requests: Sequence[Request],
                    cells: Sequence[CacheCell]) -> None:
    """Serve every eligible LRU cell from one stack-distance pass.

    Hits: a reference hits capacity ``C`` iff byte-weighted stack
    distance + document size ≤ ``C`` (exact under the preconditions
    checked by :func:`_lru_ladder_split`).  Evictions: admissions equal
    misses (every miss admits — nothing bypasses), so evictions =
    misses − residents at end of trace; the final resident set falls
    out of the last-reference recency order.
    """
    from repro.analysis.stack_distance import stack_distances

    distances = stack_distances(requests, byte_weighted=True)
    capacities = [cell.config.capacity_bytes for cell in cells]
    warmups = [cell._warmup for cell in cells]
    overalls = [cell._hit_overall for cell in cells]
    by_types = [cell._hit_by_type for cell in cells]
    total_hits = [0] * len(cells)
    indices = range(len(cells))
    position = 0
    for request, distance in zip(requests, distances):
        position += 1
        size = request.size
        t = request.transfer_size
        transfer = t if t < size else size
        needed = distance + size
        doc_type = request.doc_type
        for i in indices:
            if needed <= capacities[i]:
                total_hits[i] += 1
                if position > warmups[i]:
                    overall = overalls[i]
                    overall[0] += 1
                    overall[1] += transfer
                    bucket = by_types[i][doc_type]
                    bucket[0] += 1
                    bucket[1] += transfer
    last: Dict[str, tuple] = {}
    for p, r in enumerate(requests):
        last[r.url] = (p, r.size)
    residents = [0] * len(cells)
    max_capacity = max(capacities) if capacities else 0
    cumulative = 0
    for _, size in sorted(last.values(), key=lambda item: -item[0]):
        if cumulative > max_capacity:
            break
        for i in indices:
            if cumulative + size <= capacities[i]:
                residents[i] += 1
        cumulative += size
    total = len(requests)
    for i, cell in enumerate(cells):
        admissions = total - total_hits[i]
        cell._evictions_override = admissions - residents[i]


def run_cells(trace: Union[Trace, Sequence[Request], Iterable[Request]],
              configs: Sequence[Union[SimulationConfig, CacheCell]],
              trace_name: Optional[str] = None,
              chunk_size: int = DEFAULT_CHUNK_SIZE,
              lru_fast_path: bool = True,
              timings: Optional[PhaseTimings] = None,
              total_requests: Optional[int] = None,
              ) -> List[SimulationResult]:
    """Run every cell over the trace in **one shared pass**.

    Args:
        trace: The driving workload — a :class:`~repro.types.Trace`, a
            request sequence, or (with ``total_requests``) a lazy
            iterator such as :func:`repro.trace.pipeline.iter_trace`,
            consumed chunk-wise with bounded memory.
        configs: One :class:`SimulationConfig` (or prebuilt
            :class:`CacheCell`) per cell.
        trace_name: Overrides the trace's name in the results.
        chunk_size: Requests resolved per chunk.
        lru_fast_path: Allow eligible plain-LRU cells to be served by
            the single-pass stack-distance ladder (materialized traces
            only; streaming passes always simulate every cell).
        timings: Optional :class:`PhaseTimings` to record pass phases
            into ("pass", "lru_ladder", "aggregate").
        total_requests: Declared stream length, required to place the
            warm-up boundaries before the pass starts.  An iterator
            without it is materialized first.  The pass raises
            :class:`~repro.errors.SimulationError` if the stream
            disagrees with the declared length.

    Returns results in input order, bit-identical to running each
    config through :class:`~repro.simulation.simulator.CacheSimulator`.
    """
    if getattr(trace, "is_columnar", False):
        from repro.simulation.vectorized import run_cells_columnar

        return run_cells_columnar(
            trace, configs, trace_name=trace_name,
            chunk_size=chunk_size, lru_fast_path=lru_fast_path,
            timings=timings, total_requests=total_requests)
    requests = trace.requests if isinstance(trace, Trace) else trace
    streaming = not isinstance(requests, (list, tuple))
    if streaming and total_requests is None:
        requests = list(requests)
        streaming = False
    name = trace_name or getattr(trace, "name", "trace")
    total = total_requests if streaming else len(requests)
    cells: List[CacheCell] = []
    for config in configs:
        cell = config if isinstance(config, CacheCell) else CacheCell(config)
        cells.append(cell)
    for cell in cells:
        warmup = int(total * cell.config.warmup_fraction)
        cell.begin_run(warmup, deferred=True)
    if timings is None:
        timings = PhaseTimings()
    emit("pass_started", cells=len(cells), requests=total)
    pass_span = _span("pass", cells=len(cells), requests=total,
                      trace=name, streaming=streaming)
    with pass_span:
        if lru_fast_path and not streaming:
            ladder, ordinary = _lru_ladder_split(requests, cells)
        else:
            ladder, ordinary = [], list(cells)
        pass_span.set_attribute("lru_fast_path_cells", len(ladder))
        stream = ReferenceStream()
        grouped: Dict[tuple, Tuple[object, List[CacheCell]]] = {}
        for cell in ordinary:
            key = stream.resolver_key(cell.config)
            if key not in grouped:
                grouped[key] = (stream.resolver(cell.config), [])
            grouped[key][1].append(cell)
        boundaries: Dict[int, Dict[DocumentType, list]] = {}
        for cell in cells:
            if cell.deferred and cell._warmup not in boundaries:
                boundaries[cell._warmup] = _new_requested_totals()
        with _span("drive"), phase_timer("pass", timings):
            if streaming:
                seen = drive_pass_streaming(iter(requests),
                                            list(grouped.values()),
                                            boundaries, chunk_size)
                if seen != total:
                    raise SimulationError(
                        f"trace stream yielded {seen} requests but "
                        f"total_requests={total} was declared; warm-up "
                        "boundaries would be wrong")
            else:
                drive_pass(requests, 0, list(grouped.values()),
                           boundaries, chunk_size)
        if ladder:
            with _span("lru_ladder", cells=len(ladder)), \
                    phase_timer("lru_ladder", timings):
                _run_lru_ladder(requests, ladder)
        with _span("aggregate"), phase_timer("aggregate", timings):
            results = [cell.finalize(name, total,
                                     boundaries.get(cell._warmup))
                       for cell in cells]
    _publish_pass_telemetry(results, timings, len(cells), len(ladder),
                            total)
    return results


def _publish_pass_telemetry(results: Sequence[SimulationResult],
                            timings: PhaseTimings, n_cells: int,
                            n_ladder: int, total_requests: int,
                            n_fifo: int = 0) -> None:
    """Batch one pass's aggregates into the metrics registry — one
    update per pass, never one per request or per cell."""
    registry = get_registry()
    if registry.enabled:
        registry.counter("engine_passes_total").inc()
        registry.histogram("engine_cells_per_pass").observe(n_cells)
        if n_ladder:
            registry.counter("engine_lru_fast_path_cells_total").inc(
                n_ladder)
        registry.counter("engine_pass_requests_total").inc(total_requests)
        for phase, seconds in timings.as_dict().items():
            registry.histogram("engine_phase_seconds",
                               phase=phase).observe(seconds)
    emit("pass_finished", cells=n_cells, requests=total_requests,
         duration_seconds=round(timings.total, 6),
         lru_fast_path_cells=n_ladder, fifo_fast_path_cells=n_fifo)
    _logger.debug(
        "shared pass: %d cells (%d via LRU ladder) over %d requests "
        "in %.3fs", n_cells, n_ladder, total_requests, timings.total,
        extra={"cells": n_cells, "lru_fast_path_cells": n_ladder,
               "requests": total_requests,
               "phase_seconds": {k: round(v, 6)
                                 for k, v in timings.as_dict().items()}})
