"""Array-backed shared pass over columnar traces.

:func:`run_cells_columnar` is the columnar twin of
:func:`repro.simulation.engine.run_cells`: it drives any number of
:class:`~repro.simulation.engine.CacheCell`\\ s over one
:class:`~repro.trace.columnar.ColumnarTrace` and returns results
**bit-identical** to the object path.  The speed comes from moving
every per-request computation that does not touch cache state into
column operations:

* **resolution** — size-interpretation reconstruction
  (:class:`ColumnarReferenceStream`) runs as array ops: ``TRUSTED`` is
  the size column itself, ``ANY_CHANGE`` the transfer column, and the
  paper rule falls back to the scalar recurrence only for the (rare)
  documents whose logged sizes actually vary;
* **requested-side tallies** — the per-warmup-boundary totals deferred
  cells merge at finalize are masked integer column sums;
* **the LRU ladder** — byte-weighted stack distances feed vectorized
  per-capacity hit counting, per-type tallies, and final-resident
  counting, replacing the per-request × per-cell inner loop;
* **FIFO** — a shadow recency-free queue replays
  :meth:`~repro.core.cache.Cache.reference` exactly, without entry or
  heap machinery;
* **Greedy-Dual keys** — the cost-model term of ``H(p)`` is
  precomputed per chunk (:meth:`~repro.core.cost.CostModel.cost_array`)
  and consumed through the policies' ``_hint_cost`` slot.

Cells that fit no fast path consume ordinary resolved-tuple chunks via
:meth:`CacheCell.process_chunk`, decoded once per chunk from the mmap.

Bit-identity caveat: array float ops round ``int64 → float64`` before
dividing where the scalar path divides exact integers, so identity is
guaranteed for sizes and capacities below 2**53 bytes — far above any
real trace.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache import Cache
from repro.core.cost import ByteCost, ConstantCost, LatencyCost, PacketCost
from repro.core.fifo import FIFOPolicy
from repro.core.gds import GDSPolicy
from repro.core.gdsf import GDSFPolicy
from repro.core.gdstar import GDStarPolicy
from repro.core.lru import LRUPolicy
from repro.errors import SimulationError
from repro.observability.events import emit
from repro.observability.logs import get_logger
from repro.observability.metrics import get_registry
from repro.observability.profiling import PhaseTimings, phase_timer
from repro.observability.trace import span as _span
from repro.simulation.engine import (
    DEFAULT_CHUNK_SIZE,
    CacheCell,
    ReferenceStream,
    SimulationConfig,
    SizeInterpretation,
    _new_requested_totals,
    _publish_pass_telemetry,
)
from repro.simulation.results import SimulationResult
from repro.structures.fenwick import FenwickTree
from repro.types import DOCUMENT_TYPES, DocumentType

_logger = get_logger("simulation.vectorized")

#: int64 sums whose worst-case magnitude reaches this bound fall back
#: to exact python-int accumulation.
_SUM_GUARD = 1 << 62


def _exact_sum(values: np.ndarray) -> int:
    """Exact integer sum of an int64 array, immune to silent overflow."""
    count = int(values.size)
    if count == 0:
        return 0
    peak = int(values.max())
    if peak <= 0 or count * peak < _SUM_GUARD:
        return int(values.sum(dtype=np.int64))
    return sum(values.tolist())


# ----- vectorized size resolution -------------------------------------------


def _resolve_paper(trace, tolerance: float) -> np.ndarray:
    """Paper-rule document sizes as a column.

    Documents whose logged transfer size never changes resolve to that
    size (first/unchanged/within-tolerance all emit the logged value);
    only documents with varying logged sizes replay the
    :class:`~repro.trace.modification.ModificationDetector` recurrence,
    scalar per group, preserving its arithmetic — including the
    ``ZeroDivisionError`` a zero previous size raises.
    """
    doc = trace.doc_ids
    logged = trace.transfers
    out = np.array(logged, dtype=np.int64)
    n = len(doc)
    if n == 0:
        return out
    order = np.argsort(doc, kind="stable")
    d_s = doc[order]
    t_s = logged[order]
    same_doc = d_s[1:] == d_s[:-1]
    changed = same_doc & (t_s[1:] != t_s[:-1])
    if not bool(changed.any()):
        return out
    unstable = np.unique(d_s[1:][changed])
    member = np.isin(d_s, unstable)
    idx = order[member]          # original positions, per doc, trace order
    group_doc = d_s[member]
    starts = np.flatnonzero(
        np.concatenate(([True], group_doc[1:] != group_doc[:-1])))
    ends = np.append(starts[1:], len(group_doc))
    idx_list = idx.tolist()
    logged_list = logged.tolist()
    for g in range(len(starts)):
        previous: Optional[int] = None
        for k in range(int(starts[g]), int(ends[g])):
            position = idx_list[k]
            size = logged_list[position]
            if previous is None:
                previous = size
            elif size != previous:
                delta = abs(size - previous) / previous
                if delta < tolerance or size > previous:
                    previous = size
                # else: interrupted transfer; the belief stays put.
            out[position] = previous
    return out


class ColumnarReferenceStream:
    """Resolves size-interpretation columns once per pass.

    The columnar sibling of
    :class:`~repro.simulation.engine.ReferenceStream`: resolution state
    is keyed by ``(interpretation, tolerance)`` and memoized, so every
    cell sharing those knobs reads the same resolved column.
    """

    def __init__(self, trace):
        self.trace = trace
        self._resolved: Dict[tuple, np.ndarray] = {}
        self._transfers: Optional[np.ndarray] = None

    @property
    def transfers_clamped(self) -> np.ndarray:
        """``min(transfer, raw size)`` — the tuple transfer column."""
        if self._transfers is None:
            self._transfers = np.minimum(self.trace.transfers,
                                         self.trace.sizes)
        return self._transfers

    def resolved_sizes(self, key: tuple) -> np.ndarray:
        column = self._resolved.get(key)
        if column is None:
            column = self._resolve(key)
            self._resolved[key] = column
        return column

    def _resolve(self, key: tuple) -> np.ndarray:
        if key == ("trusted",):
            return self.trace.sizes
        interpretation, tolerance = key
        if interpretation == SizeInterpretation.ANY_CHANGE.value:
            # The detector's belief after any change is the logged
            # size itself, so the column resolves to the transfers.
            return self.trace.transfers
        return _resolve_paper(self.trace, tolerance)


# ----- requested-side boundary tallies --------------------------------------


def _tally_boundaries(trace, stream: ColumnarReferenceStream,
                      boundaries: Dict[int, Dict[DocumentType, list]],
                      ) -> None:
    """Measured requests/bytes per type for each warmup boundary.

    Integer masked column sums: order-independent, so exactly the
    totals the object path accumulates chunk by chunk.
    """
    codes = trace.type_codes
    transfers = stream.transfers_clamped
    for boundary, totals in boundaries.items():
        tail_codes = codes[boundary:]
        tail_transfers = transfers[boundary:]
        for code, doc_type in enumerate(DOCUMENT_TYPES):
            mask = tail_codes == code
            bucket = totals[doc_type]
            bucket[0] += int(np.count_nonzero(mask))
            bucket[1] += _exact_sum(tail_transfers[mask])


# ----- the exact all-capacities LRU ladder ----------------------------------


def _byte_stack_distances(doc_ids: np.ndarray,
                          sizes: np.ndarray) -> np.ndarray:
    """Byte-weighted LRU stack distances over id columns.

    The Fenwick loop of
    :func:`repro.analysis.stack_distance.stack_distances` verbatim —
    python-int arithmetic, ``inf`` for cold misses — keyed by document
    id instead of URL (the same partition).
    """
    n = len(doc_ids)
    out = np.empty(n, dtype=np.float64)
    if n == 0:
        return out
    tree = FenwickTree(n)
    last: Dict[int, int] = {}
    doc_list = doc_ids.tolist()
    size_list = sizes.tolist()
    for position in range(n):
        doc = doc_list[position]
        previous = last.get(doc)
        if previous is None:
            out[position] = np.inf
        else:
            out[position] = float(
                tree.range_sum(previous + 1, position - 1))
            tree.add(previous, -tree.range_sum(previous, previous))
        tree.add(position, size_list[position])
        last[doc] = position
    return out


def _ladder_split_columnar(trace, cells: Sequence[CacheCell],
                           ) -> Tuple[List[CacheCell], List[CacheCell]]:
    """Columnar twin of :func:`repro.simulation.engine._lru_ladder_split`.

    Same config-side preconditions; the trace-side per-document size
    stability scan runs as a grouped column comparison.
    """
    candidates = [
        cell for cell in cells
        if (cell.deferred
            and type(cell.policy) is LRUPolicy
            and type(cell.cache) is Cache
            and (cell.config.size_interpretation
                 is SizeInterpretation.TRUSTED))
    ]
    if not candidates:
        return [], list(cells)
    sizes = trace.sizes
    doc = trace.doc_ids
    max_size = 0
    if len(doc):
        order = np.argsort(doc, kind="stable")
        d_s = doc[order]
        s_s = sizes[order]
        same_doc = d_s[1:] == d_s[:-1]
        if bool(np.any(same_doc & (s_s[1:] != s_s[:-1]))):
            return [], list(cells)
        max_size = int(sizes.max())
    ladder = [cell for cell in candidates
              if cell.config.capacity_bytes >= max_size]
    if not ladder:
        return [], list(cells)
    excluded = set(map(id, ladder))
    ordinary = [cell for cell in cells if id(cell) not in excluded]
    return ladder, ordinary


def _run_lru_ladder_columnar(trace, stream: ColumnarReferenceStream,
                             cells: Sequence[CacheCell]) -> None:
    """Serve eligible LRU cells from one vectorized stack-distance pass.

    The stack-distance Fenwick loop stays scalar (python-int exact);
    everything downstream — per-capacity hit tests, warmup masking,
    per-type hit/byte tallies, final-resident counting — runs as
    column ops.  All tallies are integers, so the results match
    :func:`repro.simulation.engine._run_lru_ladder` exactly.
    """
    n = len(trace)
    if n == 0:
        for cell in cells:
            cell._evictions_override = 0
        return
    sizes = trace.sizes
    codes = trace.type_codes
    transfers = stream.transfers_clamped
    distances = _byte_stack_distances(trace.doc_ids, sizes)
    needed = distances + sizes
    type_masks = [codes == code for code in range(len(DOCUMENT_TYPES))]
    measured_by_warmup: Dict[int, np.ndarray] = {}
    total_hits: List[int] = []
    for cell in cells:
        hit = needed <= cell.config.capacity_bytes
        total_hits.append(int(np.count_nonzero(hit)))
        warmup = cell._warmup
        measured = measured_by_warmup.get(warmup)
        if measured is None:
            measured = np.zeros(n, dtype=bool)
            measured[warmup:] = True
            measured_by_warmup[warmup] = measured
        measured_hit = hit & measured
        overall = cell._hit_overall
        overall[0] += int(np.count_nonzero(measured_hit))
        overall[1] += _exact_sum(transfers[measured_hit])
        for code, doc_type in enumerate(DOCUMENT_TYPES):
            typed = measured_hit & type_masks[code]
            bucket = cell._hit_by_type[doc_type]
            bucket[0] += int(np.count_nonzero(typed))
            bucket[1] += _exact_sum(transfers[typed])

    # Final residents: walk last references in recency order and count
    # how many fit each capacity (prefix bytes + own size <= C).
    reversed_docs = trace.doc_ids[::-1]
    _, first_in_reversed = np.unique(reversed_docs, return_index=True)
    last_positions = (n - 1) - first_in_reversed
    descending = np.sort(last_positions)[::-1]
    last_sizes = sizes[descending].astype(np.int64)
    capacities = [cell.config.capacity_bytes for cell in cells]
    if float(last_sizes.sum(dtype=np.float64)) >= float(_SUM_GUARD):
        residents = [0] * len(cells)
        max_capacity = max(capacities)
        cumulative = 0
        for size in last_sizes.tolist():
            if cumulative > max_capacity:
                break
            for i, capacity in enumerate(capacities):
                if cumulative + size <= capacity:
                    residents[i] += 1
            cumulative += size
    else:
        prefix = np.zeros(len(last_sizes), dtype=np.int64)
        if len(last_sizes) > 1:
            prefix[1:] = np.cumsum(last_sizes[:-1], dtype=np.int64)
        fits = prefix + last_sizes
        residents = [int(np.count_nonzero(fits <= capacity))
                     for capacity in capacities]
    for i, cell in enumerate(cells):
        admissions = n - total_hits[i]
        cell._evictions_override = admissions - residents[i]


# ----- the FIFO shadow queue ------------------------------------------------


def _fifo_eligible(cell: CacheCell) -> bool:
    return (cell.deferred
            and type(cell.policy) is FIFOPolicy
            and type(cell.cache) is Cache)


def _run_fifo_cell(cell: CacheCell, doc_list: list, size_list: list,
                   code_list: list, transfer_list: list) -> None:
    """Replay :meth:`Cache.reference` for a deferred FIFO cell.

    FIFO never reorders on hits, so residency is just an insertion-
    ordered ``doc id -> size`` dict: hit iff resident at the same size,
    a size change invalidates and readmits at the queue tail, anything
    larger than the cache bypasses, and eviction pops the front until
    the newcomer fits.  Counters land on the real cache object so
    :meth:`CacheCell.finalize` reads them unchanged.
    """
    cache = cell.cache
    capacity = cache.capacity_bytes
    warmup = cell._warmup
    resident: "OrderedDict[int, int]" = OrderedDict()
    used = 0
    hits = misses = evictions = bypasses = invalidations = 0
    overall = cell._hit_overall
    by_type = cell._hit_by_type
    types = DOCUMENT_TYPES
    get = resident.get
    pop_front = resident.popitem
    index = 0
    for doc, size, code, transfer in zip(doc_list, size_list,
                                         code_list, transfer_list):
        current = get(doc)
        if current is not None and current == size:
            hits += 1
            if index >= warmup:
                overall[0] += 1
                overall[1] += transfer
                bucket = by_type[types[code]]
                bucket[0] += 1
                bucket[1] += transfer
        else:
            if current is not None:
                del resident[doc]
                used -= current
                invalidations += 1
            misses += 1
            if size > capacity:
                bypasses += 1
            else:
                while used + size > capacity:
                    _victim, victim_size = pop_front(last=False)
                    used -= victim_size
                    evictions += 1
                resident[doc] = size
                used += size
        index += 1
    cache.hits += hits
    cache.misses += misses
    cache.evictions += evictions
    cache.bypasses += bypasses
    cache.invalidations += invalidations


# ----- chunked tuple dispatch for everything else ---------------------------


def _cost_model_key(model) -> tuple:
    """Hashable identity for sharing per-chunk cost arrays."""
    kind = type(model)
    if kind is ConstantCost:
        return ("const", model.value)
    if kind is PacketCost:
        return ("packet", model.mss, model.ceil_packets)
    if kind is ByteCost:
        return ("byte",)
    if kind is LatencyCost:
        return ("latency", model.rtt_seconds, model.bandwidth)
    return ("instance", id(model))


def _hinted_model(cell: CacheCell):
    """The cell's Greedy-Dual cost model when key hinting applies."""
    if not cell.deferred or type(cell.cache) is not Cache:
        return None
    if type(cell.policy) in (GDSPolicy, GDSFPolicy, GDStarPolicy):
        return cell.policy.cost_model
    return None


def _drive_chunks(trace, stream: ColumnarReferenceStream,
                  plain: Dict[tuple, List[CacheCell]],
                  hinted: Dict[tuple, List[tuple]],
                  chunk_size: int) -> None:
    """Decode resolved-tuple chunks once and feed every consumer."""
    n = len(trace)
    keys = set(plain) | set(hinted)
    if not keys or n == 0:
        return
    urls = trace.urls()
    types = DOCUMENT_TYPES
    doc = trace.doc_ids
    codes = trace.type_codes
    transfers = stream.transfers_clamped
    raw_sizes = trace.sizes
    timestamps = trace.timestamps
    resolved = {key: stream.resolved_sizes(key) for key in keys}
    for start in range(0, n, chunk_size):
        end = min(start + chunk_size, n)
        doc_list = doc[start:end].tolist()
        code_list = codes[start:end].tolist()
        transfer_list = transfers[start:end].tolist()
        raw_list = raw_sizes[start:end].tolist()
        time_list = timestamps[start:end].tolist()
        url_chunk = [urls[d] for d in doc_list]
        type_chunk = [types[c] for c in code_list]
        cost_cache: Dict[tuple, list] = {}
        for key in keys:
            resolved_slice = resolved[key][start:end]
            chunk = list(zip(url_chunk, resolved_slice.tolist(),
                             type_chunk, transfer_list, raw_list,
                             time_list))
            for cell in plain.get(key, ()):
                cell.process_chunk(chunk, start)
            pairs = hinted.get(key)
            if pairs:
                clamped = None
                for cell, model, model_key in pairs:
                    costs = cost_cache.get((key, model_key))
                    if costs is None:
                        if clamped is None:
                            clamped = np.maximum(resolved_slice, 1)
                        costs = model.cost_array(clamped).tolist()
                        cost_cache[(key, model_key)] = costs
                    cell.process_chunk_hinted(chunk, start, costs)


# ----- the columnar pass ----------------------------------------------------


def run_cells_columnar(trace,
                       configs: Sequence[Union[SimulationConfig,
                                               CacheCell]],
                       trace_name: Optional[str] = None,
                       chunk_size: int = DEFAULT_CHUNK_SIZE,
                       lru_fast_path: bool = True,
                       timings: Optional[PhaseTimings] = None,
                       total_requests: Optional[int] = None,
                       ) -> List[SimulationResult]:
    """Run every cell over a columnar trace in one array-backed pass.

    The columnar counterpart of
    :func:`repro.simulation.engine.run_cells` (which dispatches here
    when handed a :class:`~repro.trace.columnar.ColumnarTrace`):
    identical arguments, identical telemetry, bit-identical results.
    """
    n = len(trace)
    if total_requests is not None and total_requests != n:
        raise SimulationError(
            f"columnar trace holds {n} requests but "
            f"total_requests={total_requests} was declared")
    name = trace_name or trace.name
    cells: List[CacheCell] = []
    for config in configs:
        cell = config if isinstance(config, CacheCell) else CacheCell(config)
        cells.append(cell)
    for cell in cells:
        warmup = int(n * cell.config.warmup_fraction)
        cell.begin_run(warmup, deferred=True)
    if timings is None:
        timings = PhaseTimings()
    emit("pass_started", cells=len(cells), requests=n)
    pass_span = _span("pass", cells=len(cells), requests=n, trace=name,
                      streaming=False, columnar=True)
    with pass_span:
        stream = ColumnarReferenceStream(trace)
        if lru_fast_path:
            ladder, rest = _ladder_split_columnar(trace, cells)
        else:
            ladder, rest = [], list(cells)
        pass_span.set_attribute("lru_fast_path_cells", len(ladder))
        fifo = [cell for cell in rest if _fifo_eligible(cell)]
        fifo_ids = set(map(id, fifo))
        pass_span.set_attribute("fifo_fast_path_cells", len(fifo))
        plain: Dict[tuple, List[CacheCell]] = {}
        hinted: Dict[tuple, List[tuple]] = {}
        for cell in rest:
            if id(cell) in fifo_ids:
                continue
            key = ReferenceStream.resolver_key(cell.config)
            model = _hinted_model(cell)
            if model is not None:
                hinted.setdefault(key, []).append(
                    (cell, model, _cost_model_key(model)))
            else:
                plain.setdefault(key, []).append(cell)
        boundaries: Dict[int, Dict[DocumentType, list]] = {}
        for cell in cells:
            if cell.deferred and cell._warmup not in boundaries:
                boundaries[cell._warmup] = _new_requested_totals()
        with _span("resolve"), phase_timer("resolve", timings):
            for cell in cells:
                stream.resolved_sizes(
                    ReferenceStream.resolver_key(cell.config))
            if boundaries:
                _tally_boundaries(trace, stream, boundaries)
        with _span("drive"), phase_timer("pass", timings):
            _drive_chunks(trace, stream, plain, hinted, chunk_size)
            if fifo:
                doc_list = trace.doc_ids.tolist()
                code_list = trace.type_codes.tolist()
                transfer_list = stream.transfers_clamped.tolist()
                for cell in fifo:
                    key = ReferenceStream.resolver_key(cell.config)
                    size_list = stream.resolved_sizes(key).tolist()
                    _run_fifo_cell(cell, doc_list, size_list,
                                   code_list, transfer_list)
        if ladder:
            with _span("lru_ladder", cells=len(ladder)), \
                    phase_timer("lru_ladder", timings):
                _run_lru_ladder_columnar(trace, stream, ladder)
        with _span("aggregate"), phase_timer("aggregate", timings):
            results = [cell.finalize(name, n,
                                     boundaries.get(cell._warmup))
                       for cell in cells]
    _publish_pass_telemetry(results, timings, len(cells), len(ladder), n,
                            n_fifo=len(fifo))
    registry = get_registry()
    if registry.enabled:
        registry.counter("engine_columnar_passes_total").inc()
        if fifo:
            registry.counter(
                "engine_fifo_fast_path_cells_total").inc(len(fifo))
    _logger.debug(
        "columnar pass: %d cells (%d ladder, %d fifo) over %d requests",
        len(cells), len(ladder), len(fifo), n,
        extra={"cells": len(cells), "lru_fast_path_cells": len(ladder),
               "fifo_fast_path_cells": len(fifo), "requests": n})
    return results
