"""Per-type cache occupancy over time (the paper's Figure 1).

Figure 1 plots, as a function of requests processed, the fraction of
cached documents and of cached bytes belonging to each document type —
the evidence for GD*'s adaptability claim: under GD*(1) the per-type
byte fractions stay nearly constant and close to the request mix, while
under GDS(1) they drift far from it (almost no multimedia/application
bytes are kept).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.cache import Cache
from repro.types import DOCUMENT_TYPES, DocumentType


@dataclass(frozen=True)
class OccupancySample:
    """One snapshot of per-type cache shares.

    Fractions are of the *cache contents* (documents resident at sample
    time), each in [0, 1]; they sum to 1 over all types when the cache
    is nonempty.
    """

    request_index: int
    document_fraction: Dict[DocumentType, float]
    byte_fraction: Dict[DocumentType, float]
    resident_documents: int
    resident_bytes: int


class OccupancyTracker:
    """Collects :class:`OccupancySample` snapshots at a fixed cadence."""

    def __init__(self, sample_interval: int = 1000):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.sample_interval = sample_interval
        self.samples: List[OccupancySample] = []

    def maybe_sample(self, cache: Cache, request_index: int) -> None:
        """Take a snapshot when the cadence says so."""
        if request_index % self.sample_interval == 0:
            self.samples.append(self.snapshot(cache, request_index))

    @staticmethod
    def snapshot(cache: Cache, request_index: int) -> OccupancySample:
        """One immediate snapshot of a cache's per-type shares."""
        doc_counts = {t: 0 for t in DOCUMENT_TYPES}
        byte_counts = {t: 0 for t in DOCUMENT_TYPES}
        for entry in cache.entries():
            doc_counts[entry.doc_type] += 1
            byte_counts[entry.doc_type] += entry.size
        total_docs = sum(doc_counts.values())
        total_bytes = sum(byte_counts.values())
        return OccupancySample(
            request_index=request_index,
            document_fraction={
                t: (doc_counts[t] / total_docs if total_docs else 0.0)
                for t in DOCUMENT_TYPES},
            byte_fraction={
                t: (byte_counts[t] / total_bytes if total_bytes else 0.0)
                for t in DOCUMENT_TYPES},
            resident_documents=total_docs,
            resident_bytes=total_bytes,
        )

    def series(self, doc_type: DocumentType,
               bytes_not_documents: bool = False) -> List[tuple]:
        """(request_index, fraction) series for one type."""
        if bytes_not_documents:
            return [(s.request_index, s.byte_fraction[doc_type])
                    for s in self.samples]
        return [(s.request_index, s.document_fraction[doc_type])
                for s in self.samples]

    def mean_fraction(self, doc_type: DocumentType,
                      bytes_not_documents: bool = False) -> float:
        """Time-average share of one type (0.0 with no samples)."""
        series = self.series(doc_type, bytes_not_documents)
        if not series:
            return 0.0
        return sum(value for _, value in series) / len(series)

    def variability(self, doc_type: DocumentType,
                    bytes_not_documents: bool = False) -> float:
        """Peak-to-trough spread of one type's share over time.

        The paper's adaptability argument is about exactly this: GD*'s
        byte fractions are "nearly constant" (small spread) while
        GDS(1)'s are "highly variable".
        """
        series = self.series(doc_type, bytes_not_documents)
        if not series:
            return 0.0
        values = [value for _, value in series]
        return max(values) - min(values)

    def as_dict(self) -> dict:
        return {
            "sample_interval": self.sample_interval,
            "samples": [
                {
                    "request_index": s.request_index,
                    "document_fraction": {t.value: f for t, f
                                          in s.document_fraction.items()},
                    "byte_fraction": {t.value: f for t, f
                                      in s.byte_fraction.items()},
                    "resident_documents": s.resident_documents,
                    "resident_bytes": s.resident_bytes,
                }
                for s in self.samples
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OccupancyTracker":
        tracker = cls(sample_interval=data["sample_interval"])
        for raw in data["samples"]:
            tracker.samples.append(OccupancySample(
                request_index=raw["request_index"],
                document_fraction={DocumentType(k): v for k, v
                                   in raw["document_fraction"].items()},
                byte_fraction={DocumentType(k): v for k, v
                               in raw["byte_fraction"].items()},
                resident_documents=raw["resident_documents"],
                resident_bytes=raw["resident_bytes"],
            ))
        return tracker
