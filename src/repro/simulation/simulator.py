"""The trace-driven proxy-cache simulator (paper Section 4.1).

For each request the simulator

1. resolves the document's *effective full size* according to the
   configured :class:`SizeInterpretation` (see below);
2. feeds the reference to the cache (which admits, hits, or detects a
   stale copy);
3. after the warm-up phase, accounts the outcome into per-type hit and
   byte-hit metrics, counting modification misses as misses, exactly as
   the paper does;
4. optionally samples per-type occupancy for the Figure-1 analysis.

Size interpretations:

* ``TRUSTED`` — believe the request's ``size``/``transfer_size`` split
  (canonical synthetic traces carry ground truth).  A cached copy is
  stale iff the document's full size changed.
* ``PAPER_RULE`` — ignore ``size`` and reconstruct full sizes from the
  logged ``transfer_size`` sequence with the paper's 5 %-delta rule
  (< 5 % change = modification, ≥ 5 % = interrupted transfer).
* ``ANY_CHANGE`` — reconstruct treating *every* transfer-size change as
  a modification (Jin & Bestavros' treatment).  The paper attributes
  its one disagreement with [8] to this difference, which makes
  TRUSTED/PAPER_RULE vs ANY_CHANGE a designed-in ablation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.core.cache import Cache
from repro.core.gdstar import GDStarPolicy
from repro.core.policy import AccessOutcome, ReplacementPolicy
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.observability.logs import get_logger
from repro.observability.metrics import get_registry
from repro.observability.profiling import PhaseTimings, phase_timer
from repro.simulation.freshness import FreshnessTracker, TTLModel
from repro.simulation.metrics import TypeMetrics
from repro.simulation.occupancy import OccupancyTracker
from repro.simulation.results import SimulationResult
from repro.trace.modification import ModificationDetector, ModificationPolicy
from repro.types import Request, Trace

_logger = get_logger("simulation")


class SizeInterpretation(enum.Enum):
    """How request sizes are turned into document sizes."""

    TRUSTED = "trusted"
    PAPER_RULE = "paper-rule"
    ANY_CHANGE = "any-change"


@dataclass
class SimulationConfig:
    """Knobs for one simulation run.

    Attributes:
        capacity_bytes: Cache capacity.
        policy: Policy name (see :mod:`repro.core.registry`) or a
            ready-built policy instance.
        warmup_fraction: Leading fraction of requests that fill the
            cache without being measured (paper: 10 %).
        size_interpretation: See module docstring.
        occupancy_interval: Sample per-type occupancy every N requests;
            0 disables tracking.
        modification_tolerance: The 5 % threshold of the paper rule.
        ttl_model: Optional per-type freshness lifetimes; a resident
            copy older than its TTL (in trace time) is invalidated and
            the reference counts as a miss.  None (the default, and
            the paper's methodology) never expires documents.
    """

    capacity_bytes: int
    policy: Union[str, ReplacementPolicy] = "lru"
    warmup_fraction: float = 0.10
    size_interpretation: SizeInterpretation = SizeInterpretation.TRUSTED
    occupancy_interval: int = 0
    modification_tolerance: float = 0.05
    ttl_model: Optional[TTLModel] = None
    #: When set, per-request retrieval costs under this model are
    #: accumulated so results expose ``cost_savings_ratio`` — the
    #: objective a Greedy-Dual policy under the same model maximizes.
    report_cost_model: Optional[object] = None
    #: When set, per-request service times under this model are
    #: accumulated; the result carries a
    #: :class:`~repro.simulation.latency.LatencyMetrics`.
    latency_model: Optional[object] = None

    def validate(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")
        if self.occupancy_interval < 0:
            raise ConfigurationError("occupancy_interval must be >= 0")


class CacheSimulator:
    """Runs one policy over one trace with the paper's methodology."""

    def __init__(self, config: SimulationConfig, cache=None):
        """``cache`` overrides the config's capacity/policy pair with a
        prebuilt cache-compatible object (e.g. a
        :class:`~repro.core.partitioned.PartitionedCache`)."""
        config.validate()
        self.config = config
        if cache is not None:
            self.cache = cache
            self.policy = getattr(cache, "policy", None)
        else:
            if isinstance(config.policy, ReplacementPolicy):
                self.policy = config.policy
            else:
                self.policy = make_policy(config.policy)
            self.cache = Cache(config.capacity_bytes, self.policy)
        self.metrics = TypeMetrics()
        self.occupancy: Optional[OccupancyTracker] = None
        if config.occupancy_interval:
            self.occupancy = OccupancyTracker(config.occupancy_interval)
        self._detector = self._build_detector()
        self._freshness: Optional[FreshnessTracker] = None
        if config.ttl_model is not None:
            self._freshness = FreshnessTracker(config.ttl_model)
        self.latency = None
        if config.latency_model is not None:
            from repro.simulation.latency import LatencyMetrics
            self.latency = LatencyMetrics(model=config.latency_model)
        #: Wall-clock seconds per phase of the most recent run
        #: (warmup / measurement / aggregate), for profiling long runs.
        self.phase_timings = PhaseTimings()

    def _build_detector(self) -> Optional[ModificationDetector]:
        interp = self.config.size_interpretation
        if interp is SizeInterpretation.TRUSTED:
            return None
        policy = (ModificationPolicy.PAPER
                  if interp is SizeInterpretation.PAPER_RULE
                  else ModificationPolicy.ANY_CHANGE)
        return ModificationDetector(
            tolerance=self.config.modification_tolerance, policy=policy)

    def run(self, trace: Union[Trace, Sequence[Request]],
            trace_name: Optional[str] = None) -> SimulationResult:
        """Simulate the full trace and return the result."""
        requests = trace.requests if isinstance(trace, Trace) else trace
        total = len(requests)
        warmup = int(total * self.config.warmup_fraction)
        name = trace_name or getattr(trace, "name", "trace")

        # The warm-up/measurement split is hoisted out of the loop so
        # neither half pays a per-request branch; the phase timers sit
        # outside the loops and cost two clock reads per phase.
        timings = self.phase_timings = PhaseTimings()
        cost_model = self.config.report_cost_model
        position = 0
        with phase_timer("warmup", timings):
            for request in requests[:warmup]:
                self._step(request)
                position += 1
                if self.occupancy is not None:
                    self.occupancy.maybe_sample(self.cache, position)
        with phase_timer("measurement", timings):
            for request in requests[warmup:]:
                outcome = self._step(request)
                position += 1
                hit = outcome is AccessOutcome.HIT
                transfer = min(request.transfer_size, request.size)
                cost = (cost_model.cost(request.size)
                        if cost_model is not None else 0.0)
                self.metrics.record(request.doc_type, hit, transfer,
                                    cost)
                if self.latency is not None:
                    self.latency.record(request.doc_type, hit, transfer)
                    self.latency.record_baseline(transfer)
                if self.occupancy is not None:
                    self.occupancy.maybe_sample(self.cache, position)

        with phase_timer("aggregate", timings):
            result = self._result(name, total, warmup)
        self._publish_telemetry(result, timings)
        return result

    def run_stream(self, requests: Iterable[Request],
                   warmup_requests: int = 0,
                   trace_name: str = "stream") -> SimulationResult:
        """Simulate an unbounded stream with an absolute warm-up count."""
        timings = self.phase_timings = PhaseTimings()
        total = 0
        with phase_timer("stream", timings):
            for request in requests:
                outcome = self._step(request)
                total += 1
                if total > warmup_requests:
                    hit = outcome is AccessOutcome.HIT
                    transfer = min(request.transfer_size, request.size)
                    self.metrics.record(request.doc_type, hit, transfer)
                if self.occupancy is not None:
                    self.occupancy.maybe_sample(self.cache, total)
        with phase_timer("aggregate", timings):
            result = self._result(trace_name, total,
                                  min(warmup_requests, total))
        self._publish_telemetry(result, timings)
        return result

    def _step(self, request: Request) -> AccessOutcome:
        size = request.size
        if self._detector is not None:
            observation = self._detector.observe(
                request.url, request.transfer_size)
            size = observation.document_size
        if self._freshness is not None and request.url in self.cache:
            if self._freshness.expired(request.url, request.doc_type,
                                       request.timestamp):
                self.cache.invalidate(request.url)
        outcome = self.cache.reference(request.url, size,
                                       request.doc_type)
        if (self._freshness is not None
                and outcome is not AccessOutcome.HIT):
            self._freshness.on_fetch(request.url, request.timestamp)
        return outcome

    def _publish_telemetry(self, result: SimulationResult,
                           timings: PhaseTimings) -> None:
        """Batch the run's aggregates into the metrics registry.

        One update per run — never one per request — so the hot loop
        carries no metric calls and the disabled-by-default registry
        costs nothing measurable.
        """
        registry = get_registry()
        if registry.enabled:
            labels = {"policy": result.policy}
            registry.counter("simulator_runs_total", **labels).inc()
            registry.counter("simulator_requests_total", **labels).inc(
                result.total_requests)
            registry.counter("simulator_hits_total", **labels).inc(
                result.metrics.overall.hits)
            registry.counter("simulator_hit_bytes_total", **labels).inc(
                result.metrics.overall.hit_bytes)
            registry.counter("simulator_evictions_total", **labels).inc(
                result.evictions)
            for phase, seconds in timings.as_dict().items():
                registry.histogram("simulator_phase_seconds",
                                   phase=phase).observe(seconds)
        measured = timings.get("measurement") or timings.get("stream")
        _logger.debug(
            "simulated %s: %d requests in %.3fs", result.policy,
            result.total_requests, timings.total,
            extra={"policy": result.policy,
                   "capacity_bytes": result.capacity_bytes,
                   "requests": result.total_requests,
                   "hit_rate": round(result.hit_rate(), 6),
                   "phase_seconds": {k: round(v, 6) for k, v
                                     in timings.as_dict().items()},
                   "requests_per_second": round(
                       result.total_requests / measured, 1)
                   if measured else None})

    def _result(self, name: str, total: int,
                warmup: int) -> SimulationResult:
        final_beta = None
        if isinstance(self.policy, GDStarPolicy):
            final_beta = self.policy.beta
        policy_name = (self.policy.name if self.policy is not None
                       else type(self.cache).__name__.lower())
        ttl_expiries = (self._freshness.expiries
                        if self._freshness is not None else None)
        return SimulationResult(
            policy=policy_name,
            capacity_bytes=self.config.capacity_bytes,
            trace_name=name,
            total_requests=total,
            warmup_requests=warmup,
            metrics=self.metrics,
            occupancy=self.occupancy,
            evictions=self.cache.evictions,
            invalidations=self.cache.invalidations,
            bypasses=self.cache.bypasses,
            final_beta=final_beta,
            ttl_expiries=ttl_expiries,
            latency=self.latency,
        )


def simulate(trace: Union[Trace, Sequence[Request]],
             policy: Union[str, ReplacementPolicy],
             capacity_bytes: int,
             **config_kwargs) -> SimulationResult:
    """One-call simulation: trace + policy + capacity → result."""
    config = SimulationConfig(capacity_bytes=capacity_bytes, policy=policy,
                              **config_kwargs)
    return CacheSimulator(config).run(trace)
