"""The trace-driven proxy-cache simulator (paper Section 4.1).

For each request the simulator

1. resolves the document's *effective full size* according to the
   configured :class:`SizeInterpretation` (see below);
2. feeds the reference to the cache (which admits, hits, or detects a
   stale copy);
3. after the warm-up phase, accounts the outcome into per-type hit and
   byte-hit metrics, counting modification misses as misses, exactly as
   the paper does;
4. optionally samples per-type occupancy for the Figure-1 analysis.

Size interpretations:

* ``TRUSTED`` — believe the request's ``size``/``transfer_size`` split
  (canonical synthetic traces carry ground truth).  A cached copy is
  stale iff the document's full size changed.
* ``PAPER_RULE`` — ignore ``size`` and reconstruct full sizes from the
  logged ``transfer_size`` sequence with the paper's 5 %-delta rule
  (< 5 % change = modification, ≥ 5 % = interrupted transfer).
* ``ANY_CHANGE`` — reconstruct treating *every* transfer-size change as
  a modification (Jin & Bestavros' treatment).  The paper attributes
  its one disagreement with [8] to this difference, which makes
  TRUSTED/PAPER_RULE vs ANY_CHANGE a designed-in ablation.

Since the shared-pass refactor this module is a thin one-cell wrapper:
the trace walk and size resolution live in
:mod:`repro.simulation.engine` (:class:`~repro.simulation.engine.
ReferenceStream`), and the cache/policy/metrics state lives in a single
:class:`~repro.simulation.engine.CacheCell`.  ``CacheSimulator`` keeps
its public API — sweeps that want N cells per trace pass use
:func:`repro.simulation.engine.run_cells` directly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.core.policy import AccessOutcome, ReplacementPolicy
from repro.observability.logs import get_logger
from repro.observability.metrics import get_registry
from repro.observability.profiling import PhaseTimings, phase_timer
from repro.observability.trace import span as _span
from repro.simulation.engine import (
    CacheCell,
    SimulationConfig,
    SizeInterpretation,
    _new_requested_totals,
    drive_pass,
    make_resolver,
)
from repro.simulation.results import SimulationResult
from repro.types import Request, Trace

__all__ = [
    "SizeInterpretation",
    "SimulationConfig",
    "CacheSimulator",
    "simulate",
]

_logger = get_logger("simulation")


class CacheSimulator:
    """Runs one policy over one trace with the paper's methodology."""

    def __init__(self, config: SimulationConfig, cache=None):
        """``cache`` overrides the config's capacity/policy pair with a
        prebuilt cache-compatible object (e.g. a
        :class:`~repro.core.partitioned.PartitionedCache`)."""
        self._cell = CacheCell(config, cache=cache)
        self.config = config
        self._resolver = make_resolver(config)
        self._detector = self._resolver.detector
        #: Wall-clock seconds per phase of the most recent run
        #: (warmup / measurement / aggregate), for profiling long runs.
        self.phase_timings = PhaseTimings()

    # The cell owns all mutable simulation state; expose the historical
    # attribute surface as read-only views of it.

    @property
    def cache(self):
        return self._cell.cache

    @property
    def policy(self):
        return self._cell.policy

    @property
    def metrics(self):
        return self._cell.metrics

    @property
    def occupancy(self):
        return self._cell.occupancy

    @property
    def latency(self):
        return self._cell.latency

    @property
    def _freshness(self):
        return self._cell._freshness

    def run(self, trace: Union[Trace, Sequence[Request]],
            trace_name: Optional[str] = None) -> SimulationResult:
        """Simulate the full trace and return the result."""
        requests = trace.requests if isinstance(trace, Trace) else trace
        if not isinstance(requests, (list, tuple)):
            requests = list(requests)
        total = len(requests)
        warmup = int(total * self.config.warmup_fraction)
        name = trace_name or getattr(trace, "name", "trace")

        # The warm-up/measurement split is hoisted out of the loop so
        # neither half pays a per-request branch; the phase timers sit
        # outside the loops and cost two clock reads per phase.
        timings = self.phase_timings = PhaseTimings()
        cell = self._cell
        cell.begin_run(warmup, deferred=True)
        boundaries = ({warmup: _new_requested_totals()}
                      if cell.deferred else None)
        groups = [(self._resolver, [cell])]
        with _span("simulate", policy=str(self.config.policy),
                   capacity_bytes=self.config.capacity_bytes,
                   trace=name, requests=total):
            with _span("warmup"), phase_timer("warmup", timings):
                drive_pass(requests[:warmup], 0, groups, None)
            with _span("measurement"), \
                    phase_timer("measurement", timings):
                drive_pass(requests[warmup:], warmup, groups, boundaries)
            with _span("aggregate"), phase_timer("aggregate", timings):
                result = cell.finalize(
                    name, total,
                    boundaries[warmup] if boundaries else None)
        self._publish_telemetry(result, timings)
        return result

    def run_stream(self, requests: Iterable[Request],
                   warmup_requests: int = 0,
                   trace_name: str = "stream") -> SimulationResult:
        """Simulate an unbounded stream with an absolute warm-up count."""
        timings = self.phase_timings = PhaseTimings()
        cell = self._cell
        cell.begin_run(warmup_requests, deferred=False)
        total = 0
        with _span("stream", policy=str(self.config.policy)), \
                phase_timer("stream", timings):
            for request in requests:
                outcome = self._step(request)
                total += 1
                if total > warmup_requests:
                    hit = outcome is AccessOutcome.HIT
                    transfer = min(request.transfer_size, request.size)
                    self.metrics.record(request.doc_type, hit, transfer)
                if self.occupancy is not None:
                    self.occupancy.maybe_sample(self.cache, total)
        with phase_timer("aggregate", timings):
            result = cell.finalize(trace_name, total,
                                   warmup=min(warmup_requests, total))
        self._publish_telemetry(result, timings)
        return result

    def _step(self, request: Request) -> AccessOutcome:
        """Resolve and reference one request without accounting."""
        url, size, doc_type, _transfer, _raw, timestamp = \
            self._resolver.resolve_one(request)
        cell = self._cell
        cache = cell.cache
        if cell._freshness is not None and url in cache:
            if cell._freshness.expired(url, doc_type, timestamp):
                cache.invalidate(url)
        outcome = cache.reference(url, size, doc_type)
        if (cell._freshness is not None
                and outcome is not AccessOutcome.HIT):
            cell._freshness.on_fetch(url, timestamp)
        return outcome

    def _publish_telemetry(self, result: SimulationResult,
                           timings: PhaseTimings) -> None:
        """Batch the run's aggregates into the metrics registry.

        One update per run — never one per request — so the hot loop
        carries no metric calls and the disabled-by-default registry
        costs nothing measurable.
        """
        registry = get_registry()
        if registry.enabled:
            labels = {"policy": result.policy}
            registry.counter("simulator_runs_total", **labels).inc()
            registry.counter("simulator_requests_total", **labels).inc(
                result.total_requests)
            registry.counter("simulator_hits_total", **labels).inc(
                result.metrics.overall.hits)
            registry.counter("simulator_hit_bytes_total", **labels).inc(
                result.metrics.overall.hit_bytes)
            registry.counter("simulator_evictions_total", **labels).inc(
                result.evictions)
            for phase, seconds in timings.as_dict().items():
                registry.histogram("simulator_phase_seconds",
                                   phase=phase).observe(seconds)
        measured = timings.get("measurement") or timings.get("stream")
        _logger.debug(
            "simulated %s: %d requests in %.3fs", result.policy,
            result.total_requests, timings.total,
            extra={"policy": result.policy,
                   "capacity_bytes": result.capacity_bytes,
                   "requests": result.total_requests,
                   "hit_rate": round(result.hit_rate(), 6),
                   "phase_seconds": {k: round(v, 6) for k, v
                                     in timings.as_dict().items()},
                   "requests_per_second": round(
                       result.total_requests / measured, 1)
                   if measured else None})


def simulate(trace: Union[Trace, Sequence[Request]],
             policy: Union[str, ReplacementPolicy],
             capacity_bytes: int,
             **config_kwargs) -> SimulationResult:
    """One-call simulation: trace + policy + capacity → result."""
    config = SimulationConfig(capacity_bytes=capacity_bytes, policy=policy,
                              **config_kwargs)
    return CacheSimulator(config).run(trace)
