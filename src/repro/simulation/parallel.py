"""Parallel cache-size sweeps.

A full figure regeneration at paper scale is ~30 independent
(policy, capacity) simulations over millions of requests; they share
nothing but the read-only trace, so a process pool gives near-linear
speedup.  The trace is shipped to each worker once (pool initializer),
not once per cell.

Results are bit-identical to :func:`repro.simulation.sweep.run_sweep`
— every policy is deterministic — which the tests assert.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.simulation.results import SimulationResult, SweepResult
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
)
from repro.types import Request, Trace

# Per-worker trace storage, populated by the pool initializer.
_worker_trace: Optional[Trace] = None


def _init_worker(requests: Sequence[Request], name: str) -> None:
    global _worker_trace
    _worker_trace = Trace(requests, name=name)


def _run_cell(cell: Tuple[str, int, float, str]) -> dict:
    policy_name, capacity, warmup_fraction, interpretation = cell
    config = SimulationConfig(
        capacity_bytes=capacity,
        policy=policy_name,
        warmup_fraction=warmup_fraction,
        size_interpretation=SizeInterpretation(interpretation),
    )
    result = CacheSimulator(config).run(_worker_trace)
    return result.as_dict()


def run_sweep_parallel(trace: Trace,
                       policies: Iterable[str],
                       capacities: Sequence[int],
                       warmup_fraction: float = 0.10,
                       size_interpretation: SizeInterpretation =
                       SizeInterpretation.TRUSTED,
                       n_workers: Optional[int] = None) -> SweepResult:
    """Run the (policy × capacity) grid across worker processes.

    Args match :func:`~repro.simulation.sweep.run_sweep` (minus the
    per-cell callbacks, which cannot cross process boundaries);
    ``n_workers`` defaults to the CPU count capped by the cell count.
    """
    cells: List[Tuple[str, int, float, str]] = [
        (policy_name, capacity, warmup_fraction,
         size_interpretation.value)
        for policy_name in policies
        for capacity in capacities
    ]
    if not cells:
        raise ConfigurationError("empty sweep grid")
    if n_workers is None:
        n_workers = min(os.cpu_count() or 1, len(cells))
    n_workers = max(min(n_workers, len(cells)), 1)

    sweep = SweepResult(trace_name=trace.name)
    if n_workers == 1:
        # No pool overhead for the degenerate case.
        _init_worker(trace.requests, trace.name)
        try:
            for cell in cells:
                sweep.add(SimulationResult.from_dict(_run_cell(cell)))
        finally:
            _reset_worker()
        return sweep

    with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(trace.requests, trace.name)) as pool:
        for raw in pool.map(_run_cell, cells):
            sweep.add(SimulationResult.from_dict(raw))
    return sweep


def _reset_worker() -> None:
    global _worker_trace
    _worker_trace = None
