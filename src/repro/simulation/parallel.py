"""Fault-tolerant parallel cache-size sweeps.

A full figure regeneration at paper scale is ~30 independent
(policy, capacity) simulations over millions of requests; they share
nothing but the read-only trace, so a process pool gives near-linear
speedup.  The trace is shipped to each worker once (pool initializer),
not once per cell.

Because every cell is a pure function of its config and the trace, a
failed cell can simply be rerun: the scheduler submits cells as
individual futures, retries transient failures (worker crashes, hangs
past ``cell_timeout``, corrupt payloads) with a bounded deterministic
backoff, and rebuilds the pool when a dead worker breaks it —
resubmitting only the unfinished cells.  ``failure_policy="partial"``
turns cells that stay broken into structured
:class:`~repro.simulation.results.FailureRecord`\\ s on the returned
sweep instead of exceptions, so an overnight grid never loses its
completed cells to one bad one.

Results are bit-identical to :func:`repro.simulation.sweep.run_sweep`
— every policy is deterministic, and retries rerun the identical
computation — which the tests assert, fault injection included.
"""

from __future__ import annotations

import os
import re
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    CellTimeoutError,
    ConfigurationError,
    SimulationError,
    WorkerCrashError,
)
from repro.observability import events as _events
from repro.observability.logs import get_logger
from repro.observability.manifest import TelemetryRun
from repro.observability.profiling import maybe_profile
from repro.resilience.checkpoint import CheckpointStore, config_hash
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.simulation.results import (
    FailureRecord,
    SimulationResult,
    SweepResult,
)
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
)
from repro.types import Request, Trace

#: How long the scheduler sleeps in ``wait()`` before re-checking
#: deadlines; kept short so cell timeouts are detected promptly.
_POLL_SECONDS = 0.1

#: Accepted values for ``failure_policy``.
FAILURE_POLICIES = ("raise", "partial")

# Per-worker state, populated by the pool initializer.
_worker_trace: Optional[Trace] = None
_worker_injector: Optional[FaultInjector] = None

_logger = get_logger("simulation.parallel")


def cell_key(policy_name: str, capacity: int) -> str:
    """Stable identity of one sweep cell (also the fault-spec key)."""
    return f"{policy_name}@{capacity}"


def _profile_path(profile_dir: Optional[str], key: str,
                  attempt: int) -> Optional[str]:
    """Per-(cell, attempt) cProfile dump path; None when disabled."""
    if not profile_dir:
        return None
    safe = re.sub(r"[^A-Za-z0-9_.@-]+", "_", key)
    return str(Path(profile_dir) / f"{safe}.attempt{attempt}.prof")


def _init_worker(requests: Sequence[Request], name: str,
                 injector: Optional[FaultInjector] = None) -> None:
    global _worker_trace, _worker_injector
    _worker_trace = Trace(requests, name=name)
    _worker_injector = injector


def _run_cell(cell: Tuple[str, int, float, str, int]) -> dict:
    policy_name, capacity, warmup_fraction, interpretation, attempt = \
        cell[:5]
    profile_path = cell[5] if len(cell) > 5 else None
    key = cell_key(policy_name, capacity)
    if _worker_injector is not None:
        _worker_injector.on_start(key, attempt)
    if _worker_trace is None:
        raise SimulationError(
            f"worker has no trace for cell {key!r}: the process pool "
            "was created without the _init_worker initializer")
    config = SimulationConfig(
        capacity_bytes=capacity,
        policy=policy_name,
        warmup_fraction=warmup_fraction,
        size_interpretation=SizeInterpretation(interpretation),
    )
    with maybe_profile(profile_path):
        result = CacheSimulator(config).run(_worker_trace)
    payload = result.as_dict()
    if _worker_injector is not None:
        payload = _worker_injector.on_result(key, attempt, payload)
    return payload


def _reset_worker() -> None:
    global _worker_trace, _worker_injector
    _worker_trace = None
    _worker_injector = None


def _deserialize(payload: object, key: str) -> SimulationResult:
    """Parse a worker payload, mapping corruption to a transient error."""
    try:
        return SimulationResult.from_dict(payload)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WorkerCrashError(
            f"worker returned corrupt payload for cell {key!r}: "
            f"{type(exc).__name__}: {exc}") from exc


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if its workers are hung or dead.

    A graceful ``shutdown(wait=True)`` would block behind a hung cell,
    so kill the worker processes first.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        if process.is_alive():
            process.terminate()
    pool.shutdown(wait=True, cancel_futures=True)


class _CellRun:
    """Bookkeeping for one in-flight (cell, attempt) submission."""

    __slots__ = ("policy", "capacity", "attempt", "started")

    def __init__(self, policy: str, capacity: int, attempt: int,
                 started: float):
        self.policy = policy
        self.capacity = capacity
        self.attempt = attempt
        self.started = started

    @property
    def key(self) -> str:
        return cell_key(self.policy, self.capacity)


def run_sweep_parallel(trace: Trace,
                       policies: Iterable[str],
                       capacities: Sequence[int],
                       warmup_fraction: float = 0.10,
                       size_interpretation: SizeInterpretation =
                       SizeInterpretation.TRUSTED,
                       n_workers: Optional[int] = None,
                       *,
                       max_retries: int = 2,
                       cell_timeout: Optional[float] = None,
                       failure_policy: str = "raise",
                       retry_policy: Optional[RetryPolicy] = None,
                       fault_injector: Optional[FaultInjector] = None,
                       checkpoint_store: Optional[CheckpointStore] = None,
                       telemetry_dir=None,
                       events=None,
                       profile_dir=None,
                       sleep=time.sleep) -> SweepResult:
    """Run the (policy × capacity) grid across worker processes.

    Positional args match :func:`~repro.simulation.sweep.run_sweep`
    (minus the per-cell callbacks, which cannot cross process
    boundaries); ``n_workers`` defaults to the CPU count capped by the
    cell count.

    Keyword-only fault-tolerance knobs:

    Args:
        max_retries: Reruns allowed per cell for *transient* failures
            (worker crash, timeout, corrupt payload).  Deterministic
            errors from the cell itself are never retried.
        cell_timeout: Per-cell wall-clock budget in seconds; a cell
            past it has its worker killed and counts as a transient
            failure.  ``None`` disables timeouts.
        failure_policy: ``"raise"`` (default) re-raises the first
            permanently failed cell; ``"partial"`` returns whatever
            completed, with a :class:`FailureRecord` per lost cell on
            ``SweepResult.failures``.
        retry_policy: Full backoff schedule; defaults to
            ``RetryPolicy(max_retries=max_retries, base_delay=0)``
            (immediate resubmission — cells are CPU-bound and
            deterministic, so waiting buys nothing by default).
        fault_injector: Deterministic chaos plan shipped to workers
            (see :mod:`repro.resilience.faults`); used by the tests to
            prove the machinery above works.
        checkpoint_store: Optional
            :class:`~repro.resilience.checkpoint.CheckpointStore`.
            Each completed cell is persisted as it finishes, and cells
            already checkpointed under the same sweep config are
            loaded instead of rerun — an interrupted grid resumes
            from where it stopped.
        telemetry_dir: When set, the sweep writes its own
            ``manifest.json`` + ``events.jsonl`` telemetry directory
            (see :mod:`repro.observability.manifest`).
        events: An :class:`~repro.observability.events.EventLog` to
            emit cell lifecycle events into, for callers (like
            ``run_suite``) that already own a telemetry run.  Without
            it (and without ``telemetry_dir``) events go to the
            process-wide sink, a no-op by default.
        profile_dir: When set, each cell attempt is run under cProfile
            in its worker and dumps ``<cell>.attempt<n>.prof`` here.
        sleep: Injectable sleep used for retry backoff.
    """
    cells: List[Tuple[str, int]] = [
        (policy_name, capacity)
        for policy_name in policies
        for capacity in capacities
    ]
    if not cells:
        raise ConfigurationError("empty sweep grid")
    if failure_policy not in FAILURE_POLICIES:
        raise ConfigurationError(
            f"failure_policy must be one of {FAILURE_POLICIES}, "
            f"got {failure_policy!r}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ConfigurationError("cell_timeout must be positive")
    if retry_policy is None:
        retry_policy = RetryPolicy(max_retries=max_retries,
                                   base_delay=0.0)
    if n_workers is None:
        n_workers = min(os.cpu_count() or 1, len(cells))
    n_workers = max(min(n_workers, len(cells)), 1)

    sweep = SweepResult(trace_name=trace.name)

    telemetry: Optional[TelemetryRun] = None
    if telemetry_dir is not None and events is None:
        telemetry = TelemetryRun(
            telemetry_dir, kind="sweep",
            settings={
                "trace": trace.name,
                "policies": list(dict.fromkeys(p for p, _ in cells)),
                "capacities": list(capacities),
                "warmup_fraction": warmup_fraction,
                "size_interpretation": size_interpretation.value,
                "n_workers": n_workers,
                "max_retries": max_retries,
                "cell_timeout": cell_timeout,
                "failure_policy": failure_policy,
            },
            install_sink=False)
        events = telemetry.events
    emit = events.emit if events is not None else _events.emit

    def _finish() -> SweepResult:
        if telemetry is not None:
            telemetry.finalize(
                "partial" if sweep.failures else "complete")
        return sweep

    try:
        # Cells already checkpointed under this exact sweep config are
        # adopted instead of rerun; the rest of the grid proceeds
        # normally.
        sweep_digest = None
        if checkpoint_store is not None:
            sweep_digest = config_hash({
                "trace": trace.name,
                "requests": len(trace.requests),
                "warmup_fraction": warmup_fraction,
                "size_interpretation": size_interpretation.value,
            })
            done_payloads = checkpoint_store.completed(sweep_digest)
            remaining = []
            for policy_name, capacity in cells:
                key = cell_key(policy_name, capacity)
                payload = done_payloads.get(key)
                if payload is not None:
                    try:
                        sweep.add(_deserialize(payload, key))
                    except WorkerCrashError:
                        pass  # unreadable checkpoint: rerun the cell
                    else:
                        emit("cell_checkpoint_restored", key=key)
                        continue
                remaining.append((policy_name, capacity))
            cells = remaining
            if not cells:
                return _finish()

        def _checkpoint_cell(policy_name: str, capacity: int,
                             payload: dict) -> None:
            if checkpoint_store is not None:
                checkpoint_store.save(cell_key(policy_name, capacity),
                                      payload, sweep_digest)

        if (n_workers == 1 and cell_timeout is None
                and fault_injector is None):
            # No pool overhead for the degenerate case (and nothing to
            # time out or inject into).
            _init_worker(trace.requests, trace.name)
            try:
                for policy_name, capacity in cells:
                    key = cell_key(policy_name, capacity)
                    emit("cell_scheduled", key=key, attempt=1)
                    started = time.monotonic()
                    payload = _run_cell(
                        (policy_name, capacity, warmup_fraction,
                         size_interpretation.value, 1,
                         _profile_path(profile_dir, key, 1)))
                    elapsed = time.monotonic() - started
                    result = SimulationResult.from_dict(payload)
                    result.duration_seconds = elapsed
                    result.attempts = 1
                    sweep.add(result)
                    _checkpoint_cell(policy_name, capacity, payload)
                    emit("cell_finished", key=key, attempt=1,
                         duration_seconds=round(elapsed, 6))
            finally:
                _reset_worker()
            return _finish()

        _Scheduler(
            trace=trace,
            cells=cells,
            warmup_fraction=warmup_fraction,
            size_interpretation=size_interpretation,
            n_workers=n_workers,
            retry_policy=retry_policy,
            cell_timeout=cell_timeout,
            failure_policy=failure_policy,
            fault_injector=fault_injector,
            on_cell_done=_checkpoint_cell,
            emit=emit,
            profile_dir=profile_dir,
            sleep=sleep,
        ).run(sweep)
        return _finish()
    except BaseException:
        if telemetry is not None:
            telemetry.finalize("failed")
        raise


class _Scheduler:
    """Submits cells as futures, retries transient failures, and
    rebuilds the pool when workers die or hang."""

    def __init__(self, trace, cells, warmup_fraction,
                 size_interpretation, n_workers, retry_policy,
                 cell_timeout, failure_policy, fault_injector,
                 on_cell_done, emit, profile_dir, sleep):
        self.trace = trace
        self.warmup_fraction = warmup_fraction
        self.size_interpretation = size_interpretation
        self.n_workers = n_workers
        self.retry_policy = retry_policy
        self.cell_timeout = cell_timeout
        self.failure_policy = failure_policy
        self.fault_injector = fault_injector
        self.on_cell_done = on_cell_done
        self.emit = emit
        self.profile_dir = profile_dir
        self.sleep = sleep
        #: Wall-clock seconds burned per cell key across attempts,
        #: including attempts that crashed or timed out.
        self.elapsed: Dict[str, float] = {}
        #: (policy, capacity, attempt) runnable now.
        self.queue = deque((policy, capacity, 1)
                           for policy, capacity in cells)
        #: Cells suspected of crashing a worker.  When a pool breaks
        #: with several cells in flight there is no way to tell which
        #: one killed it, so none is charged; instead they all land
        #: here and rerun one at a time — a cell that breaks the pool
        #: while running alone is provably the crasher.
        self.isolation = deque()
        self.isolated: Optional[_CellRun] = None
        self.in_flight: Dict[object, _CellRun] = {}
        self.failures: List[FailureRecord] = []
        self.pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ---------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_worker,
            initargs=(self.trace.requests, self.trace.name,
                      self.fault_injector))

    def _rebuild_pool(self, reason: str = "worker crash") -> None:
        if self.pool is not None:
            _terminate_pool(self.pool)
        self.pool = self._new_pool()
        self.emit("pool_rebuilt", reason=reason)
        _logger.warning("process pool rebuilt (%s)", reason,
                        extra={"reason": reason})

    def _charge_elapsed(self, run: _CellRun) -> float:
        """Accumulate the wall clock a leaving in-flight run burned."""
        spent = time.monotonic() - run.started
        self.elapsed[run.key] = self.elapsed.get(run.key, 0.0) + spent
        return spent

    def _requeue_in_flight(self) -> None:
        """Return in-flight cells to the queue after a deliberate
        teardown (timeout) whose cause is known.  The requeued cells
        never ran to completion, so their retry budget is untouched.
        """
        for run in self.in_flight.values():
            self._charge_elapsed(run)
            self.queue.append((run.policy, run.capacity, run.attempt))
        self.in_flight.clear()

    def _suspect_in_flight(self) -> None:
        """Move every in-flight cell to the isolation queue, uncharged.

        Used when the pool breaks and blame is ambiguous: the suspects
        rerun one at a time so the actual crasher convicts itself.
        """
        for run in self.in_flight.values():
            self._charge_elapsed(run)
            self.isolation.append((run.policy, run.capacity,
                                   run.attempt))
        self.in_flight.clear()
        self.isolated = None

    # -- outcome handling -------------------------------------------------

    def _retry_or_fail(self, run: _CellRun, exc: Exception,
                       isolate: bool = False) -> None:
        """Charge a failed attempt; requeue the cell or record a loss.

        ``isolate`` requeues the retry into the isolation queue so a
        known crasher keeps running alone instead of taking fresh
        neighbours down with it.
        """
        transient = isinstance(exc, (WorkerCrashError, CellTimeoutError,
                                     BrokenProcessPool))
        if transient and run.attempt < self.retry_policy.max_attempts:
            delay = self.retry_policy.delay(run.attempt)
            self.emit("cell_retried", key=run.key, attempt=run.attempt,
                      error_type=type(exc).__name__,
                      delay_seconds=delay)
            _logger.warning(
                "cell %s attempt %d failed (%s); retrying",
                run.key, run.attempt, type(exc).__name__,
                extra={"key": run.key, "attempt": run.attempt,
                       "error_type": type(exc).__name__})
            self.sleep(delay)
            target = self.isolation if isolate else self.queue
            target.append((run.policy, run.capacity, run.attempt + 1))
            return
        self.emit("cell_failed", key=run.key, attempts=run.attempt,
                  error_type=type(exc).__name__, message=str(exc))
        _logger.error("cell %s failed permanently after %d attempt(s): "
                      "%s", run.key, run.attempt, exc,
                      extra={"key": run.key, "attempts": run.attempt,
                             "error_type": type(exc).__name__})
        if self.failure_policy == "raise":
            raise exc
        self.failures.append(FailureRecord(
            policy=run.policy,
            capacity_bytes=run.capacity,
            attempts=run.attempt,
            error_type=type(exc).__name__,
            message=str(exc),
            duration_seconds=round(self.elapsed.get(run.key, 0.0), 6),
        ))

    def _handle_done(self, future, sweep: SweepResult) -> bool:
        """Process one finished future; True if the pool broke."""
        run = self.in_flight.pop(future)
        self._charge_elapsed(run)
        was_isolated = run is self.isolated
        if was_isolated:
            self.isolated = None
        try:
            payload = future.result()
        except BrokenProcessPool as exc:
            # The pool is gone; every other in-flight future is doomed
            # too.  A cell that was running alone is provably the
            # crasher and gets charged; otherwise blame is ambiguous,
            # so the cell joins the isolation queue uncharged.
            if was_isolated:
                self._retry_or_fail(run, WorkerCrashError(
                    f"worker process died while running cell "
                    f"{run.key!r} (attempt {run.attempt}): {exc}"),
                    isolate=True)
            else:
                self.isolation.append((run.policy, run.capacity,
                                       run.attempt))
            return True
        except (WorkerCrashError, CellTimeoutError) as exc:
            self._retry_or_fail(run, exc)
            return False
        except Exception as exc:
            # Deterministic error from the cell itself (bad config, a
            # policy bug, injected non-transient failure): retrying
            # would fail identically.
            self._retry_or_fail(run, exc)
            return False
        try:
            result = _deserialize(payload, run.key)
        except WorkerCrashError as exc:
            self._retry_or_fail(run, exc)
        else:
            result.duration_seconds = self.elapsed.get(run.key, 0.0)
            result.attempts = run.attempt
            sweep.add(result)
            self.on_cell_done(run.policy, run.capacity, payload)
            self.emit("cell_finished", key=run.key, attempt=run.attempt,
                      duration_seconds=round(result.duration_seconds,
                                             6))
        return False

    def _check_timeouts(self) -> bool:
        """Kill the pool if any cell is past its budget; True if so."""
        if self.cell_timeout is None:
            return False
        now = time.monotonic()
        hung = [(future, run) for future, run in self.in_flight.items()
                if not future.done()
                and now - run.started > self.cell_timeout]
        if not hung:
            return False
        # Tear down once, then charge every hung cell.  Non-hung
        # neighbours are requeued without losing budget.
        hung_runs = {run for _, run in hung}
        for future, run in list(self.in_flight.items()):
            if run in hung_runs:
                del self.in_flight[future]
        if self.isolated in hung_runs:
            self.isolated = None
        for _, run in hung:
            self._charge_elapsed(run)
            self.emit("cell_timed_out", key=run.key,
                      attempt=run.attempt,
                      timeout_seconds=self.cell_timeout)
        self._requeue_in_flight()
        self._rebuild_pool(reason="cell timeout")
        for _, run in hung:
            self._retry_or_fail(run, CellTimeoutError(
                f"cell {run.key!r} exceeded {self.cell_timeout:g}s "
                f"on attempt {run.attempt}",
                timeout_seconds=self.cell_timeout))
        return True

    # -- main loop --------------------------------------------------------

    def _submit_next(self) -> None:
        """Top up the pool: isolation suspects run strictly alone, the
        normal queue fills up to ``n_workers`` in-flight cells."""
        while len(self.in_flight) < self.n_workers:
            if self.isolated is not None:
                return  # an isolated cell is running; nothing else may
            if self.isolation:
                if self.in_flight:
                    return  # drain neighbours before isolating
                policy, capacity, attempt = self.isolation.popleft()
                isolate = True
            elif self.queue:
                policy, capacity, attempt = self.queue.popleft()
                isolate = False
            else:
                return
            key = cell_key(policy, capacity)
            try:
                future = self.pool.submit(
                    _run_cell,
                    (policy, capacity, self.warmup_fraction,
                     self.size_interpretation.value, attempt,
                     _profile_path(self.profile_dir, key, attempt)))
            except BrokenProcessPool:
                # Worker died between polls; nothing was submitted, so
                # no attempt is charged.
                target = self.isolation if isolate else self.queue
                target.appendleft((policy, capacity, attempt))
                self._suspect_in_flight()
                self._rebuild_pool()
                continue
            self.emit("cell_scheduled", key=key, attempt=attempt)
            run = _CellRun(policy, capacity, attempt, time.monotonic())
            self.in_flight[future] = run
            if isolate:
                self.isolated = run

    def run(self, sweep: SweepResult) -> None:
        self.pool = self._new_pool()
        try:
            while self.queue or self.isolation or self.in_flight:
                self._submit_next()
                if not self.in_flight:
                    continue
                done, _ = wait(set(self.in_flight),
                               timeout=_POLL_SECONDS,
                               return_when=FIRST_COMPLETED)
                broke = False
                for future in done:
                    if future in self.in_flight:
                        broke = self._handle_done(future, sweep) or broke
                if broke:
                    self._suspect_in_flight()
                    self._rebuild_pool()
                    continue
                self._check_timeouts()
        finally:
            if self.pool is not None:
                _terminate_pool(self.pool)
        sweep.failures.extend(self.failures)
