"""Fault-tolerant parallel cache-size sweeps.

A full figure regeneration at paper scale is ~30 independent
(policy, capacity) simulations over millions of requests; they share
nothing but the read-only trace, so a process pool gives near-linear
speedup.  The trace is shipped to each worker once (pool initializer),
not once per cell.

The unit of scheduling is a **batch** of cells.  With
``engine="percell"`` every batch holds one cell — the classic layout,
one trace pass per cell.  With ``engine="batched"`` the grid is
partitioned into ``cells_per_pass``-sized batches and each worker runs
its whole batch over **one** shared trace pass via
:func:`repro.simulation.engine.run_cells`, so a worker pays the trace
tax once per batch instead of once per cell.  Either way the results
are bit-identical.

Because every cell is a pure function of its config and the trace, a
failed batch can simply be rerun: the scheduler submits batches as
individual futures, retries transient failures (worker crashes, hangs
past the batch's timeout budget, corrupt payloads) with a bounded
deterministic backoff, and rebuilds the pool when a dead worker breaks
it — resubmitting only the unfinished batches.  Telemetry events,
checkpoints, and ``failure_policy="partial"``
:class:`~repro.simulation.results.FailureRecord`\\ s all stay
**per cell** regardless of batching, so a resumed or partially failed
grid has the same cell-by-cell lifecycle either way.

Results are bit-identical to :func:`repro.simulation.sweep.run_sweep`
— every policy is deterministic, and retries rerun the identical
computation — which the tests assert, fault injection included.
"""

from __future__ import annotations

import math
import os
import re
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    CellTimeoutError,
    ConfigurationError,
    SimulationError,
    WorkerCrashError,
)
from repro.observability import events as _events
from repro.observability.logs import get_logger
from repro.observability.manifest import TelemetryRun
from repro.observability.profiling import maybe_profile
from repro.observability.trace import span as _span
from repro.resilience.checkpoint import CheckpointStore, config_hash
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.simulation.engine import run_cells
from repro.simulation.results import (
    FailureRecord,
    SimulationResult,
    SweepResult,
)
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
)
from repro.types import Request, Trace

#: How long the scheduler sleeps in ``wait()`` before re-checking
#: deadlines; kept short so cell timeouts are detected promptly.
_POLL_SECONDS = 0.1

#: Accepted values for ``failure_policy``.
FAILURE_POLICIES = ("raise", "partial")

#: Accepted values for ``engine``.
ENGINES = ("percell", "batched")

# Per-worker state, populated by the pool initializer.  The trace is
# either a materialized Trace (request list shipped by pickle) or a
# ColumnarTrace each worker mmaps itself from a shipped path string —
# the kernel page cache then backs every worker with one copy.
_worker_trace = None
_worker_materialized: Optional[Trace] = None
_worker_injector: Optional[FaultInjector] = None

_logger = get_logger("simulation.parallel")


def cell_key(policy_name: str, capacity: int) -> str:
    """Stable identity of one sweep cell (also the fault-spec key)."""
    return f"{policy_name}@{capacity}"


def batch_key(cells: Sequence[Tuple[str, int]]) -> str:
    """Stable identity of one scheduled batch; equals the cell key for
    the singleton batches the per-cell engine produces."""
    if len(cells) == 1:
        return cell_key(*cells[0])
    return (f"pass[{cell_key(*cells[0])}.."
            f"{cell_key(*cells[-1])}#{len(cells)}]")


def partition_cells(cells: Sequence[Tuple[str, int]], engine: str,
                    n_workers: int,
                    cells_per_pass: Optional[int] = None,
                    ) -> List[Tuple[Tuple[str, int], ...]]:
    """Split the grid into scheduling batches.

    ``percell`` yields singleton batches (one trace pass per cell);
    ``batched`` yields contiguous chunks of ``cells_per_pass`` cells,
    defaulting to an even split across the workers so one round of
    passes covers the grid.
    """
    if engine == "percell":
        return [(cell,) for cell in cells]
    if cells_per_pass is None:
        cells_per_pass = max(1, math.ceil(len(cells) / n_workers))
    return [tuple(cells[i:i + cells_per_pass])
            for i in range(0, len(cells), cells_per_pass)]


def _profile_path(profile_dir: Optional[str], key: str,
                  attempt: int) -> Optional[str]:
    """Per-(cell, attempt) cProfile dump path; None when disabled."""
    if not profile_dir:
        return None
    safe = re.sub(r"[^A-Za-z0-9_.@-]+", "_", key)
    return str(Path(profile_dir) / f"{safe}.attempt{attempt}.prof")


def _init_worker(trace_source, name: str,
                 injector: Optional[FaultInjector] = None) -> None:
    """Arm a worker with the sweep's trace.

    ``trace_source`` is either a request sequence (shipped via pickle)
    or a path string to a columnar trace, which the worker mmaps
    itself — no per-worker decode, no per-worker copy.
    """
    global _worker_trace, _worker_materialized, _worker_injector
    if isinstance(trace_source, (str, Path)):
        from repro.trace.columnar import open_columnar

        _worker_trace = open_columnar(trace_source, verify=False)
        _worker_trace.name = name
    else:
        _worker_trace = Trace(trace_source, name=name)
    _worker_materialized = None
    _worker_injector = injector
    # Fork-started workers inherit the parent's process-wide event
    # sink, including its open events.jsonl handle and a stale copy of
    # its seq counter; anything the worker emitted (e.g. the shared
    # pass lifecycle from run_cells) would interleave out-of-sequence
    # records into the parent's telemetry.  Cell lifecycle events are
    # the parent's job, so workers write nowhere.
    _events.set_event_sink(None)


def _run_cell(cell: Tuple[str, int, float, str, int]) -> dict:
    policy_name, capacity, warmup_fraction, interpretation, attempt = \
        cell[:5]
    profile_path = cell[5] if len(cell) > 5 else None
    return _run_batch((((policy_name, capacity),), warmup_fraction,
                       interpretation, attempt, profile_path,
                       "percell"))[0]


def _run_batch(batch: tuple) -> List[dict]:
    """Run one batch of cells in a worker; one payload per cell.

    ``batch`` is ``(cells, warmup_fraction, interpretation, attempt,
    profile_path, engine)`` with ``cells`` a tuple of
    ``(policy_name, capacity)`` pairs.  The batched engine runs the
    whole batch over one shared trace pass; per-cell the batch is a
    singleton and replays the classic simulator loop.
    """
    cells, warmup_fraction, interpretation, attempt, profile_path, \
        engine = batch
    keys = [cell_key(policy_name, capacity)
            for policy_name, capacity in cells]
    if _worker_injector is not None:
        for key in keys:
            _worker_injector.on_start(key, attempt)
    if _worker_trace is None:
        raise SimulationError(
            f"worker has no trace for batch {batch_key(cells)!r}: the "
            "process pool was created without the _init_worker "
            "initializer")
    configs = [
        SimulationConfig(
            capacity_bytes=capacity,
            policy=policy_name,
            warmup_fraction=warmup_fraction,
            size_interpretation=SizeInterpretation(interpretation),
        )
        for policy_name, capacity in cells
    ]
    with maybe_profile(profile_path):
        if engine == "batched":
            results = run_cells(_worker_trace, configs)
        else:
            results = [CacheSimulator(config).run(_percell_trace())
                       for config in configs]
    payloads = [result.as_dict() for result in results]
    if _worker_injector is not None:
        payloads = [_worker_injector.on_result(key, attempt, payload)
                    for key, payload in zip(keys, payloads)]
    return payloads


def _percell_trace() -> Trace:
    """The worker trace as Request objects, decoded at most once.

    The classic per-cell loop wants a materialized Trace; a columnar
    worker trace is decoded on first use and cached for every later
    cell this process runs.
    """
    global _worker_materialized
    if isinstance(_worker_trace, Trace):
        return _worker_trace
    if _worker_materialized is None:
        _worker_materialized = Trace(_worker_trace.iter_requests(),
                                     name=_worker_trace.name)
    return _worker_materialized


def _reset_worker() -> None:
    global _worker_trace, _worker_materialized, _worker_injector
    _worker_trace = None
    _worker_materialized = None
    _worker_injector = None


def _deserialize(payload: object, key: str) -> SimulationResult:
    """Parse a worker payload, mapping corruption to a transient error."""
    try:
        return SimulationResult.from_dict(payload)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WorkerCrashError(
            f"worker returned corrupt payload for cell {key!r}: "
            f"{type(exc).__name__}: {exc}") from exc


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even if its workers are hung or dead.

    A graceful ``shutdown(wait=True)`` would block behind a hung cell,
    so kill the worker processes first.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        if process.is_alive():
            process.terminate()
    pool.shutdown(wait=True, cancel_futures=True)


class _BatchRun:
    """Bookkeeping for one in-flight (batch, attempt) submission."""

    __slots__ = ("cells", "attempt", "started")

    def __init__(self, cells: Tuple[Tuple[str, int], ...], attempt: int,
                 started: float):
        self.cells = cells
        self.attempt = attempt
        self.started = started

    @property
    def key(self) -> str:
        return batch_key(self.cells)

    @property
    def cell_keys(self) -> List[str]:
        return [cell_key(policy, capacity)
                for policy, capacity in self.cells]


def run_sweep_parallel(trace,
                       policies: Iterable[str],
                       capacities: Sequence[int],
                       warmup_fraction: float = 0.10,
                       size_interpretation: SizeInterpretation =
                       SizeInterpretation.TRUSTED,
                       n_workers: Optional[int] = None,
                       *,
                       engine: str = "percell",
                       cells_per_pass: Optional[int] = None,
                       max_retries: int = 2,
                       cell_timeout: Optional[float] = None,
                       failure_policy: str = "raise",
                       retry_policy: Optional[RetryPolicy] = None,
                       fault_injector: Optional[FaultInjector] = None,
                       checkpoint_store: Optional[CheckpointStore] = None,
                       telemetry_dir=None,
                       events=None,
                       profile_dir=None,
                       sleep=time.sleep) -> SweepResult:
    """Run the (policy × capacity) grid across worker processes.

    Positional args match :func:`~repro.simulation.sweep.run_sweep`
    (minus the per-cell callbacks, which cannot cross process
    boundaries); ``n_workers`` defaults to the CPU count capped by the
    cell count.  ``trace`` may be a :class:`~repro.types.Trace`, a
    :class:`~repro.trace.columnar.ColumnarTrace`, or a columnar file
    path: columnar sweeps ship only the *path* to workers, which mmap
    the file themselves — one kernel page-cache copy serves the whole
    pool, and each worker decodes at most once (batched passes consume
    the columns directly and never decode at all).

    Keyword-only knobs:

    Args:
        engine: ``"percell"`` ships one cell per task (the classic
            layout); ``"batched"`` ships batches of cells that each
            ride **one** shared trace pass in their worker
            (:func:`repro.simulation.engine.run_cells`).  Results are
            bit-identical; telemetry events, checkpoints, and failure
            records stay per cell either way.
        cells_per_pass: Batch size for the batched engine; defaults to
            an even split of the grid across the workers.  Ignored for
            per-cell.
        max_retries: Reruns allowed per batch for *transient* failures
            (worker crash, timeout, corrupt payload).  Deterministic
            errors from the cells themselves are never retried.
        cell_timeout: Per-cell wall-clock budget in seconds; a batch
            past ``cell_timeout × len(batch)`` has its worker killed
            and counts as a transient failure.  ``None`` disables
            timeouts.
        failure_policy: ``"raise"`` (default) re-raises the first
            permanently failed cell; ``"partial"`` returns whatever
            completed, with a :class:`FailureRecord` per lost cell on
            ``SweepResult.failures``.
        retry_policy: Full backoff schedule; defaults to
            ``RetryPolicy(max_retries=max_retries, base_delay=0)``
            (immediate resubmission — cells are CPU-bound and
            deterministic, so waiting buys nothing by default).
        fault_injector: Deterministic chaos plan shipped to workers
            (see :mod:`repro.resilience.faults`); used by the tests to
            prove the machinery above works.
        checkpoint_store: Optional
            :class:`~repro.resilience.checkpoint.CheckpointStore`.
            Each completed cell is persisted as it finishes, and cells
            already checkpointed under the same sweep config are
            loaded instead of rerun — an interrupted grid resumes
            from where it stopped.
        telemetry_dir: When set, the sweep writes its own
            ``manifest.json`` + ``events.jsonl`` telemetry directory
            (see :mod:`repro.observability.manifest`).
        events: An :class:`~repro.observability.events.EventLog` to
            emit cell lifecycle events into, for callers (like
            ``run_suite``) that already own a telemetry run.  Without
            it (and without ``telemetry_dir``) events go to the
            process-wide sink, a no-op by default.
        profile_dir: When set, each cell attempt is run under cProfile
            in its worker and dumps ``<cell>.attempt<n>.prof`` here.
        sleep: Injectable sleep used for retry backoff.
    """
    if isinstance(trace, (str, Path)):
        from repro.trace.columnar import is_columnar_file, open_columnar

        path = Path(trace)
        if is_columnar_file(path):
            trace = open_columnar(path, verify=False)
        else:
            from repro.trace.pipeline import load_trace

            trace = load_trace(path)
    columnar_path: Optional[str] = None
    if getattr(trace, "is_columnar", False):
        columnar_path = str(trace.path)
    total_requests = (len(trace.requests) if isinstance(trace, Trace)
                      else len(trace))
    cells: List[Tuple[str, int]] = [
        (policy_name, capacity)
        for policy_name in policies
        for capacity in capacities
    ]
    if not cells:
        raise ConfigurationError("empty sweep grid")
    if engine not in ENGINES:
        raise ConfigurationError(
            f"engine must be one of {ENGINES}, got {engine!r}")
    if cells_per_pass is not None and cells_per_pass <= 0:
        raise ConfigurationError("cells_per_pass must be positive")
    if failure_policy not in FAILURE_POLICIES:
        raise ConfigurationError(
            f"failure_policy must be one of {FAILURE_POLICIES}, "
            f"got {failure_policy!r}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ConfigurationError("cell_timeout must be positive")
    if retry_policy is None:
        retry_policy = RetryPolicy(max_retries=max_retries,
                                   base_delay=0.0)
    if n_workers is None:
        n_workers = min(os.cpu_count() or 1, len(cells))
    n_workers = max(min(n_workers, len(cells)), 1)

    sweep = SweepResult(trace_name=trace.name)

    telemetry: Optional[TelemetryRun] = None
    if telemetry_dir is not None and events is None:
        telemetry = TelemetryRun(
            telemetry_dir, kind="sweep",
            settings={
                "trace": trace.name,
                "policies": list(dict.fromkeys(p for p, _ in cells)),
                "capacities": list(capacities),
                "warmup_fraction": warmup_fraction,
                "size_interpretation": size_interpretation.value,
                "n_workers": n_workers,
                "engine": engine,
                "cells_per_pass": cells_per_pass,
                "max_retries": max_retries,
                "cell_timeout": cell_timeout,
                "failure_policy": failure_policy,
            },
            install_sink=False)
        events = telemetry.events
    emit = events.emit if events is not None else _events.emit

    sweep_span = _span("sweep", trace=trace.name, cells=len(cells),
                       workers=n_workers, engine=engine)

    def _finish() -> SweepResult:
        sweep_span.set_attribute("failures", len(sweep.failures))
        sweep_span.end()
        if telemetry is not None:
            telemetry.finalize(
                "partial" if sweep.failures else "complete")
        return sweep

    try:
        # Cells already checkpointed under this exact sweep config are
        # adopted instead of rerun; the rest of the grid proceeds
        # normally.
        sweep_digest = None
        if checkpoint_store is not None:
            sweep_digest = config_hash({
                "trace": trace.name,
                "requests": total_requests,
                "warmup_fraction": warmup_fraction,
                "size_interpretation": size_interpretation.value,
            })
            done_payloads = checkpoint_store.completed(sweep_digest)
            remaining = []
            for policy_name, capacity in cells:
                key = cell_key(policy_name, capacity)
                payload = done_payloads.get(key)
                if payload is not None:
                    try:
                        sweep.add(_deserialize(payload, key))
                    except WorkerCrashError:
                        pass  # unreadable checkpoint: rerun the cell
                    else:
                        emit("cell_checkpoint_restored", key=key)
                        continue
                remaining.append((policy_name, capacity))
            cells = remaining
            if not cells:
                return _finish()

        def _checkpoint_cell(policy_name: str, capacity: int,
                             payload: dict) -> None:
            if checkpoint_store is not None:
                checkpoint_store.save(cell_key(policy_name, capacity),
                                      payload, sweep_digest)

        batches = partition_cells(cells, engine, n_workers,
                                  cells_per_pass)

        if (n_workers == 1 and cell_timeout is None
                and fault_injector is None):
            # No pool overhead for the degenerate case (and nothing to
            # time out or inject into).
            _init_worker(columnar_path if columnar_path is not None
                         else trace.requests, trace.name)
            try:
                for batch_cells in batches:
                    keys = [cell_key(policy_name, capacity)
                            for policy_name, capacity in batch_cells]
                    for key in keys:
                        emit("cell_scheduled", key=key, attempt=1)
                    started = time.monotonic()
                    payloads = _run_batch(
                        (batch_cells, warmup_fraction,
                         size_interpretation.value, 1,
                         _profile_path(profile_dir,
                                       batch_key(batch_cells), 1),
                         engine))
                    elapsed = time.monotonic() - started
                    for (policy_name, capacity), key, payload in zip(
                            batch_cells, keys, payloads):
                        result = SimulationResult.from_dict(payload)
                        result.duration_seconds = elapsed
                        result.attempts = 1
                        sweep.add(result)
                        _checkpoint_cell(policy_name, capacity, payload)
                        emit("cell_finished", key=key, attempt=1,
                             duration_seconds=round(elapsed, 6))
            finally:
                _reset_worker()
            return _finish()

        _Scheduler(
            trace_source=(columnar_path if columnar_path is not None
                          else trace.requests),
            trace_name=trace.name,
            batches=batches,
            engine=engine,
            warmup_fraction=warmup_fraction,
            size_interpretation=size_interpretation,
            n_workers=max(min(n_workers, len(batches)), 1),
            retry_policy=retry_policy,
            cell_timeout=cell_timeout,
            failure_policy=failure_policy,
            fault_injector=fault_injector,
            on_cell_done=_checkpoint_cell,
            emit=emit,
            profile_dir=profile_dir,
            sleep=sleep,
        ).run(sweep)
        return _finish()
    except BaseException:
        sweep_span.end("error")
        if telemetry is not None:
            telemetry.finalize("failed")
        raise


def supervise_workers(target, args: tuple = (), n_workers: int = 2, *,
                      max_restarts: int = 2,
                      poll_seconds: float = 0.05) -> List[dict]:
    """Run ``target(*args)`` in ``n_workers`` processes, restarting
    casualties.

    The durable experiment service uses this to keep its worker count
    up: a worker that dies abnormally (SIGKILL, OOM, an injected
    crash) is replaced up to ``max_restarts`` times — its half-done
    work is *not* resubmitted here, because the service's lease layer
    already re-queues it; supervision is purely about capacity.  A
    clean exit (code 0) means the worker drained the queue and is not
    replaced.

    Returns one summary dict per worker slot:
    ``{"worker": i, "exitcode": last, "restarts": n}``.
    """
    import multiprocessing

    if n_workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    context = multiprocessing.get_context()

    def _spawn() -> multiprocessing.Process:
        process = context.Process(target=target, args=args)
        process.start()
        return process

    processes = [_spawn() for _ in range(n_workers)]
    restarts = [0] * n_workers
    exitcodes: List[Optional[int]] = [None] * n_workers
    while any(process is not None for process in processes):
        for slot, process in enumerate(processes):
            if process is None or process.is_alive():
                continue
            process.join()
            exitcodes[slot] = process.exitcode
            if process.exitcode == 0 \
                    or restarts[slot] >= max_restarts:
                processes[slot] = None
                continue
            restarts[slot] += 1
            _events.emit("service_worker_restarted", worker=slot,
                         exitcode=process.exitcode,
                         restarts=restarts[slot])
            _logger.warning(
                "worker %d died with exit code %s; restarting "
                "(%d/%d)", slot, process.exitcode, restarts[slot],
                max_restarts,
                extra={"worker": slot, "exitcode": process.exitcode,
                       "restarts": restarts[slot]})
            processes[slot] = _spawn()
        time.sleep(poll_seconds)
    return [{"worker": slot, "exitcode": exitcodes[slot],
             "restarts": restarts[slot]}
            for slot in range(n_workers)]


class _Scheduler:
    """Submits batches as futures, retries transient failures, and
    rebuilds the pool when workers die or hang.

    Scheduling is per batch; events, checkpoints, and failure records
    are per cell.  A per-cell sweep has singleton batches, so its
    behavior is unchanged from the pre-batching scheduler.
    """

    def __init__(self, trace_source, trace_name, batches, engine,
                 warmup_fraction, size_interpretation, n_workers,
                 retry_policy, cell_timeout, failure_policy,
                 fault_injector, on_cell_done, emit, profile_dir,
                 sleep):
        self.trace_source = trace_source
        self.trace_name = trace_name
        self.engine = engine
        self.warmup_fraction = warmup_fraction
        self.size_interpretation = size_interpretation
        self.n_workers = n_workers
        self.retry_policy = retry_policy
        self.cell_timeout = cell_timeout
        self.failure_policy = failure_policy
        self.fault_injector = fault_injector
        self.on_cell_done = on_cell_done
        self.emit = emit
        self.profile_dir = profile_dir
        self.sleep = sleep
        #: Wall-clock seconds burned per batch key across attempts,
        #: including attempts that crashed or timed out.
        self.elapsed: Dict[str, float] = {}
        #: (batch_cells, attempt) runnable now.
        self.queue = deque((batch, 1) for batch in batches)
        #: Batches suspected of crashing a worker.  When a pool breaks
        #: with several batches in flight there is no way to tell which
        #: one killed it, so none is charged; instead they all land
        #: here and rerun one at a time — a batch that breaks the pool
        #: while running alone is provably the crasher.
        self.isolation = deque()
        self.isolated: Optional[_BatchRun] = None
        self.in_flight: Dict[object, _BatchRun] = {}
        self.failures: List[FailureRecord] = []
        self.pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ---------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_worker,
            initargs=(self.trace_source, self.trace_name,
                      self.fault_injector))

    def _rebuild_pool(self, reason: str = "worker crash") -> None:
        if self.pool is not None:
            _terminate_pool(self.pool)
        self.pool = self._new_pool()
        self.emit("pool_rebuilt", reason=reason)
        _logger.warning("process pool rebuilt (%s)", reason,
                        extra={"reason": reason})

    def _charge_elapsed(self, run: _BatchRun) -> float:
        """Accumulate the wall clock a leaving in-flight run burned."""
        spent = time.monotonic() - run.started
        self.elapsed[run.key] = self.elapsed.get(run.key, 0.0) + spent
        return spent

    def _requeue_in_flight(self) -> None:
        """Return in-flight batches to the queue after a deliberate
        teardown (timeout) whose cause is known.  The requeued batches
        never ran to completion, so their retry budget is untouched.
        """
        for run in self.in_flight.values():
            self._charge_elapsed(run)
            self.queue.append((run.cells, run.attempt))
        self.in_flight.clear()

    def _suspect_in_flight(self) -> None:
        """Move every in-flight batch to the isolation queue, uncharged.

        Used when the pool breaks and blame is ambiguous: the suspects
        rerun one at a time so the actual crasher convicts itself.
        """
        for run in self.in_flight.values():
            self._charge_elapsed(run)
            self.isolation.append((run.cells, run.attempt))
        self.in_flight.clear()
        self.isolated = None

    # -- outcome handling -------------------------------------------------

    def _retry_or_fail(self, run: _BatchRun, exc: Exception,
                       isolate: bool = False) -> None:
        """Charge a failed attempt; requeue the batch or record losses.

        ``isolate`` requeues the retry into the isolation queue so a
        known crasher keeps running alone instead of taking fresh
        neighbours down with it.  Permanent failures are recorded per
        cell, so a lost batch degrades exactly like the same cells
        failing individually.
        """
        transient = isinstance(exc, (WorkerCrashError, CellTimeoutError,
                                     BrokenProcessPool))
        if transient and run.attempt < self.retry_policy.max_attempts:
            delay = self.retry_policy.delay(run.attempt)
            for key in run.cell_keys:
                self.emit("cell_retried", key=key, attempt=run.attempt,
                          error_type=type(exc).__name__,
                          delay_seconds=delay)
            _logger.warning(
                "batch %s attempt %d failed (%s); retrying",
                run.key, run.attempt, type(exc).__name__,
                extra={"key": run.key, "attempt": run.attempt,
                       "error_type": type(exc).__name__})
            self.sleep(delay)
            target = self.isolation if isolate else self.queue
            target.append((run.cells, run.attempt + 1))
            return
        for key in run.cell_keys:
            self.emit("cell_failed", key=key, attempts=run.attempt,
                      error_type=type(exc).__name__, message=str(exc))
        _logger.error("batch %s failed permanently after %d attempt(s): "
                      "%s", run.key, run.attempt, exc,
                      extra={"key": run.key, "attempts": run.attempt,
                             "error_type": type(exc).__name__})
        if self.failure_policy == "raise":
            raise exc
        batch_elapsed = round(self.elapsed.get(run.key, 0.0), 6)
        for policy, capacity in run.cells:
            self.failures.append(FailureRecord(
                policy=policy,
                capacity_bytes=capacity,
                attempts=run.attempt,
                error_type=type(exc).__name__,
                message=str(exc),
                duration_seconds=batch_elapsed,
            ))

    def _handle_done(self, future, sweep: SweepResult) -> bool:
        """Process one finished future; True if the pool broke."""
        run = self.in_flight.pop(future)
        self._charge_elapsed(run)
        was_isolated = run is self.isolated
        if was_isolated:
            self.isolated = None
        try:
            payloads = future.result()
        except BrokenProcessPool as exc:
            # The pool is gone; every other in-flight future is doomed
            # too.  A batch that was running alone is provably the
            # crasher and gets charged; otherwise blame is ambiguous,
            # so the batch joins the isolation queue uncharged.
            if was_isolated:
                self._retry_or_fail(run, WorkerCrashError(
                    f"worker process died while running batch "
                    f"{run.key!r} (attempt {run.attempt}): {exc}"),
                    isolate=True)
            else:
                self.isolation.append((run.cells, run.attempt))
            return True
        except (WorkerCrashError, CellTimeoutError) as exc:
            self._retry_or_fail(run, exc)
            return False
        except Exception as exc:
            # Deterministic error from the cells themselves (bad
            # config, a policy bug, injected non-transient failure):
            # retrying would fail identically.
            self._retry_or_fail(run, exc)
            return False
        try:
            if (not isinstance(payloads, (list, tuple))
                    or len(payloads) != len(run.cells)):
                raise WorkerCrashError(
                    f"worker returned corrupt batch payload for "
                    f"{run.key!r}: expected {len(run.cells)} cell "
                    f"payload(s), got {type(payloads).__name__}")
            results = [_deserialize(payload, key)
                       for key, payload in zip(run.cell_keys, payloads)]
        except WorkerCrashError as exc:
            self._retry_or_fail(run, exc)
        else:
            batch_elapsed = self.elapsed.get(run.key, 0.0)
            for (policy, capacity), key, result, payload in zip(
                    run.cells, run.cell_keys, results, payloads):
                result.duration_seconds = batch_elapsed
                result.attempts = run.attempt
                sweep.add(result)
                self.on_cell_done(policy, capacity, payload)
                self.emit("cell_finished", key=key,
                          attempt=run.attempt,
                          duration_seconds=round(batch_elapsed, 6))
        return False

    def _batch_timeout(self, run: _BatchRun) -> float:
        """A batch's wall-clock budget scales with its cell count."""
        return self.cell_timeout * len(run.cells)

    def _check_timeouts(self) -> bool:
        """Kill the pool if any batch is past its budget; True if so."""
        if self.cell_timeout is None:
            return False
        now = time.monotonic()
        hung = [(future, run) for future, run in self.in_flight.items()
                if not future.done()
                and now - run.started > self._batch_timeout(run)]
        if not hung:
            return False
        # Tear down once, then charge every hung batch.  Non-hung
        # neighbours are requeued without losing budget.
        hung_runs = {run for _, run in hung}
        for future, run in list(self.in_flight.items()):
            if run in hung_runs:
                del self.in_flight[future]
        if self.isolated in hung_runs:
            self.isolated = None
        for _, run in hung:
            self._charge_elapsed(run)
            for key in run.cell_keys:
                self.emit("cell_timed_out", key=key,
                          attempt=run.attempt,
                          timeout_seconds=self._batch_timeout(run))
        self._requeue_in_flight()
        self._rebuild_pool(reason="cell timeout")
        for _, run in hung:
            self._retry_or_fail(run, CellTimeoutError(
                f"batch {run.key!r} exceeded "
                f"{self._batch_timeout(run):g}s on attempt "
                f"{run.attempt}",
                timeout_seconds=self._batch_timeout(run)))
        return True

    # -- main loop --------------------------------------------------------

    def _submit_next(self) -> None:
        """Top up the pool: isolation suspects run strictly alone, the
        normal queue fills up to ``n_workers`` in-flight batches."""
        while len(self.in_flight) < self.n_workers:
            if self.isolated is not None:
                return  # an isolated batch is running; nothing else may
            if self.isolation:
                if self.in_flight:
                    return  # drain neighbours before isolating
                cells, attempt = self.isolation.popleft()
                isolate = True
            elif self.queue:
                cells, attempt = self.queue.popleft()
                isolate = False
            else:
                return
            key = batch_key(cells)
            try:
                future = self.pool.submit(
                    _run_batch,
                    (cells, self.warmup_fraction,
                     self.size_interpretation.value, attempt,
                     _profile_path(self.profile_dir, key, attempt),
                     self.engine))
            except BrokenProcessPool:
                # Worker died between polls; nothing was submitted, so
                # no attempt is charged.
                target = self.isolation if isolate else self.queue
                target.appendleft((cells, attempt))
                self._suspect_in_flight()
                self._rebuild_pool()
                continue
            for policy, capacity in cells:
                self.emit("cell_scheduled",
                          key=cell_key(policy, capacity),
                          attempt=attempt)
            run = _BatchRun(cells, attempt, time.monotonic())
            self.in_flight[future] = run
            if isolate:
                self.isolated = run

    def run(self, sweep: SweepResult) -> None:
        self.pool = self._new_pool()
        try:
            while self.queue or self.isolation or self.in_flight:
                self._submit_next()
                if not self.in_flight:
                    continue
                done, _ = wait(set(self.in_flight),
                               timeout=_POLL_SECONDS,
                               return_when=FIRST_COMPLETED)
                broke = False
                for future in done:
                    if future in self.in_flight:
                        broke = self._handle_done(future, sweep) or broke
                if broke:
                    self._suspect_in_flight()
                    self._rebuild_pool()
                    continue
                self._check_timeouts()
        finally:
            if self.pool is not None:
                _terminate_pool(self.pool)
        sweep.failures.extend(self.failures)
