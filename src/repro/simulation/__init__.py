"""Trace-driven simulation of a single caching proxy (paper Section 4.1).

:class:`~repro.simulation.simulator.CacheSimulator` drives a request
stream through a :class:`~repro.core.cache.Cache`, with

* a warm-up phase covering the first 10 % of requests (cold-start
  misses excluded from all metrics);
* hit-rate and byte-hit-rate accounting broken down by document type
  (:mod:`~repro.simulation.metrics`);
* optional sampling of the cache's per-type occupancy over time for the
  Figure-1 adaptability analysis (:mod:`~repro.simulation.occupancy`);
* the paper's 5 %-delta modification/interruption rule, or its
  alternatives (:class:`~repro.simulation.simulator.SizeInterpretation`).

:func:`~repro.simulation.sweep.run_sweep` runs a policy × cache-size
grid, the shape of every performance figure in the paper.

The :mod:`~repro.simulation.engine` module underneath splits the
simulator into a once-per-pass reference stream and per-configuration
cache cells, so :func:`~repro.simulation.engine.run_cells` (and the
``engine="batched"`` mode of the sweep entry points) runs a whole grid
over one trace pass with bit-identical results.
"""

from repro.simulation.engine import CacheCell, ReferenceStream, run_cells
from repro.simulation.metrics import RateAccumulator, TypeMetrics
from repro.simulation.occupancy import OccupancySample, OccupancyTracker
from repro.simulation.results import (
    FailureRecord,
    SimulationResult,
    SweepResult,
)
from repro.simulation.simulator import (
    CacheSimulator,
    SimulationConfig,
    SizeInterpretation,
    simulate,
)
from repro.simulation.mesh import MeshConfig, MeshResult, MeshSimulator, simulate_mesh
from repro.simulation.parallel import cell_key, run_sweep_parallel
from repro.simulation.sweep import cache_sizes_from_fractions, run_sweep
from repro.simulation.freshness import FreshnessTracker, TTLModel
from repro.simulation.hierarchy import (
    HierarchyConfig,
    HierarchyResult,
    HierarchySimulator,
    simulate_hierarchy,
)

__all__ = [
    "RateAccumulator",
    "TypeMetrics",
    "OccupancySample",
    "OccupancyTracker",
    "SimulationResult",
    "SweepResult",
    "FailureRecord",
    "cell_key",
    "CacheCell",
    "ReferenceStream",
    "run_cells",
    "CacheSimulator",
    "SimulationConfig",
    "SizeInterpretation",
    "simulate",
    "cache_sizes_from_fractions",
    "run_sweep",
    "run_sweep_parallel",
    "TTLModel",
    "FreshnessTracker",
    "HierarchyConfig",
    "HierarchyResult",
    "HierarchySimulator",
    "simulate_hierarchy",
    "MeshConfig",
    "MeshResult",
    "MeshSimulator",
    "simulate_mesh",
]
