"""Simulation result containers and serialization."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.simulation.metrics import TypeMetrics
from repro.simulation.occupancy import OccupancyTracker
from repro.types import DocumentType

PathLike = Union[str, Path]


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes:
        policy: Policy display name (e.g. ``"gd*(p)"``).
        capacity_bytes: Cache capacity.
        trace_name: Name of the driving trace.
        total_requests: Requests in the trace, including warm-up.
        warmup_requests: Leading requests excluded from metrics.
        metrics: Post-warm-up hit/byte-hit accounting.
        occupancy: Optional per-type occupancy time series.
        evictions / invalidations / bypasses: Cache counters over the
            whole run (including warm-up).
        final_beta: GD* only — β estimate at end of run.
        ttl_expiries: Freshness-expiry count (None without a TTL model).
    """

    policy: str
    capacity_bytes: int
    trace_name: str = "trace"
    total_requests: int = 0
    warmup_requests: int = 0
    metrics: TypeMetrics = field(default_factory=TypeMetrics)
    occupancy: Optional[OccupancyTracker] = None
    evictions: int = 0
    invalidations: int = 0
    bypasses: int = 0
    final_beta: Optional[float] = None
    ttl_expiries: Optional[int] = None
    #: LatencyMetrics when the run was configured with a latency
    #: model; not serialized (derive from a rerun if needed).
    latency: Optional[object] = None
    #: Wall-clock seconds the producing runner spent on this cell
    #: (summed over attempts) and how many attempts it took.  Runtime
    #: execution annotations, deliberately excluded from ``as_dict`` so
    #: parallel and serial results stay bit-identical.
    duration_seconds: Optional[float] = None
    attempts: int = 1

    @property
    def counted_requests(self) -> int:
        return self.metrics.overall.requests

    def hit_rate(self, doc_type: DocumentType = None) -> float:
        return self.metrics.hit_rate(doc_type)

    def byte_hit_rate(self, doc_type: DocumentType = None) -> float:
        return self.metrics.byte_hit_rate(doc_type)

    def cost_savings_ratio(self, doc_type: DocumentType = None) -> float:
        """Fraction of retrieval cost avoided (needs a
        ``report_cost_model`` on the simulation config)."""
        return self.metrics.cost_savings_ratio(doc_type)

    def as_dict(self) -> dict:
        data = {
            "policy": self.policy,
            "capacity_bytes": self.capacity_bytes,
            "trace_name": self.trace_name,
            "total_requests": self.total_requests,
            "warmup_requests": self.warmup_requests,
            "metrics": self.metrics.as_dict(),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "bypasses": self.bypasses,
            "final_beta": self.final_beta,
            "ttl_expiries": self.ttl_expiries,
        }
        if self.occupancy is not None:
            data["occupancy"] = self.occupancy.as_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        result = cls(
            policy=data["policy"],
            capacity_bytes=data["capacity_bytes"],
            trace_name=data.get("trace_name", "trace"),
            total_requests=data.get("total_requests", 0),
            warmup_requests=data.get("warmup_requests", 0),
            metrics=TypeMetrics.from_dict(data["metrics"]),
            evictions=data.get("evictions", 0),
            invalidations=data.get("invalidations", 0),
            bypasses=data.get("bypasses", 0),
            final_beta=data.get("final_beta"),
            ttl_expiries=data.get("ttl_expiries"),
        )
        if "occupancy" in data:
            result.occupancy = OccupancyTracker.from_dict(data["occupancy"])
        return result

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.as_dict(), indent=2))

    @classmethod
    def load(cls, path: PathLike) -> "SimulationResult":
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass
class FailureRecord:
    """One sweep cell that could not be completed.

    Attached to a partial :class:`SweepResult` when the parallel
    runner is invoked with ``failure_policy="partial"``: instead of
    aborting the grid, the failed cell is documented with enough
    structure to rerun it later.
    """

    policy: str
    capacity_bytes: int
    attempts: int
    error_type: str
    message: str
    #: Wall-clock seconds burned on this cell across all attempts, so
    #: partial-failure reports show where the time went.
    duration_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "capacity_bytes": self.capacity_bytes,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "duration_seconds": self.duration_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(
            policy=data["policy"],
            capacity_bytes=data["capacity_bytes"],
            attempts=data.get("attempts", 1),
            error_type=data.get("error_type", "Exception"),
            message=data.get("message", ""),
            duration_seconds=data.get("duration_seconds", 0.0),
        )


@dataclass
class SweepResult:
    """Results of a policy × cache-size grid.

    ``grid[policy_name][capacity_bytes]`` is a
    :class:`SimulationResult`.  ``failures`` is empty for a complete
    sweep; a partial sweep (see ``failure_policy="partial"`` on the
    parallel runner) lists one :class:`FailureRecord` per unfinished
    cell.
    """

    trace_name: str
    grid: Dict[str, Dict[int, SimulationResult]] = field(
        default_factory=dict)
    failures: List[FailureRecord] = field(default_factory=list)

    def add(self, result: SimulationResult) -> None:
        self.grid.setdefault(result.policy, {})[
            result.capacity_bytes] = result

    def add_failure(self, failure: FailureRecord) -> None:
        self.failures.append(failure)

    @property
    def complete(self) -> bool:
        """True when no cell failed."""
        return not self.failures

    @property
    def policies(self) -> List[str]:
        return list(self.grid)

    @property
    def capacities(self) -> List[int]:
        sizes = set()
        for per_policy in self.grid.values():
            sizes.update(per_policy)
        return sorted(sizes)

    def series(self, policy: str, doc_type: DocumentType = None,
               byte_rate: bool = False) -> List[tuple]:
        """(capacity, rate) curve for one policy and document type."""
        per_policy = self.grid[policy]
        points = []
        for capacity in sorted(per_policy):
            result = per_policy[capacity]
            rate = (result.byte_hit_rate(doc_type) if byte_rate
                    else result.hit_rate(doc_type))
            points.append((capacity, rate))
        return points

    def as_dict(self) -> dict:
        data = {
            "trace_name": self.trace_name,
            "grid": {
                policy: {str(cap): result.as_dict()
                         for cap, result in per_policy.items()}
                for policy, per_policy in self.grid.items()
            },
        }
        if self.failures:
            data["failures"] = [f.as_dict() for f in self.failures]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        sweep = cls(trace_name=data["trace_name"])
        for policy, per_policy in data["grid"].items():
            for cap, raw in per_policy.items():
                sweep.grid.setdefault(policy, {})[int(cap)] = \
                    SimulationResult.from_dict(raw)
        for raw in data.get("failures", ()):
            sweep.add_failure(FailureRecord.from_dict(raw))
        return sweep

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.as_dict(), indent=2))

    @classmethod
    def load(cls, path: PathLike) -> "SweepResult":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_csv(self) -> str:
        """Tidy (long-format) CSV of the whole grid.

        One row per (policy, capacity, document type, metric):
        ``policy,capacity_bytes,doc_type,metric,value`` — the layout
        pandas/R plotting pipelines expect, with ``doc_type`` =
        ``overall`` for the aggregate rows.
        """
        from repro.types import DOCUMENT_TYPES

        lines = ["policy,capacity_bytes,doc_type,metric,value"]
        for policy in sorted(self.grid):
            for capacity in sorted(self.grid[policy]):
                result = self.grid[policy][capacity]
                groups = [("overall", None)]
                groups += [(t.value, t) for t in DOCUMENT_TYPES]
                for label, doc_type in groups:
                    lines.append(
                        f"{policy},{capacity},{label},hit_rate,"
                        f"{result.hit_rate(doc_type):.6g}")
                    lines.append(
                        f"{policy},{capacity},{label},byte_hit_rate,"
                        f"{result.byte_hit_rate(doc_type):.6g}")
        return "\n".join(lines) + "\n"

    def save_csv(self, path: PathLike) -> None:
        Path(path).write_text(self.to_csv())
