"""Hit-rate and byte-hit-rate accounting, per document type.

The paper's two performance measures:

* **hit rate** — hits / requests (the constant-cost objective);
* **byte hit rate** — bytes served from cache / bytes requested (the
  packet-cost objective).

Both are computed overall *and* per document type: "the hit rate on
images is calculated as the ratio between the number of hits on images
and the number of requested images."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.types import DOCUMENT_TYPES, DocumentType, Request


def measured_transfer(request: Request) -> int:
    """Bytes that cross the wire for one request.

    Interrupted transfers log fewer bytes than the document holds;
    both the hit and the miss move at most the document itself.  Every
    accounting site — single cache, hierarchy level, mesh proxy,
    network node — must clamp identically or byte-hit rates stop being
    comparable across engines.
    """
    return min(request.transfer_size, request.size)


def record_reference(metrics: "TypeMetrics", request: Request,
                     hit: bool, cost: float = 0.0) -> int:
    """Account one reference into a :class:`TypeMetrics`.

    The one-line pattern every simulator loop used to hand-copy
    (clamp the transfer, record under the request's document type),
    centralized so multi-cache engines cannot drift from the
    single-cache accounting.  Returns the clamped transfer so callers
    recording the same request into several populations (per-node,
    per-level, network-wide) clamp exactly once.
    """
    transfer = measured_transfer(request)
    metrics.record(request.doc_type, hit, transfer, cost)
    return transfer


@dataclass
class RateAccumulator:
    """Hit/byte-hit (and optional cost-savings) counters for one
    request population.

    The cost fields are only populated when the simulator is given a
    ``report_cost_model``: ``requested_cost`` accumulates c(p) over
    all requests and ``saved_cost`` over hits, so
    :attr:`cost_savings_ratio` is exactly the objective a Greedy-Dual
    policy under that cost model maximizes.
    """

    requests: int = 0
    hits: int = 0
    requested_bytes: int = 0
    hit_bytes: int = 0
    requested_cost: float = 0.0
    saved_cost: float = 0.0

    def record(self, hit: bool, transfer_bytes: int,
               cost: float = 0.0) -> None:
        self.requests += 1
        self.requested_bytes += transfer_bytes
        self.requested_cost += cost
        if hit:
            self.hits += 1
            self.hit_bytes += transfer_bytes
            self.saved_cost += cost

    @property
    def hit_rate(self) -> float:
        """Hits / requests; 0.0 for an empty population."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        """Hit bytes / requested bytes; 0.0 for an empty population."""
        if not self.requested_bytes:
            return 0.0
        return self.hit_bytes / self.requested_bytes

    @property
    def cost_savings_ratio(self) -> float:
        """Saved cost / total cost; 0.0 without cost accounting."""
        if not self.requested_cost:
            return 0.0
        return self.saved_cost / self.requested_cost

    def merge(self, other: "RateAccumulator") -> None:
        self.requests += other.requests
        self.hits += other.hits
        self.requested_bytes += other.requested_bytes
        self.hit_bytes += other.hit_bytes
        self.requested_cost += other.requested_cost
        self.saved_cost += other.saved_cost

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "requested_bytes": self.requested_bytes,
            "hit_bytes": self.hit_bytes,
            "requested_cost": self.requested_cost,
            "saved_cost": self.saved_cost,
            "hit_rate": self.hit_rate,
            "byte_hit_rate": self.byte_hit_rate,
            "cost_savings_ratio": self.cost_savings_ratio,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "RateAccumulator":
        return cls(
            requests=int(data["requests"]),
            hits=int(data["hits"]),
            requested_bytes=int(data["requested_bytes"]),
            hit_bytes=int(data["hit_bytes"]),
            requested_cost=float(data.get("requested_cost", 0.0)),
            saved_cost=float(data.get("saved_cost", 0.0)),
        )


@dataclass
class TypeMetrics:
    """Overall plus per-document-type rate accumulators."""

    overall: RateAccumulator = field(default_factory=RateAccumulator)
    by_type: Dict[DocumentType, RateAccumulator] = field(
        default_factory=lambda: {t: RateAccumulator()
                                 for t in DOCUMENT_TYPES})

    def record(self, doc_type: DocumentType, hit: bool,
               transfer_bytes: int, cost: float = 0.0) -> None:
        self.overall.record(hit, transfer_bytes, cost)
        self.by_type[doc_type].record(hit, transfer_bytes, cost)

    def hit_rate(self, doc_type: DocumentType = None) -> float:
        if doc_type is None:
            return self.overall.hit_rate
        return self.by_type[doc_type].hit_rate

    def byte_hit_rate(self, doc_type: DocumentType = None) -> float:
        if doc_type is None:
            return self.overall.byte_hit_rate
        return self.by_type[doc_type].byte_hit_rate

    def cost_savings_ratio(self, doc_type: DocumentType = None) -> float:
        if doc_type is None:
            return self.overall.cost_savings_ratio
        return self.by_type[doc_type].cost_savings_ratio

    def merge(self, other: "TypeMetrics") -> None:
        """Fold another population into this one (integer sums, so
        merging per-node accumulators is exactly the single shared
        accumulator the legacy loops kept)."""
        self.overall.merge(other.overall)
        for doc_type, acc in other.by_type.items():
            mine = self.by_type.get(doc_type)
            if mine is None:
                mine = self.by_type[doc_type] = RateAccumulator()
            mine.merge(acc)

    def as_dict(self) -> dict:
        return {
            "overall": self.overall.as_dict(),
            "by_type": {t.value: acc.as_dict()
                        for t, acc in self.by_type.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TypeMetrics":
        metrics = cls(overall=RateAccumulator.from_dict(data["overall"]))
        for name, acc in data["by_type"].items():
            metrics.by_type[DocumentType(name)] = \
                RateAccumulator.from_dict(acc)
        return metrics
