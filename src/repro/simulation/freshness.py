"""Document freshness (TTL) modeling.

The paper handles consistency through observed *modifications* (size
changes).  Real proxies also enforce freshness proactively: a cached
copy older than its time-to-live is revalidated or refetched even if
the document never changed.  :class:`TTLModel` adds that behaviour to
the simulator as an orthogonal knob, so the cost of conservative
freshness policies can be quantified against the paper's
modification-only baseline (every TTL expiry of an *unmodified*
document is a wasted miss).

Per-type TTLs reflect practice: images and archives are immutable for
days; HTML pages are given short lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError
from repro.types import DocumentType

#: TTL value meaning "never expires".
NEVER_EXPIRES = float("inf")


@dataclass
class TTLModel:
    """Per-document-type time-to-live, in trace-time seconds.

    ``default_ttl`` applies to types absent from ``per_type``.
    """

    default_ttl: float = NEVER_EXPIRES
    per_type: Dict[DocumentType, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.default_ttl <= 0:
            raise ConfigurationError("default_ttl must be positive")
        for doc_type, ttl in self.per_type.items():
            if ttl <= 0:
                raise ConfigurationError(
                    f"ttl for {doc_type.value} must be positive")

    def ttl_for(self, doc_type: DocumentType) -> float:
        return self.per_type.get(doc_type, self.default_ttl)

    def is_fresh(self, doc_type: DocumentType, fetched_at: float,
                 now: float) -> bool:
        """True when a copy fetched at ``fetched_at`` is still usable."""
        return (now - fetched_at) <= self.ttl_for(doc_type)

    @classmethod
    def typical_proxy(cls) -> "TTLModel":
        """A Squid-flavoured default: short HTML lifetimes, long
        lifetimes for static media."""
        hour, day = 3600.0, 86_400.0
        return cls(default_ttl=day, per_type={
            DocumentType.HTML: 6 * hour,
            DocumentType.IMAGE: 3 * day,
            DocumentType.MULTIMEDIA: 7 * day,
            DocumentType.APPLICATION: 7 * day,
            DocumentType.OTHER: day,
        })


class FreshnessTracker:
    """Tracks fetch times and classifies expiry misses.

    The simulator consults :meth:`expired` on every cache hit; when the
    copy is stale by TTL, the simulator invalidates it and counts a
    miss, and this tracker counts the expiry (separately from true
    modification misses, so the "wasted freshness misses" statistic is
    directly readable).
    """

    def __init__(self, model: TTLModel):
        self.model = model
        self._fetched_at: Dict[str, float] = {}
        self.expiries = 0

    def on_fetch(self, url: str, now: float) -> None:
        """Record that the document was (re)fetched at ``now``."""
        self._fetched_at[url] = now

    def expired(self, url: str, doc_type: DocumentType,
                now: float) -> bool:
        """Check (and count) TTL expiry of a resident copy."""
        fetched = self._fetched_at.get(url)
        if fetched is None:
            return False
        if self.model.is_fresh(doc_type, fetched, now):
            return False
        self.expiries += 1
        return True

    def summary(self) -> Dict[str, float]:
        return {"expiries": self.expiries,
                "documents_tracked": len(self._fetched_at)}
