"""Two-level proxy-cache hierarchy simulation.

The paper's traces come from *upper-level* proxies (DFN and NLANR run
parents of institutional caches), and its related work (Mahanti,
Williamson & Eager) characterizes hierarchies — but the evaluation
itself stops at a single cache.  This module extends the simulator to
the two-level setting: N institutional (child) proxies, each with its
own cache, forwarding misses to one shared parent; parent misses go to
the origin.

Reported per document type, as everywhere in this library:

* child hit rate — over all requests (end-user latency view);
* parent hit rate — over the requests that reached the parent (the
  filtered, low-locality stream the paper's traces actually contain);
* hierarchy hit rate — hit at either level (origin off-load view).

A classic hierarchy effect falls out and is pinned by the tests: the
child caches absorb the recency/popularity signal, so the parent sees
a stream with much weaker temporal locality and posts a far lower hit
rate than the same cache would standalone.

Since the :mod:`repro.network` refactor this module is a thin
constructor over the general cache-network engine: the two-level
shape comes from :func:`repro.network.topology.two_level` and the walk
from :class:`repro.network.engine.NetworkSimulator` under
leave-copy-everywhere, whose cache-call sequence is identical to the
loop that used to live here.  ``tests/network/data/golden_hierarchy
.json`` pins that equivalence across the whole policy registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.core.policy import ReplacementPolicy
from repro.errors import ConfigurationError
from repro.network.engine import NetworkConfig, NetworkSimulator
from repro.network.topology import two_level
from repro.simulation.metrics import TypeMetrics
from repro.types import Request, Trace


@dataclass
class HierarchyConfig:
    """Shape of the two-level hierarchy.

    Requests are dealt to children round-robin, modelling interleaved
    user populations that share interests (every child sees every hot
    document eventually — the regime where a parent is useful).
    """

    child_capacity_bytes: int
    parent_capacity_bytes: int
    child_policy: Union[str, ReplacementPolicy] = "lru"
    parent_policy: Union[str, ReplacementPolicy] = "lru"
    n_children: int = 4
    warmup_fraction: float = 0.10

    def validate(self) -> None:
        if self.child_capacity_bytes <= 0 or self.parent_capacity_bytes <= 0:
            raise ConfigurationError("capacities must be positive")
        if self.n_children < 1:
            raise ConfigurationError("need at least one child")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")


@dataclass
class HierarchyResult:
    """Per-level metrics of one hierarchy run."""

    config: HierarchyConfig
    trace_name: str = "trace"
    total_requests: int = 0
    warmup_requests: int = 0
    child: TypeMetrics = field(default_factory=TypeMetrics)
    parent: TypeMetrics = field(default_factory=TypeMetrics)
    hierarchy: TypeMetrics = field(default_factory=TypeMetrics)

    @property
    def child_hit_rate(self) -> float:
        return self.child.overall.hit_rate

    @property
    def parent_hit_rate(self) -> float:
        """Hit rate over the requests that reached the parent."""
        return self.parent.overall.hit_rate

    @property
    def hierarchy_hit_rate(self) -> float:
        return self.hierarchy.overall.hit_rate

    @property
    def origin_byte_rate(self) -> float:
        """Fraction of requested bytes still fetched from the origin."""
        overall = self.hierarchy.overall
        if not overall.requested_bytes:
            return 0.0
        return 1.0 - overall.byte_hit_rate


class HierarchySimulator:
    """Drives a trace through children + parent.

    A two-level LCE network: the children are the edge nodes, the
    parent their shared upstream.  ``child`` metrics are the merged
    edge populations (integer sums, so they equal the single shared
    accumulator the legacy loop kept), ``parent`` is the parent node's
    local-miss-stream view, ``hierarchy`` the network-wide view.
    """

    def __init__(self, config: HierarchyConfig):
        config.validate()
        self.config = config
        self._network = NetworkSimulator(NetworkConfig(
            topology=two_level(
                config.child_capacity_bytes,
                config.parent_capacity_bytes,
                child_policy=config.child_policy,
                parent_policy=config.parent_policy,
                n_children=config.n_children),
            strategy="lce",
            warmup_fraction=config.warmup_fraction))

    def run(self, trace: Union[Trace, Sequence[Request]],
            trace_name: Optional[str] = None) -> HierarchyResult:
        name = trace_name or getattr(trace, "name", "trace")
        net = self._network.run(trace, trace_name=name)
        return HierarchyResult(
            config=self.config,
            trace_name=net.trace_name,
            total_requests=net.total_requests,
            warmup_requests=net.warmup_requests,
            child=net.edge_metrics(),
            parent=net.nodes["parent"].metrics,
            hierarchy=net.network,
        )


def simulate_hierarchy(trace: Union[Trace, Sequence[Request]],
                       child_capacity_bytes: int,
                       parent_capacity_bytes: int,
                       **config_kwargs) -> HierarchyResult:
    """One-call hierarchy simulation."""
    config = HierarchyConfig(
        child_capacity_bytes=child_capacity_bytes,
        parent_capacity_bytes=parent_capacity_bytes,
        **config_kwargs)
    return HierarchySimulator(config).run(trace)
