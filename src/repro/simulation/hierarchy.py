"""Two-level proxy-cache hierarchy simulation.

The paper's traces come from *upper-level* proxies (DFN and NLANR run
parents of institutional caches), and its related work (Mahanti,
Williamson & Eager) characterizes hierarchies — but the evaluation
itself stops at a single cache.  This module extends the simulator to
the two-level setting: N institutional (child) proxies, each with its
own cache, forwarding misses to one shared parent; parent misses go to
the origin.

Reported per document type, as everywhere in this library:

* child hit rate — over all requests (end-user latency view);
* parent hit rate — over the requests that reached the parent (the
  filtered, low-locality stream the paper's traces actually contain);
* hierarchy hit rate — hit at either level (origin off-load view).

A classic hierarchy effect falls out and is pinned by the tests: the
child caches absorb the recency/popularity signal, so the parent sees
a stream with much weaker temporal locality and posts a far lower hit
rate than the same cache would standalone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.cache import Cache
from repro.core.policy import AccessOutcome, ReplacementPolicy
from repro.core.registry import make_policy
from repro.errors import ConfigurationError
from repro.simulation.metrics import TypeMetrics
from repro.types import Request, Trace


@dataclass
class HierarchyConfig:
    """Shape of the two-level hierarchy.

    Requests are dealt to children round-robin, modelling interleaved
    user populations that share interests (every child sees every hot
    document eventually — the regime where a parent is useful).
    """

    child_capacity_bytes: int
    parent_capacity_bytes: int
    child_policy: str = "lru"
    parent_policy: str = "lru"
    n_children: int = 4
    warmup_fraction: float = 0.10

    def validate(self) -> None:
        if self.child_capacity_bytes <= 0 or self.parent_capacity_bytes <= 0:
            raise ConfigurationError("capacities must be positive")
        if self.n_children < 1:
            raise ConfigurationError("need at least one child")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")


@dataclass
class HierarchyResult:
    """Per-level metrics of one hierarchy run."""

    config: HierarchyConfig
    trace_name: str = "trace"
    total_requests: int = 0
    warmup_requests: int = 0
    child: TypeMetrics = field(default_factory=TypeMetrics)
    parent: TypeMetrics = field(default_factory=TypeMetrics)
    hierarchy: TypeMetrics = field(default_factory=TypeMetrics)

    @property
    def child_hit_rate(self) -> float:
        return self.child.overall.hit_rate

    @property
    def parent_hit_rate(self) -> float:
        """Hit rate over the requests that reached the parent."""
        return self.parent.overall.hit_rate

    @property
    def hierarchy_hit_rate(self) -> float:
        return self.hierarchy.overall.hit_rate

    @property
    def origin_byte_rate(self) -> float:
        """Fraction of requested bytes still fetched from the origin."""
        overall = self.hierarchy.overall
        if not overall.requested_bytes:
            return 0.0
        return 1.0 - overall.byte_hit_rate


class HierarchySimulator:
    """Drives a trace through children + parent."""

    def __init__(self, config: HierarchyConfig):
        config.validate()
        self.config = config
        self.children: List[Cache] = [
            Cache(config.child_capacity_bytes,
                  self._build(config.child_policy))
            for _ in range(config.n_children)
        ]
        self.parent = Cache(config.parent_capacity_bytes,
                            self._build(config.parent_policy))

    @staticmethod
    def _build(policy: Union[str, ReplacementPolicy]) -> ReplacementPolicy:
        if isinstance(policy, ReplacementPolicy):
            return policy
        return make_policy(policy)

    def run(self, trace: Union[Trace, Sequence[Request]],
            trace_name: Optional[str] = None) -> HierarchyResult:
        requests = trace.requests if isinstance(trace, Trace) else trace
        total = len(requests)
        warmup = int(total * self.config.warmup_fraction)
        result = HierarchyResult(
            config=self.config,
            trace_name=trace_name or getattr(trace, "name", "trace"),
            total_requests=total,
            warmup_requests=warmup,
        )
        n_children = self.config.n_children
        for index, request in enumerate(requests):
            child = self.children[index % n_children]
            child_outcome = child.reference(request.url, request.size,
                                            request.doc_type)
            child_hit = child_outcome is AccessOutcome.HIT
            parent_hit = False
            if not child_hit:
                # Miss (including modification): consult the parent.
                # A modified document is stale at the parent too; the
                # parent cache detects that through the size change.
                parent_outcome = self.parent.reference(
                    request.url, request.size, request.doc_type)
                parent_hit = parent_outcome is AccessOutcome.HIT

            if index < warmup:
                continue
            transfer = min(request.transfer_size, request.size)
            result.child.record(request.doc_type, child_hit, transfer)
            if not child_hit:
                result.parent.record(request.doc_type, parent_hit,
                                     transfer)
            result.hierarchy.record(request.doc_type,
                                    child_hit or parent_hit, transfer)
        return result


def simulate_hierarchy(trace: Union[Trace, Sequence[Request]],
                       child_capacity_bytes: int,
                       parent_capacity_bytes: int,
                       **config_kwargs) -> HierarchyResult:
    """One-call hierarchy simulation."""
    config = HierarchyConfig(
        child_capacity_bytes=child_capacity_bytes,
        parent_capacity_bytes=parent_capacity_bytes,
        **config_kwargs)
    return HierarchySimulator(config).run(trace)
