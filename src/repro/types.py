"""Shared value types used across the repro library.

The central record type is :class:`Request`, one preprocessed cacheable
web request.  The paper's unit of classification is the *document type*
(:class:`DocumentType`): images, HTML/text, multimedia, application, and a
catch-all "other" class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional


class DocumentType(enum.Enum):
    """The paper's five web document classes (Section 2).

    Text files (``.tex``, ``.java``, ...) are folded into :attr:`HTML`,
    following the paper: "Text files (e.g. .tex, .java) are added to the
    class of HTML documents."
    """

    IMAGE = "image"
    HTML = "html"
    MULTIMEDIA = "multimedia"
    APPLICATION = "application"
    OTHER = "other"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's table headers."""
        return _LABELS[self]


_LABELS = {
    DocumentType.IMAGE: "Images",
    DocumentType.HTML: "HTML",
    DocumentType.MULTIMEDIA: "Multi Media",
    DocumentType.APPLICATION: "Application",
    DocumentType.OTHER: "Other",
}

#: Document types in the order the paper's tables and figures list them.
DOCUMENT_TYPES: tuple = (
    DocumentType.IMAGE,
    DocumentType.HTML,
    DocumentType.MULTIMEDIA,
    DocumentType.APPLICATION,
    DocumentType.OTHER,
)

#: The four types the paper plots individually in Figures 1-3.
PLOTTED_TYPES: tuple = DOCUMENT_TYPES[:4]


@dataclass(frozen=True)
class Request:
    """One preprocessed, cacheable request seen by the proxy.

    Attributes:
        timestamp: Seconds since trace start (or epoch, for parsed logs).
        url: Document identifier.  Synthetic traces use compact ids such
            as ``"img/1234"``; parsed traces keep the request URL.
        size: Full document size in bytes, as known at this request.
            Document modifications change this value between requests.
        transfer_size: Bytes actually transferred for this request.  Equal
            to ``size`` for complete transfers; smaller when the client
            interrupted the transfer.
        doc_type: The document's :class:`DocumentType` class.
        status: HTTP status code of the response (default 200).
        content_type: Raw MIME type from the log, if known.
    """

    timestamp: float
    url: str
    size: int
    transfer_size: int
    doc_type: DocumentType
    status: int = 200
    content_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative document size: {self.size}")
        if self.transfer_size < 0:
            raise ValueError(
                f"negative transfer size: {self.transfer_size}")

    @property
    def complete(self) -> bool:
        """True when the full document was transferred."""
        return self.transfer_size >= self.size


@dataclass
class TraceMetadata:
    """Aggregate properties of a trace, the raw material for Table 1."""

    name: str = "trace"
    total_requests: int = 0
    distinct_documents: int = 0
    total_size_bytes: int = 0       # sum of sizes of distinct documents
    requested_bytes: int = 0        # sum of transfer sizes over all requests

    @property
    def total_size_gb(self) -> float:
        return self.total_size_bytes / 1e9

    @property
    def requested_gb(self) -> float:
        return self.requested_bytes / 1e9


class Trace:
    """An in-memory trace: a list of requests plus its metadata.

    Most of the library operates on plain request iterables so that traces
    can be streamed from disk; :class:`Trace` is the convenience container
    returned by the synthetic generator and the in-memory loader.
    """

    def __init__(self, requests: Iterable[Request], name: str = "trace"):
        self.requests: List[Request] = list(requests)
        self.name = name

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index):
        return self.requests[index]

    def metadata(self) -> TraceMetadata:
        """Compute Table-1 style aggregate properties of this trace."""
        meta = TraceMetadata(name=self.name)
        seen = {}
        for req in self.requests:
            meta.total_requests += 1
            meta.requested_bytes += req.transfer_size
            prev = seen.get(req.url)
            if prev is None:
                seen[req.url] = req.size
                meta.total_size_bytes += req.size
            elif prev != req.size:
                # Count the document once at its most recent size.
                meta.total_size_bytes += req.size - prev
                seen[req.url] = req.size
        meta.distinct_documents = len(seen)
        return meta


@dataclass
class TypeBreakdown:
    """Per-document-type shares of a trace (Tables 2 and 3).

    All values are percentages in [0, 100].
    """

    distinct_documents: dict = field(default_factory=dict)
    overall_size: dict = field(default_factory=dict)
    total_requests: dict = field(default_factory=dict)
    requested_data: dict = field(default_factory=dict)
