"""GDSF: Greedy-Dual-Size with Frequency (Cherkasova / Arlitt et al.).

H(p) = L + f(p) · c(p) / s(p): GDS weighted by the in-cache reference
count.  This is the variant shipped in Squid, and it is exactly GD* with
β fixed at 1 — which makes it the natural ablation point between GDS
(no frequency) and GD* (frequency plus adaptive temporal-correlation
exponent).
"""

from __future__ import annotations

from repro.core.cost import ConstantCost, CostModel
from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.addressable_heap import AddressableHeap


class GDSFPolicy(ReplacementPolicy):
    """Greedy-Dual-Size-Frequency with inflation-based aging."""

    #: Per-reference cost precomputed by the columnar engine.  When
    #: set, :meth:`_value` consumes it instead of calling the cost
    #: model (see :class:`~repro.core.gds.GDSPolicy`).  Only the cost
    #: term is hinted: ``f · c / s`` keeps its left-to-right float
    #: evaluation order, so the key is bit-identical.
    _hint_cost = None

    def __init__(self, cost_model: CostModel = None):
        self.cost_model = cost_model or ConstantCost()
        self.name = f"gdsf({self.cost_model.tag.lower()})"
        self._heap: AddressableHeap = AddressableHeap()
        self.inflation = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def _value(self, entry: CacheEntry) -> float:
        size = max(entry.size, 1)
        cost = self._hint_cost
        if cost is None:
            cost = self.cost_model.cost(size)
        utility = entry.frequency * cost / size
        return self.inflation + utility

    def on_admit(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._value(entry))

    def on_hit(self, entry: CacheEntry) -> None:
        self._heap.update_key(entry, self._value(entry))

    def peek_victim(self) -> CacheEntry:
        return self._heap.peek()[0]

    def pop_victim(self) -> CacheEntry:
        entry, h_min = self._heap.pop()
        self.inflation = h_min
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._heap.remove(entry)

    def clear(self) -> None:
        self._heap.clear()
        self.inflation = 0.0
