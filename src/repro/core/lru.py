"""Least Recently Used (paper Section 3).

Recency-based: evicts the resident document unreferenced for the
longest time.  Ignores size, cost, and frequency; its strength is pure
exploitation of temporal locality, and because it does not discriminate
against large documents it tends toward good *byte* hit rates.
"""

from __future__ import annotations

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.dlist import DList


class LRUPolicy(ReplacementPolicy):
    """Classic LRU over an intrusive doubly-linked list (all ops O(1))."""

    name = "lru"

    def __init__(self):
        self._order: DList = DList()

    def __len__(self) -> int:
        return len(self._order)

    def on_admit(self, entry: CacheEntry) -> None:
        entry.policy_data = self._order.push_back(entry)

    def on_hit(self, entry: CacheEntry) -> None:
        self._order.move_to_back(entry.policy_data)

    def peek_victim(self) -> CacheEntry:
        return self._order.front()  # the least-recently-used entry

    def pop_victim(self) -> CacheEntry:
        entry = self._order.pop_front()
        entry.policy_data = None
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._order.unlink(entry.policy_data)
        entry.policy_data = None

    def clear(self) -> None:
        self._order = DList()
