"""The proxy cache: capacity, residency, and byte accounting.

The cache is policy-agnostic: it owns the URL → entry map and the byte
budget, delegates every ordering decision to its
:class:`~repro.core.policy.ReplacementPolicy`, and reports what happened
to each reference as an :class:`~repro.core.policy.AccessOutcome`.

Semantics (paper Section 4.1):

* a referenced document resident *at its current size* is a **hit**;
* a resident document whose size changed is **stale** — the reference is
  a modification miss; the old copy is removed and the new version
  admitted;
* a document larger than the whole cache is never admitted (bypass);
* admission evicts minimum-value victims until the new document fits.

The cache is **single-threaded** (see the concurrency contract in
:mod:`repro.core.policy`); the serving layer wraps it in one
per-instance lock rather than this module locking per operation.
:attr:`Cache.on_evict` is the observation hook that layer uses: it
fires once per evicted entry, after the entry has fully left both the
residency map and the policy — never mid-eviction.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.core.policy import AccessOutcome, CacheEntry, ReplacementPolicy
from repro.errors import CapacityError, SimulationError
from repro.types import DocumentType


class Cache:
    """Byte-capacity cache driven by a replacement policy."""

    def __init__(self, capacity_bytes: int, policy: ReplacementPolicy):
        if capacity_bytes <= 0:
            raise CapacityError(
                f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.used_bytes = 0
        self.clock = 0
        self._entries: Dict[str, CacheEntry] = {}
        # Running counters (never reset by warm-up; the simulator keeps
        # its own warm-up-aware metrics).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self.invalidations = 0
        #: Optional observer called as ``on_evict(entry)`` after each
        #: eviction completes (entry removed from residency *and*
        #: policy).  Also fires for invalidation-path drops, so an
        #: observer tracking sidecar state (e.g. served payloads) sees
        #: every departure.  None (the default) costs one comparison.
        self.on_evict = None
        policy.attach(self)

    # ----- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def get(self, url: str) -> Optional[CacheEntry]:
        """Resident entry for a URL, or None (no side effects)."""
        return self._entries.get(url)

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate resident entries in arbitrary order."""
        return iter(self._entries.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def next_victim(self) -> Optional[CacheEntry]:
        """The entry the policy would evict next, or None when the
        cache is empty or the policy cannot preview without mutating
        (:meth:`~repro.core.policy.ReplacementPolicy.peek_victim`)."""
        try:
            return self.policy.peek_victim()
        except (IndexError, NotImplementedError):
            return None

    # ----- the one mutating entry point ----------------------------------

    def reference(self, url: str, size: int,
                  doc_type: DocumentType = DocumentType.OTHER) -> AccessOutcome:
        """Process one reference; admits on miss.

        ``size`` is the document's full size as of this request.  A
        resident copy with a different size is stale (modified document)
        and is replaced.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        self.clock += 1
        entry = self._entries.get(url)
        if entry is not None:
            if entry.size == size:
                entry.frequency += 1
                entry.last_access = self.clock
                self.policy.on_hit(entry)
                self.hits += 1
                return AccessOutcome.HIT
            # Modified document: stale copy out, new version in (unless
            # the new version no longer fits or is refused admission).
            self._drop(entry, count_as_invalidation=True)
            self.misses += 1
            if not self._admission_allowed(url, size):
                self.bypasses += 1
                return AccessOutcome.MISS_TOO_BIG
            self._admit(url, size, doc_type)
            return AccessOutcome.MISS_MODIFIED

        self.misses += 1
        if not self._admission_allowed(url, size):
            self.bypasses += 1
            return AccessOutcome.MISS_TOO_BIG
        self._admit(url, size, doc_type)
        return AccessOutcome.MISS

    def _admission_allowed(self, url: str, size: int) -> bool:
        if size > self.capacity_bytes:
            return False
        url_check = getattr(self.policy, "admits_url", None)
        if url_check is not None:
            return url_check(url, size)
        return self.policy.admits(size)

    def invalidate(self, url: str) -> bool:
        """Remove a document without counting a reference; True if present."""
        entry = self._entries.get(url)
        if entry is None:
            return False
        self._drop(entry, count_as_invalidation=True)
        return True

    def flush(self) -> None:
        """Empty the cache (keeps counters)."""
        self._entries.clear()
        self.used_bytes = 0
        self.policy.clear()

    # ----- internals ------------------------------------------------------

    def _admit(self, url: str, size: int, doc_type: DocumentType) -> None:
        self._make_room(size)
        entry = CacheEntry(url, size, doc_type, clock=self.clock)
        self._entries[url] = entry
        self.used_bytes += size
        self.policy.on_admit(entry)

    def _make_room(self, needed: int) -> None:
        while self.used_bytes + needed > self.capacity_bytes:
            try:
                victim = self.policy.pop_victim()
            except IndexError as exc:
                raise SimulationError(
                    "policy has no victim but cache lacks space: "
                    f"used={self.used_bytes} needed={needed} "
                    f"capacity={self.capacity_bytes}") from exc
            resident = self._entries.pop(victim.url, None)
            if resident is not victim:
                raise SimulationError(
                    f"policy evicted unknown entry {victim.url!r}")
            self.used_bytes -= victim.size
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)

    def _drop(self, entry: CacheEntry, count_as_invalidation: bool) -> None:
        self.policy.remove(entry)
        del self._entries[entry.url]
        self.used_bytes -= entry.size
        if count_as_invalidation:
            self.invalidations += 1
        if self.on_evict is not None:
            self.on_evict(entry)

    # ----- consistency check (tests) -------------------------------------

    def check_invariants(self) -> None:
        """Assert byte accounting and policy/residency agreement."""
        total = sum(entry.size for entry in self._entries.values())
        assert total == self.used_bytes, (
            f"byte accounting drifted: {total} != {self.used_bytes}")
        assert self.used_bytes <= self.capacity_bytes, "over capacity"
        policy_len = len(self.policy)
        assert policy_len == len(self._entries), (
            f"policy tracks {policy_len} entries, cache holds "
            f"{len(self._entries)}")
