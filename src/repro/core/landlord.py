"""Landlord (Young, 1998): the general rent-based Greedy-Dual family.

Every resident document holds *credit*.  On admission a document
receives credit equal to its retrieval cost c(p).  To make room, the
landlord charges every resident document rent proportional to its size
— ``delta = min(credit(q) / size(q))`` per byte — and evicts a document
whose credit reaches zero.  On a hit, credit is refreshed back toward
c(p) by a factor ``refresh``.

With ``refresh = 1`` and per-document cost models this generalizes
Greedy-Dual-Size (GDS is Landlord where credit is always fully
restored); with ``refresh = 0`` hits confer no benefit and the scheme
degenerates toward cost-aware FIFO.  Landlord is k-competitive like
GDS.  The implementation uses the same global-offset trick as GDS:
instead of charging rent to every document (O(n)), track rent-per-byte
paid so far (``rent_level``) and store each document's *expiry level*
``rent_level + credit/size`` in an addressable heap.
"""

from __future__ import annotations

from repro.core.cost import ConstantCost, CostModel
from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.errors import ConfigurationError
from repro.structures.addressable_heap import AddressableHeap


class LandlordPolicy(ReplacementPolicy):
    """Landlord with lazy rent collection."""

    def __init__(self, cost_model: CostModel = None, refresh: float = 1.0):
        if not 0.0 <= refresh <= 1.0:
            raise ConfigurationError("refresh must be in [0, 1]")
        self.cost_model = cost_model or ConstantCost()
        self.refresh = refresh
        self.name = f"landlord({self.cost_model.tag.lower()})"
        self._heap: AddressableHeap = AddressableHeap()
        self.rent_level = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def _full_expiry(self, entry: CacheEntry) -> float:
        size = max(entry.size, 1)
        return self.rent_level + self.cost_model.cost(size) / size

    def on_admit(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._full_expiry(entry))

    def on_hit(self, entry: CacheEntry) -> None:
        # Refresh credit toward full: new expiry interpolates between
        # the current one and the full-credit level.
        current = self._heap.key_of(entry)
        if current < self.rent_level:
            current = self.rent_level
        target = self._full_expiry(entry)
        refreshed = current + (target - current) * self.refresh
        self._heap.update_key(entry, refreshed)

    def pop_victim(self) -> CacheEntry:
        entry, expiry = self._heap.pop()
        # Charge rent globally up to the victim's expiry level; credit
        # of every other document shrinks implicitly.
        if expiry > self.rent_level:
            self.rent_level = expiry
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._heap.remove(entry)

    def clear(self) -> None:
        self._heap.clear()
        self.rent_level = 0.0

    def credit_of(self, entry: CacheEntry) -> float:
        """Remaining credit of a resident entry (diagnostics)."""
        expiry = self._heap.key_of(entry)
        return max(expiry - self.rent_level, 0.0) * max(entry.size, 1)
