"""Statically type-partitioned cache.

The paper's motivation — "the effective design of web cache replacement
schemes under changing workload characteristics" — suggests an obvious
design the paper leaves on the table: give each document type its own
capacity slice and (possibly different) replacement policy, so large
multimedia documents compete only with each other instead of flushing
thousands of images.  :class:`PartitionedCache` implements that design
and is drop-in compatible with the simulator (pass it as ``cache=``),
enabling the partitioning ablation in ``benchmarks/bench_extensions.py``.

Capacity shares are static; a byte budgeted for one type is never lent
to another (that rigidity is exactly the trade-off the ablation
measures against GD*'s implicit, adaptive partitioning).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Optional

from repro.core.cache import Cache
from repro.core.policy import AccessOutcome, CacheEntry, ReplacementPolicy
from repro.core.registry import make_policy
from repro.errors import CapacityError, ConfigurationError
from repro.types import DOCUMENT_TYPES, DocumentType

PolicyFactory = Callable[[], ReplacementPolicy]


class PartitionedCache:
    """One independent :class:`~repro.core.cache.Cache` per document type.

    Exposes the same surface the simulator and occupancy tracker use:
    ``reference``, ``invalidate``, ``entries``, ``used_bytes``,
    ``capacity_bytes``, the hit/miss/eviction counters, and ``clock``.
    """

    def __init__(self, capacity_bytes: int,
                 shares: Optional[Mapping[DocumentType, float]] = None,
                 policy_factory: PolicyFactory = None,
                 policies: Optional[Mapping[DocumentType,
                                            ReplacementPolicy]] = None):
        """Build the partitions.

        Args:
            capacity_bytes: Total capacity split across types.
            shares: Fraction of capacity per type; must cover every
                document type and sum to 1.  Defaults to equal shares.
            policy_factory: Zero-argument callable producing one fresh
                policy per partition (default: LRU everywhere).
            policies: Explicit per-type policy instances; overrides
                ``policy_factory`` for the listed types.
        """
        if capacity_bytes <= 0:
            raise CapacityError("capacity must be positive")
        if shares is None:
            shares = {t: 1.0 / len(DOCUMENT_TYPES) for t in DOCUMENT_TYPES}
        missing = set(DOCUMENT_TYPES) - set(shares)
        if missing:
            raise ConfigurationError(
                f"shares missing document types: "
                f"{sorted(t.value for t in missing)}")
        total = sum(shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(f"shares sum to {total}, expected 1")
        if any(share <= 0 for share in shares.values()):
            raise ConfigurationError("every share must be positive")

        factory = policy_factory or make_policy_factory("lru")
        self.capacity_bytes = capacity_bytes
        self.partitions: Dict[DocumentType, Cache] = {}
        for doc_type in DOCUMENT_TYPES:
            policy = None
            if policies is not None:
                policy = policies.get(doc_type)
            if policy is None:
                policy = factory()
            capacity = max(int(capacity_bytes * shares[doc_type]), 1)
            self.partitions[doc_type] = Cache(capacity, policy)
        self.clock = 0

    # ----- Cache-compatible surface --------------------------------------

    def reference(self, url: str, size: int,
                  doc_type: DocumentType = DocumentType.OTHER
                  ) -> AccessOutcome:
        self.clock += 1
        return self.partitions[doc_type].reference(url, size, doc_type)

    def invalidate(self, url: str) -> bool:
        return any(partition.invalidate(url)
                   for partition in self.partitions.values())

    def entries(self) -> Iterator[CacheEntry]:
        for partition in self.partitions.values():
            yield from partition.entries()

    def __len__(self) -> int:
        return sum(len(partition) for partition in self.partitions.values())

    def __contains__(self, url: str) -> bool:
        return any(url in partition
                   for partition in self.partitions.values())

    @property
    def used_bytes(self) -> int:
        return sum(p.used_bytes for p in self.partitions.values())

    @property
    def hits(self) -> int:
        return sum(p.hits for p in self.partitions.values())

    @property
    def misses(self) -> int:
        return sum(p.misses for p in self.partitions.values())

    @property
    def evictions(self) -> int:
        return sum(p.evictions for p in self.partitions.values())

    @property
    def invalidations(self) -> int:
        return sum(p.invalidations for p in self.partitions.values())

    @property
    def bypasses(self) -> int:
        return sum(p.bypasses for p in self.partitions.values())

    def flush(self) -> None:
        for partition in self.partitions.values():
            partition.flush()

    def check_invariants(self) -> None:
        for partition in self.partitions.values():
            partition.check_invariants()

    # ----- introspection ---------------------------------------------------

    def partition_of(self, doc_type: DocumentType) -> Cache:
        return self.partitions[doc_type]


def make_policy_factory(name: str, **kwargs) -> PolicyFactory:
    """A factory producing a fresh named policy per call."""
    def factory() -> ReplacementPolicy:
        return make_policy(name, **kwargs)
    return factory


def request_share_partitioning(breakdown_requests: Mapping[DocumentType,
                                                           float]
                               ) -> Dict[DocumentType, float]:
    """Shares proportional to a trace's per-type request percentages.

    Accepts the ``total_requests`` mapping of a
    :class:`~repro.types.TypeBreakdown` (values in percent) and
    normalizes, flooring each share at 0.5 % so no partition is
    starved to nothing.
    """
    floored = {t: max(breakdown_requests.get(t, 0.0), 0.5)
               for t in DOCUMENT_TYPES}
    total = sum(floored.values())
    return {t: value / total for t, value in floored.items()}
