"""Offline Belady-style bound: evict the farthest-next-use document.

Belady's MIN is optimal for unit-size objects; for variable-size web
documents farthest-next-use is no longer provably optimal, but it is the
standard clairvoyant upper-bound companion in cache studies, and we use
it the same way: as a ceiling no online policy should exceed by much.

Usage requires future knowledge::

    next_uses = compute_next_uses(trace)
    policy = BeladyPolicy(next_uses)

and the cache must then be driven with exactly that request sequence:
the policy reads the cache clock (one tick per reference) to index into
the precomputed next-use table.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.errors import ConfigurationError
from repro.structures.addressable_heap import AddressableHeap
from repro.types import Request

#: Sentinel next-use for "never referenced again".
NEVER = math.inf


def compute_next_uses(requests: Sequence[Request]) -> List[float]:
    """For each request index, the index of the next request to the same
    URL (or :data:`NEVER`)."""
    next_uses: List[float] = [NEVER] * len(requests)
    last_seen: Dict[str, int] = {}
    for index in range(len(requests) - 1, -1, -1):
        url = requests[index].url
        next_uses[index] = last_seen.get(url, NEVER)
        last_seen[url] = index
    return next_uses


class BeladyPolicy(ReplacementPolicy):
    """Clairvoyant farthest-next-use eviction.

    Heap key is (−next_use, −size): among documents never used again,
    the largest goes first, freeing the most space per eviction.
    """

    name = "belady"

    def __init__(self, next_uses: Sequence[float]):
        if not len(next_uses):
            raise ConfigurationError("next_uses must not be empty")
        self._next_uses = next_uses
        self._heap: AddressableHeap = AddressableHeap()
        self.cache = None

    def __len__(self) -> int:
        return len(self._heap)

    def _current_next_use(self) -> float:
        if self.cache is None:
            raise ConfigurationError(
                "BeladyPolicy must be attached to a cache")
        index = self.cache.clock - 1  # clock ticks before policy hooks run
        if index < 0 or index >= len(self._next_uses):
            raise ConfigurationError(
                f"cache clock {self.cache.clock} outside the precomputed "
                f"trace of length {len(self._next_uses)}; Belady must be "
                "driven with exactly the trace it was computed from")
        return self._next_uses[index]

    def _key(self, entry: CacheEntry, next_use: float) -> tuple:
        return (-next_use, -entry.size)

    def on_admit(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._key(entry, self._current_next_use()))

    def on_hit(self, entry: CacheEntry) -> None:
        self._heap.update_key(entry,
                              self._key(entry, self._current_next_use()))

    def pop_victim(self) -> CacheEntry:
        entry, _ = self._heap.pop()
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._heap.remove(entry)

    def clear(self) -> None:
        self._heap.clear()
