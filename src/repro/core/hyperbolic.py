"""Hyperbolic caching (Blankstein, Sen & Freedman, 2017).

Each resident document is valued at

    priority(p) = f(p) · c(p) / (s(p) · age(p))

where age is the time (here: cache references) since admission.  Unlike
the Greedy-Dual family there is no inflation term: priorities *decay*
continuously, so the eviction order between two documents can flip over
time — which a heap cannot track exactly.  Following the original
paper, eviction samples K random resident documents and evicts the one
with the lowest current priority (sampling error is bounded and small
for K ≈ 64).

Included as a modern point of comparison for GDSF/GD*: it captures the
same frequency/cost/size signal with aging by division rather than by
additive inflation.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.cost import ConstantCost, CostModel
from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.errors import ConfigurationError


class HyperbolicPolicy(ReplacementPolicy):
    """Sampling-based hyperbolic eviction."""

    def __init__(self, cost_model: CostModel = None, sample_size: int = 64,
                 seed: Optional[int] = 0):
        if sample_size < 1:
            raise ConfigurationError("sample_size must be >= 1")
        self.cost_model = cost_model or ConstantCost()
        self.sample_size = sample_size
        self.name = f"hyperbolic({self.cost_model.tag.lower()})"
        self._entries: List[CacheEntry] = []
        self._rng = random.Random(seed)
        self._clock = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _priority(self, entry: CacheEntry) -> float:
        birth = entry.policy_data[1]
        age = max(self._clock - birth, 1)
        size = max(entry.size, 1)
        return (entry.frequency * self.cost_model.cost(size)
                / (size * age))

    def on_admit(self, entry: CacheEntry) -> None:
        self._clock += 1
        entry.policy_data = [len(self._entries), self._clock]
        self._entries.append(entry)

    def on_hit(self, entry: CacheEntry) -> None:
        self._clock += 1
        # Frequency is maintained by the cache; age keeps running.

    def pop_victim(self) -> CacheEntry:
        if not self._entries:
            raise IndexError("pop_victim on empty HyperbolicPolicy")
        population = len(self._entries)
        if population <= self.sample_size:
            candidates = list(self._entries)
        else:
            candidates = [self._entries[self._rng.randrange(population)]
                          for _ in range(self.sample_size)]
        victim = min(candidates, key=self._priority)
        self._remove_at(victim.policy_data[0])
        return victim

    def remove(self, entry: CacheEntry) -> None:
        self._remove_at(entry.policy_data[0])

    def _remove_at(self, index: int) -> None:
        entries = self._entries
        entry = entries[index]
        last = entries.pop()
        if last is not entry:
            entries[index] = last
            last.policy_data[0] = index
        entry.policy_data = None

    def clear(self) -> None:
        self._entries.clear()
        self._clock = 0
