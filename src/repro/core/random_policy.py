"""RAND baseline: evict a uniformly random resident document.

The memoryless control: any policy that cannot beat RAND on a workload
is extracting no signal from it.  Seeded for reproducibility.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.policy import CacheEntry, ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Uniform random eviction via a swap-remove array (all ops O(1))."""

    name = "rand"

    def __init__(self, seed: Optional[int] = 0):
        self._entries: List[CacheEntry] = []
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self._entries)

    def on_admit(self, entry: CacheEntry) -> None:
        entry.policy_data = len(self._entries)
        self._entries.append(entry)

    def on_hit(self, entry: CacheEntry) -> None:
        # Random eviction ignores references.
        pass

    def pop_victim(self) -> CacheEntry:
        if not self._entries:
            raise IndexError("pop_victim on empty RandomPolicy")
        index = self._rng.randrange(len(self._entries))
        return self._remove_at(index)

    def remove(self, entry: CacheEntry) -> None:
        self._remove_at(entry.policy_data)

    def _remove_at(self, index: int) -> CacheEntry:
        entries = self._entries
        entry = entries[index]
        last = entries.pop()
        if last is not entry:
            entries[index] = last
            last.policy_data = index
        entry.policy_data = None
        return entry

    def clear(self) -> None:
        self._entries.clear()
