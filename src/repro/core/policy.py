"""Replacement-policy interface and cache entry record.

A policy never touches capacity or residency; it only maintains an
eviction order over the entries the cache hands it.  The contract:

* ``on_admit(entry)`` — a new entry became resident;
* ``on_hit(entry)`` — a resident entry was referenced (the cache has
  already incremented ``entry.frequency``);
* ``pop_victim()`` — remove and return the entry the policy evicts next;
* ``remove(entry)`` — a resident entry leaves for policy-external
  reasons (document modification);
* ``clear()`` — drop all state.

Policies may keep per-entry state in ``entry.policy_data``; the cache
guarantees an entry is handed to exactly one policy.

Concurrency contract
--------------------

Policies are **single-threaded**.  Every mutation point — the dlist
relinks of :meth:`ReplacementPolicy.on_hit`, the heap sifts of
``pop_victim``/``update_key``, the aging-state updates of LFU-DA and
the Greedy-Dual family — leaves the backing structure transiently
inconsistent (a node unlinked but not relinked, a heap entry mid-sift
with a stale position map, ``cache_age``/``inflation`` read before the
pop that advances it).  Nothing in :mod:`repro.core` locks, because
the simulator drives each cache from exactly one thread.

Concurrent access therefore belongs one layer up:
:class:`repro.serving.cache.ServedCache` serializes *every* cache and
policy touch — mutations and reads alike — behind one per-instance
lock, so no thread can observe :class:`~repro.structures.dlist.DList`
or :class:`~repro.structures.addressable_heap.AddressableHeap` state
mid-eviction.  Code adding a policy needs no locking of its own, but
must not cache state outside the entry/structure fields the lock
already covers.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any

from repro.types import DocumentType


class CacheEntry:
    """One resident document.

    Attributes:
        url: Document identifier.
        size: Document size in bytes at admission (updated on
            modification re-admission).
        doc_type: Document type, for per-type occupancy accounting.
        frequency: Reference count during the current cache residency
            (1 at admission, +1 per hit) — the f(p) of GDSF/GD*.
        last_access: Cache clock value of the most recent reference.
        policy_data: Scratch slot owned by the policy.
    """

    __slots__ = ("url", "size", "doc_type", "frequency", "last_access",
                 "policy_data")

    def __init__(self, url: str, size: int, doc_type: DocumentType,
                 clock: int = 0):
        self.url = url
        self.size = size
        self.doc_type = doc_type
        self.frequency = 1
        self.last_access = clock
        self.policy_data: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheEntry(url={self.url!r}, size={self.size}, "
                f"type={self.doc_type.value}, freq={self.frequency})")


class AccessOutcome(enum.Enum):
    """What the cache did with one reference."""

    HIT = "hit"
    MISS = "miss"                  # admitted after a plain miss
    MISS_TOO_BIG = "miss-too-big"  # larger than the whole cache; bypassed
    MISS_MODIFIED = "miss-modified"  # cached copy was stale (modification)


class ReplacementPolicy(ABC):
    """Abstract eviction-order maintainer."""

    #: Short machine name, e.g. ``"lru"`` or ``"gd*(p)"``.
    name: str = "abstract"

    def attach(self, cache: "Any") -> None:
        """Called once when the policy is installed into a cache.

        The default keeps a back-reference so policies can read the
        cache clock; override for extra setup (and call ``super()``).

        A policy instance carries mutable eviction state, so it can
        serve exactly one cache: sharing an instance across the cells
        of a multi-cell pass would silently interleave two caches'
        eviction orders.  Re-attaching to a *different* cache therefore
        raises; build one policy per cell (as
        :func:`~repro.core.registry.make_policy` does).
        """
        current = getattr(self, "cache", None)
        if current is not None and current is not cache:
            from repro.errors import SimulationError
            raise SimulationError(
                f"policy instance {self.name!r} is already attached to "
                "a cache; policies hold per-cache eviction state, so "
                "each cache cell needs its own instance (use "
                "repro.core.registry.make_policy per cell)")
        self.cache = cache

    def admits(self, size: int) -> bool:
        """Admission filter consulted by the cache before insertion.

        Defaults to admitting everything; threshold-style policies
        (e.g. :class:`~repro.core.lru_threshold.LRUThresholdPolicy`)
        override it.  A rejected document is bypassed and counted like
        a document larger than the cache.
        """
        return True

    @abstractmethod
    def on_admit(self, entry: CacheEntry) -> None:
        """Register a newly admitted entry."""

    @abstractmethod
    def on_hit(self, entry: CacheEntry) -> None:
        """Update the eviction order after a hit on ``entry``."""

    @abstractmethod
    def pop_victim(self) -> CacheEntry:
        """Remove and return the next entry to evict.

        Raises IndexError when the policy tracks no entries (the cache
        treats that as an internal inconsistency).
        """

    def peek_victim(self) -> CacheEntry:
        """The entry :meth:`pop_victim` would return next, **without**
        removing it or advancing any aging state.

        The reusable eviction-decision hook: serving-layer admission
        control and diagnostics can ask "what would go next?" without
        running the simulator loop.  Raises IndexError when empty and
        NotImplementedError for policies whose next victim is not
        observable without mutation (e.g. random sampling); callers
        treat the latter as "no answer", never as an error.
        """
        raise NotImplementedError(
            f"{self.name!r} cannot preview its victim without mutating")

    @abstractmethod
    def remove(self, entry: CacheEntry) -> None:
        """Forget a specific resident entry (invalidation path)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all policy state."""

    def __len__(self) -> int:  # pragma: no cover - overridden where cheap
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
