"""First-In-First-Out baseline.

Evicts in admission order, ignoring hits entirely.  Not studied in the
paper but a standard lower-bound companion for LRU: any gap between
FIFO and LRU measures how much recency information is worth on a
workload.
"""

from __future__ import annotations

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.dlist import DList


class FIFOPolicy(ReplacementPolicy):
    """Queue-order eviction; hits do not reorder."""

    name = "fifo"

    def __init__(self):
        self._order: DList = DList()

    def __len__(self) -> int:
        return len(self._order)

    def on_admit(self, entry: CacheEntry) -> None:
        entry.policy_data = self._order.push_back(entry)

    def on_hit(self, entry: CacheEntry) -> None:
        # FIFO ignores references.
        pass

    def peek_victim(self) -> CacheEntry:
        return self._order.front()  # the oldest-admitted entry

    def pop_victim(self) -> CacheEntry:
        entry = self._order.pop_front()
        entry.policy_data = None
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._order.unlink(entry.policy_data)
        entry.policy_data = None

    def clear(self) -> None:
        self._order = DList()
