"""The paper's primary contribution: cache replacement schemes.

Everything revolves around the :class:`~repro.core.cache.Cache` /
:class:`~repro.core.policy.ReplacementPolicy` split: the cache owns
capacity, residency, and byte accounting; the policy owns only the
eviction order.  The policies studied in the paper —

* :class:`~repro.core.lru.LRUPolicy` (recency),
* :class:`~repro.core.lfu_da.LFUDAPolicy` (frequency with dynamic aging),
* :class:`~repro.core.gds.GDSPolicy` (Greedy-Dual-Size, cost/size aware),
* :class:`~repro.core.gdstar.GDStarPolicy` (Greedy-Dual*, adds frequency
  and online temporal-correlation adaptation) —

plus the comparison baselines of the cited studies (FIFO, LFU, SIZE,
RAND, LRU-K, GDSF, offline Belady bound).  Cost models: constant cost
``c(p)=1`` and packet cost ``c(p)=2+s(p)/536`` (:mod:`~repro.core.cost`).

Use :func:`~repro.core.registry.make_policy` to construct policies by
the names the paper uses: ``"lru"``, ``"lfu-da"``, ``"gds(1)"``,
``"gd*(1)"``, ``"gds(p)"``, ``"gd*(p)"``, ...
"""

from repro.core.policy import AccessOutcome, CacheEntry, ReplacementPolicy
from repro.core.cache import Cache
from repro.core.cost import (
    ConstantCost,
    CostModel,
    LatencyCost,
    PacketCost,
    make_cost_model,
)
from repro.core.lru import LRUPolicy
from repro.core.fifo import FIFOPolicy
from repro.core.lfu import LFUPolicy
from repro.core.lfu_da import LFUDAPolicy
from repro.core.size_policy import SizePolicy
from repro.core.random_policy import RandomPolicy
from repro.core.lru_k import LRUKPolicy
from repro.core.lru_threshold import LRUThresholdPolicy
from repro.core.slru import SLRUPolicy
from repro.core.gds import GDSPolicy
from repro.core.gdsf import GDSFPolicy
from repro.core.gdstar import GDStarPolicy
from repro.core.gdstar_typed import GDStarTypedPolicy
from repro.core.landlord import LandlordPolicy
from repro.core.hyperbolic import HyperbolicPolicy
from repro.core.belady import BeladyPolicy
from repro.core.beta_estimator import OnlineBetaEstimator
from repro.core.admission import SecondHitAdmission
from repro.core.partitioned import PartitionedCache
from repro.core.registry import POLICY_NAMES, make_policy

__all__ = [
    "AccessOutcome",
    "CacheEntry",
    "ReplacementPolicy",
    "Cache",
    "CostModel",
    "ConstantCost",
    "PacketCost",
    "LatencyCost",
    "make_cost_model",
    "LRUPolicy",
    "FIFOPolicy",
    "LFUPolicy",
    "LFUDAPolicy",
    "SizePolicy",
    "RandomPolicy",
    "LRUKPolicy",
    "LRUThresholdPolicy",
    "SLRUPolicy",
    "GDSPolicy",
    "GDSFPolicy",
    "GDStarPolicy",
    "GDStarTypedPolicy",
    "LandlordPolicy",
    "HyperbolicPolicy",
    "BeladyPolicy",
    "OnlineBetaEstimator",
    "PartitionedCache",
    "SecondHitAdmission",
    "POLICY_NAMES",
    "make_policy",
]
