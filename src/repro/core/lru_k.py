"""LRU-K (O'Neil, O'Neil & Weikum): recency of the K-th last reference.

Evicts the document whose K-th most recent reference is oldest; entries
with fewer than K references sort before all fully-observed ones (their
K-th reference is treated as −∞), ordered among themselves by their last
reference.  K=2 is the classic scan-resistant variant.  Included as an
extension baseline bridging LRU (K=1) and frequency-based schemes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.errors import ConfigurationError
from repro.structures.addressable_heap import AddressableHeap

#: Key component marking "fewer than K references yet".
_NO_HISTORY = -1


class LRUKPolicy(ReplacementPolicy):
    """Min-heap on (K-th-last reference time, last reference time)."""

    name = "lru-k"

    def __init__(self, k: int = 2):
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        self.k = k
        self.name = f"lru-{k}" if k != 2 else "lru-2"
        self._heap: AddressableHeap = AddressableHeap()
        self._clock = 0

    def __len__(self) -> int:
        return len(self._heap)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _key(self, history: Deque[int]) -> tuple:
        if len(history) < self.k:
            return (_NO_HISTORY, history[-1])
        return (history[0], history[-1])

    def on_admit(self, entry: CacheEntry) -> None:
        history: Deque[int] = deque(maxlen=self.k)
        history.append(self._tick())
        entry.policy_data = history
        self._heap.push(entry, self._key(history))

    def on_hit(self, entry: CacheEntry) -> None:
        history: Deque[int] = entry.policy_data
        history.append(self._tick())
        self._heap.update_key(entry, self._key(history))

    def pop_victim(self) -> CacheEntry:
        entry, _ = self._heap.pop()
        entry.policy_data = None
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._heap.remove(entry)
        entry.policy_data = None

    def clear(self) -> None:
        self._heap.clear()
        self._clock = 0
