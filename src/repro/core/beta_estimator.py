"""Online estimation of the temporal-correlation exponent β.

GD*'s "novel feature" (paper Section 3) is that its aging exponent β can
be calculated in an on-line fashion, making the policy adaptive to the
workload.  Following Jin & Bestavros, β is the negated slope of the
reuse-distance distribution on a log-log plot: the probability that a
document is re-requested k requests after its previous request scales
as k^{-β}.

:class:`OnlineBetaEstimator` accumulates observed reuse distances in a
log-binned histogram and refits the slope every ``refresh_interval``
observations, with exponential decay of old counts so the estimate
tracks workload drift.  Estimates are clamped to [min_beta, max_beta]
(Jin & Bestavros cap β at 1; values near 0 would send GD*'s exponent
1/β to infinity).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.structures.histogram import LogHistogram, least_squares_slope


class OnlineBetaEstimator:
    """Streaming β estimate from reuse distances."""

    def __init__(self,
                 initial_beta: float = 1.0,
                 min_beta: float = 0.05,
                 max_beta: float = 1.0,
                 refresh_interval: int = 2000,
                 min_samples: int = 500,
                 decay: float = 0.75,
                 max_distance: float = 1e8,
                 bins_per_decade: int = 6):
        if not 0.0 < min_beta <= max_beta:
            raise ConfigurationError("need 0 < min_beta <= max_beta")
        if not min_beta <= initial_beta <= max_beta:
            raise ConfigurationError("initial_beta outside [min, max]")
        if refresh_interval <= 0 or min_samples <= 0:
            raise ConfigurationError("intervals must be positive")
        if not 0.0 <= decay <= 1.0:
            raise ConfigurationError("decay must be in [0, 1]")
        self.min_beta = min_beta
        self.max_beta = max_beta
        self.refresh_interval = refresh_interval
        self.min_samples = min_samples
        self.decay = decay
        self._histogram = LogHistogram(max_value=max_distance,
                                       bins_per_decade=bins_per_decade)
        self._beta = initial_beta
        self._since_refresh = 0
        self.refreshes = 0
        self.observations = 0

    @property
    def beta(self) -> float:
        """Current (clamped) estimate."""
        return self._beta

    def observe(self, reuse_distance: float) -> None:
        """Feed one reuse distance (in requests, >= 1)."""
        if reuse_distance < 1:
            reuse_distance = 1
        self._histogram.add(reuse_distance)
        self.observations += 1
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_interval:
            self._refresh()

    def _refresh(self) -> None:
        self._since_refresh = 0
        if self._histogram.total < self.min_samples:
            return
        points = self._histogram.loglog_points()
        if len(points) < 3:
            return
        try:
            slope = least_squares_slope(points)
        except ValueError:
            return
        estimate = -slope
        self._beta = min(max(estimate, self.min_beta), self.max_beta)
        self.refreshes += 1
        if self.decay < 1.0:
            self._histogram.decay(self.decay)

    def force_refresh(self) -> float:
        """Refit immediately (tests and diagnostics); returns beta."""
        self._refresh()
        return self._beta


class FixedBetaEstimator:
    """Drop-in replacement holding β constant (the ablation arm)."""

    def __init__(self, beta: float):
        if beta <= 0:
            raise ConfigurationError("beta must be positive")
        self.beta = beta
        self.observations = 0
        self.refreshes = 0

    def observe(self, reuse_distance: float) -> None:
        self.observations += 1

    def force_refresh(self) -> float:
        return self.beta
