"""Least Frequently Used (no aging).

Evicts the resident document with the fewest references in its current
residency, breaking ties in admission order.  Plain LFU suffers from
*cache pollution*: documents that were hot once keep high counts forever
and crowd out the current working set — exactly the failure mode LFU-DA
(:mod:`repro.core.lfu_da`) fixes, which makes LFU the natural ablation
baseline for the aging mechanism.
"""

from __future__ import annotations

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.addressable_heap import AddressableHeap


class LFUPolicy(ReplacementPolicy):
    """Min-heap on reference count, FIFO tie-break."""

    name = "lfu"

    def __init__(self):
        self._heap: AddressableHeap = AddressableHeap()

    def __len__(self) -> int:
        return len(self._heap)

    def on_admit(self, entry: CacheEntry) -> None:
        self._heap.push(entry, entry.frequency)

    def on_hit(self, entry: CacheEntry) -> None:
        self._heap.update_key(entry, entry.frequency)

    def peek_victim(self) -> CacheEntry:
        return self._heap.peek()[0]

    def pop_victim(self) -> CacheEntry:
        entry, _ = self._heap.pop()
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._heap.remove(entry)

    def clear(self) -> None:
        self._heap.clear()
