"""Segmented LRU (Karedla, Love & Wherry, 1994).

Two LRU segments: new documents enter *probationary*; a hit promotes to
*protected*; protected overflow demotes back to the probationary MRU
end.  Victims come from the probationary LRU end first.  One bit of
frequency information (referenced-more-than-once) buys scan resistance
that plain LRU lacks, without per-document counters.

The protected segment is bounded in **bytes**, as a fraction of the
attached cache's capacity — entry-count bounds misbehave when the cache
holds only a handful of documents (the bound collapses to one entry and
promotions immediately demote the previous favourite).
"""

from __future__ import annotations

from typing import Dict

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.errors import ConfigurationError
from repro.structures.dlist import DList

_PROBATION = 0
_PROTECTED = 1


class SLRUPolicy(ReplacementPolicy):
    """Segmented LRU with a protected-bytes bound."""

    name = "slru"

    def __init__(self, protected_fraction: float = 0.5):
        if not 0.0 < protected_fraction < 1.0:
            raise ConfigurationError(
                "protected_fraction must be in (0, 1)")
        self.protected_fraction = protected_fraction
        self._probation: DList = DList()
        self._protected: DList = DList()
        self._segments: Dict[str, int] = {}
        self._protected_bytes = 0
        self._total = 0
        self.cache = None

    def __len__(self) -> int:
        return self._total

    def _protected_limit_bytes(self) -> int:
        if self.cache is None:
            raise ConfigurationError(
                "SLRUPolicy must be attached to a cache (its protected "
                "bound is a fraction of the cache capacity)")
        return int(self.cache.capacity_bytes * self.protected_fraction)

    def on_admit(self, entry: CacheEntry) -> None:
        entry.policy_data = self._probation.push_back(entry)
        self._segments[entry.url] = _PROBATION
        self._total += 1

    def on_hit(self, entry: CacheEntry) -> None:
        if self._segments[entry.url] == _PROTECTED:
            self._protected.move_to_back(entry.policy_data)
            return
        self._probation.unlink(entry.policy_data)
        entry.policy_data = self._protected.push_back(entry)
        self._segments[entry.url] = _PROTECTED
        self._protected_bytes += entry.size
        limit = self._protected_limit_bytes()
        # Demote LRU protected entries until within bounds — but never
        # the entry just promoted.
        while (self._protected_bytes > limit
               and len(self._protected) > 1):
            demoted = self._protected.pop_front()
            self._protected_bytes -= demoted.size
            demoted.policy_data = self._probation.push_back(demoted)
            self._segments[demoted.url] = _PROBATION

    def pop_victim(self) -> CacheEntry:
        if self._probation:
            entry = self._probation.pop_front()
        else:
            entry = self._protected.pop_front()
            self._protected_bytes -= entry.size
        del self._segments[entry.url]
        entry.policy_data = None
        self._total -= 1
        return entry

    def remove(self, entry: CacheEntry) -> None:
        if self._segments[entry.url] == _PROBATION:
            self._probation.unlink(entry.policy_data)
        else:
            self._protected.unlink(entry.policy_data)
            self._protected_bytes -= entry.size
        del self._segments[entry.url]
        entry.policy_data = None
        self._total -= 1

    def clear(self) -> None:
        self._probation = DList()
        self._protected = DList()
        self._segments.clear()
        self._protected_bytes = 0
        self._total = 0
