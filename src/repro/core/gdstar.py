"""Greedy-Dual* (Jin & Bestavros, paper Section 3).

GD* captures *both* sources of temporal locality:

* long-term popularity, through the in-cache reference count f(p) in the
  base value — like GDSF;
* short-term temporal correlation, through the aging exponent β:

      H(p) = L + ( f(p) · c(p) / s(p) ) ^ (1/β)

With β = 1 this is exactly GDSF; as β shrinks (weak correlation,
popularity-dominated workloads) the exponent 1/β grows and the utility
spread between documents widens, making frequency/cost/size differences
dominate recency (the inflation L).  β is estimated online from the
reuse distances of resident documents
(:class:`~repro.core.beta_estimator.OnlineBetaEstimator`), which is what
makes the policy adaptive; pass a
:class:`~repro.core.beta_estimator.FixedBetaEstimator` to pin it.

The paper's multimedia observation falls out of the formula: for an
infrequently accessed large document, f·c/s is tiny, and raising a tiny
number to the power 1/β ≥ 1 makes it tinier still — so GD*(1) discards
multimedia aggressively and posts the worst multimedia hit rate of all
four schemes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.beta_estimator import FixedBetaEstimator, OnlineBetaEstimator
from repro.core.cost import ConstantCost, CostModel
from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.addressable_heap import AddressableHeap

Estimator = Union[OnlineBetaEstimator, FixedBetaEstimator]

#: Utilities are clamped to this ceiling before exponentiation so that
#: 1/β powers of large ratios cannot overflow a float.
_MAX_UTILITY = 1e12


class GDStarPolicy(ReplacementPolicy):
    """Greedy-Dual* with online (or fixed) β."""

    #: Per-reference cost precomputed by the columnar engine.  When
    #: set, :meth:`_value` consumes it instead of calling the cost
    #: model (see :class:`~repro.core.gds.GDSPolicy`).  Only the cost
    #: term is hinted so ``f · c / s`` keeps its evaluation order.
    _hint_cost = None

    def __init__(self, cost_model: CostModel = None,
                 beta_estimator: Optional[Estimator] = None):
        self.cost_model = cost_model or ConstantCost()
        self.name = f"gd*({self.cost_model.tag.lower()})"
        self.estimator: Estimator = beta_estimator or OnlineBetaEstimator()
        self._heap: AddressableHeap = AddressableHeap()
        self.inflation = 0.0
        self._clock = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def beta(self) -> float:
        return self.estimator.beta

    def _value(self, entry: CacheEntry) -> float:
        size = max(entry.size, 1)
        cost = self._hint_cost
        if cost is None:
            cost = self.cost_model.cost(size)
        utility = entry.frequency * cost / size
        if utility > _MAX_UTILITY:
            utility = _MAX_UTILITY
        exponent = 1.0 / self.estimator.beta
        # Guard against overflow for utility > 1 with a large exponent.
        try:
            powered = utility ** exponent
        except OverflowError:
            powered = _MAX_UTILITY ** 2
        return self.inflation + powered

    def on_admit(self, entry: CacheEntry) -> None:
        self._clock += 1
        entry.policy_data = self._clock  # last-reference time for reuse gaps
        self._heap.push(entry, self._value(entry))

    def on_hit(self, entry: CacheEntry) -> None:
        self._clock += 1
        last = entry.policy_data
        if last is not None:
            self.estimator.observe(self._clock - last)
        entry.policy_data = self._clock
        self._heap.update_key(entry, self._value(entry))

    def peek_victim(self) -> CacheEntry:
        return self._heap.peek()[0]

    def pop_victim(self) -> CacheEntry:
        entry, h_min = self._heap.pop()
        self.inflation = h_min
        entry.policy_data = None
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._heap.remove(entry)
        entry.policy_data = None

    def clear(self) -> None:
        self._heap.clear()
        self.inflation = 0.0
        self._clock = 0

    def h_value(self, entry: CacheEntry) -> float:
        """Current H value of a resident entry (diagnostics)."""
        return self._heap.key_of(entry)
