"""Least Frequently Used with Dynamic Aging (paper Section 3).

Frequency-based with a recency correction: every entry's heap key is
``frequency + L`` where the *cache age* L is the key value of the most
recently evicted document.  Because L only grows, documents admitted or
referenced later start ahead of long-dead former favourites, which
prevents the cache pollution plain LFU suffers from.  Arlitt et al.
showed LFU-DA achieves high byte hit rates; the paper uses it as the
frequency-based representative under the fixed-cost/fixed-size
assumption.
"""

from __future__ import annotations

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.addressable_heap import AddressableHeap


class LFUDAPolicy(ReplacementPolicy):
    """Min-heap on ``frequency + cache_age``."""

    name = "lfu-da"

    def __init__(self):
        self._heap: AddressableHeap = AddressableHeap()
        self.cache_age = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def _key(self, entry: CacheEntry) -> float:
        return entry.frequency + self.cache_age

    def on_admit(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._key(entry))

    def on_hit(self, entry: CacheEntry) -> None:
        self._heap.update_key(entry, self._key(entry))

    def peek_victim(self) -> CacheEntry:
        return self._heap.peek()[0]

    def pop_victim(self) -> CacheEntry:
        entry, key = self._heap.pop()
        # The evicted document's key becomes the new cache age; keys only
        # grow, so the age is monotone non-decreasing.
        self.cache_age = key
        return entry

    def remove(self, entry: CacheEntry) -> None:
        # Invalidations do not advance the cache age: the document was
        # not evicted for being the least valuable.
        self._heap.remove(entry)

    def clear(self) -> None:
        self._heap.clear()
        self.cache_age = 0.0
