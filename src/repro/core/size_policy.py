"""SIZE baseline: evict the largest resident document first.

From Williams et al. and the Arlitt et al. comparison set.  Maximizes
the *number* of resident documents, so it can post high hit rates on
mixes dominated by small documents, at the price of terrible byte hit
rates — a useful extreme against which to read GDS(1)'s behaviour.
"""

from __future__ import annotations

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.addressable_heap import AddressableHeap


class SizePolicy(ReplacementPolicy):
    """Min-heap on negative size (largest evicts first); ties FIFO."""

    name = "size"

    def __init__(self):
        self._heap: AddressableHeap = AddressableHeap()

    def __len__(self) -> int:
        return len(self._heap)

    def on_admit(self, entry: CacheEntry) -> None:
        self._heap.push(entry, -entry.size)

    def on_hit(self, entry: CacheEntry) -> None:
        # Size does not change on a hit; nothing to reorder.
        pass

    def pop_victim(self) -> CacheEntry:
        entry, _ = self._heap.pop()
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._heap.remove(entry)

    def clear(self) -> None:
        self._heap.clear()
