"""Admission control: cache on second request.

One-hit wonders — documents requested exactly once — are a large share
of any proxy workload (the compulsory-miss analysis in
:mod:`repro.analysis.stack_distance` makes them visible: 40-60 % of
requests are first references).  Caching them wastes space and causes
evictions that never pay off.  The classic counter-measure, used by
modern CDNs and studied since Maltzahn et al.: *admit a document only
on its second request within a window*.

:class:`SecondHitAdmission` wraps any replacement policy.  It keeps a
bounded LRU "seen once" table of URLs; a document is admitted only if
its URL is already in the table (and a miss refreshes the table).  The
wrapped policy is untouched — admission and eviction stay orthogonal,
mirroring the library's cache/policy split.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.errors import ConfigurationError
from repro.structures.dlist import DList


class SeenOnceTable:
    """Bounded LRU set of URLs seen (at least) once recently."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity = capacity
        self._order: DList = DList()
        self._nodes: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, url: str) -> bool:
        return url in self._nodes

    def touch(self, url: str) -> None:
        """Record a sighting, refreshing recency; evicts the oldest
        entry beyond capacity."""
        node = self._nodes.get(url)
        if node is not None:
            self._order.move_to_back(node)
            return
        self._nodes[url] = self._order.push_back(url)
        if len(self._nodes) > self.capacity:
            evicted = self._order.pop_front()
            del self._nodes[evicted]

    def discard(self, url: str) -> None:
        node = self._nodes.pop(url, None)
        if node is not None:
            self._order.unlink(node)

    def clear(self) -> None:
        self._order = DList()
        self._nodes.clear()


class SecondHitAdmission(ReplacementPolicy):
    """Wraps a policy with admit-on-second-request filtering.

    The cache calls :meth:`admits` before every insertion; a URL not
    yet in the seen-once table is refused (and remembered), so its
    *next* miss within the window is admitted.  Every other policy
    hook forwards to the wrapped policy unchanged.
    """

    def __init__(self, inner: ReplacementPolicy,
                 window_urls: int = 100_000):
        self.inner = inner
        self.name = f"2hit+{inner.name}"
        self._seen = SeenOnceTable(window_urls)
        self._pending: Optional[str] = None

    def __len__(self) -> int:
        return len(self.inner)

    def attach(self, cache) -> None:
        self.cache = cache
        self.inner.attach(cache)

    def admits(self, size: int) -> bool:
        # The cache consults admits(size) without the URL; the
        # simulator-visible URL is snooped from the pending reference
        # the cache is processing.  To keep the wrapper self-contained
        # we instead overload record_request(), which the cache cannot
        # call — so admits() here only forwards the inner policy's
        # size-based decision and the URL filtering happens in
        # admits_url(), called by the cache when available.
        return self.inner.admits(size)

    def admits_url(self, url: str, size: int) -> bool:
        """URL-aware admission: True only for re-seen URLs."""
        if not self.inner.admits(size):
            return False
        if url in self._seen:
            return True
        self._seen.touch(url)
        return False

    def on_admit(self, entry: CacheEntry) -> None:
        self._seen.discard(entry.url)   # resident: table slot freed
        self.inner.on_admit(entry)

    def on_hit(self, entry: CacheEntry) -> None:
        self.inner.on_hit(entry)

    def pop_victim(self) -> CacheEntry:
        victim = self.inner.pop_victim()
        # An evicted document goes back to "seen": its next miss
        # re-admits immediately (it has proven reuse).
        self._seen.touch(victim.url)
        return victim

    def remove(self, entry: CacheEntry) -> None:
        self.inner.remove(entry)

    def clear(self) -> None:
        self.inner.clear()
        self._seen.clear()
