"""Policy construction by name.

The names follow the paper's notation: the Greedy-Dual family carries
its cost model in parentheses — ``gds(1)`` / ``gd*(1)`` for constant
cost, ``gds(p)`` / ``gd*(p)`` for packet cost.  Aliases with the
parentheses spelled out (``gds1``, ``gdstar-p``, ...) are accepted.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.beta_estimator import FixedBetaEstimator
from repro.core.cost import ConstantCost, PacketCost
from repro.core.fifo import FIFOPolicy
from repro.core.gds import GDSPolicy
from repro.core.gdsf import GDSFPolicy
from repro.core.gdstar import GDStarPolicy
from repro.core.gdstar_typed import GDStarTypedPolicy
from repro.core.hyperbolic import HyperbolicPolicy
from repro.core.landlord import LandlordPolicy
from repro.core.lfu import LFUPolicy
from repro.core.lfu_da import LFUDAPolicy
from repro.core.lru import LRUPolicy
from repro.core.lru_k import LRUKPolicy
from repro.core.lru_threshold import LRUThresholdPolicy
from repro.core.policy import ReplacementPolicy
from repro.core.random_policy import RandomPolicy
from repro.core.size_policy import SizePolicy
from repro.core.slru import SLRUPolicy
from repro.errors import ConfigurationError

#: Default admission threshold for lru-threshold (Squid's historical
#: 4 MB maximum_object_size default).
DEFAULT_THRESHOLD_BYTES = 4 * 1024 * 1024

_FACTORIES: Dict[str, Callable[..., ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "lfu": LFUPolicy,
    "lfu-da": LFUDAPolicy,
    "size": SizePolicy,
    "rand": RandomPolicy,
    "slru": SLRUPolicy,
    "lru-2": lambda **kw: LRUKPolicy(k=2, **kw),
    "lru-threshold": lambda **kw: LRUThresholdPolicy(
        kw.pop("threshold_bytes", DEFAULT_THRESHOLD_BYTES), **kw),
    "gds(1)": lambda **kw: GDSPolicy(ConstantCost(), **kw),
    "gds(p)": lambda **kw: GDSPolicy(PacketCost(), **kw),
    "gdsf(1)": lambda **kw: GDSFPolicy(ConstantCost(), **kw),
    "gdsf(p)": lambda **kw: GDSFPolicy(PacketCost(), **kw),
    "gd*(1)": lambda **kw: GDStarPolicy(ConstantCost(), **kw),
    "gd*(p)": lambda **kw: GDStarPolicy(PacketCost(), **kw),
    "gd*t(1)": lambda **kw: GDStarTypedPolicy(ConstantCost(), **kw),
    "gd*t(p)": lambda **kw: GDStarTypedPolicy(PacketCost(), **kw),
    "landlord(1)": lambda **kw: LandlordPolicy(ConstantCost(), **kw),
    "landlord(p)": lambda **kw: LandlordPolicy(PacketCost(), **kw),
    "hyperbolic(1)": lambda **kw: HyperbolicPolicy(ConstantCost(), **kw),
    "hyperbolic(p)": lambda **kw: HyperbolicPolicy(PacketCost(), **kw),
}

_ALIASES = {
    "lfuda": "lfu-da",
    "lfu_da": "lfu-da",
    "random": "rand",
    "lru2": "lru-2",
    "lruk": "lru-2",
    "gds1": "gds(1)",
    "gdsp": "gds(p)",
    "gds-1": "gds(1)",
    "gds-p": "gds(p)",
    "gdsf1": "gdsf(1)",
    "gdsfp": "gdsf(p)",
    "gd*1": "gd*(1)",
    "gd*p": "gd*(p)",
    "gdstar(1)": "gd*(1)",
    "gdstar(p)": "gd*(p)",
    "gdstar-1": "gd*(1)",
    "gdstar-p": "gd*(p)",
    "gdstar1": "gd*(1)",
    "gdstarp": "gd*(p)",
    "gdstar-typed": "gd*t(1)",
    "gd*typed(1)": "gd*t(1)",
    "gd*typed(p)": "gd*t(p)",
    "landlord": "landlord(1)",
    "landlord1": "landlord(1)",
    "landlordp": "landlord(p)",
    "hyperbolic": "hyperbolic(1)",
    "lru-t": "lru-threshold",
    "lrut": "lru-threshold",
}

#: Canonical constructible policy names.
POLICY_NAMES: List[str] = sorted(_FACTORIES)

#: The four schemes the paper compares under the constant cost model.
PAPER_CONSTANT_COST = ("lru", "lfu-da", "gds(1)", "gd*(1)")

#: The four schemes the paper compares under the packet cost model.
PAPER_PACKET_COST = ("lru", "lfu-da", "gds(p)", "gd*(p)")


def canonical_name(name: str) -> str:
    """Resolve aliases and normalize case; raises on unknown names."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}")
    return key


def make_policy(name: str, *, fixed_beta: float = None,
                seed: int = None,
                threshold_bytes: int = None) -> ReplacementPolicy:
    """Construct a policy by (possibly aliased) name.

    Args:
        name: Policy name, e.g. ``"lru"`` or ``"gd*(p)"``.
        fixed_beta: For GD* variants only: pin β instead of estimating
            it online (the ablation arm).
        seed: For the randomized policies (``rand``, ``hyperbolic``)
            only: the eviction RNG seed.
        threshold_bytes: For ``lru-threshold`` only: the admission
            size limit (default 4 MB).
    """
    key = canonical_name(name)
    kwargs = {}
    if fixed_beta is not None:
        if key not in ("gd*(1)", "gd*(p)"):
            raise ConfigurationError(
                f"fixed_beta only applies to gd*(1)/gd*(p), not {name!r}")
        kwargs["beta_estimator"] = FixedBetaEstimator(fixed_beta)
    if seed is not None:
        if key != "rand" and not key.startswith("hyperbolic"):
            raise ConfigurationError(
                f"seed only applies to randomized policies, not {name!r}")
        kwargs["seed"] = seed
    if threshold_bytes is not None:
        if key != "lru-threshold":
            raise ConfigurationError(
                f"threshold_bytes only applies to lru-threshold, "
                f"not {name!r}")
        kwargs["threshold_bytes"] = threshold_bytes
    return _FACTORIES[key](**kwargs)
