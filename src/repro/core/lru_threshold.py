"""LRU-Threshold (Abrams et al.): LRU with a size admission filter.

Documents larger than the threshold are never cached; everything else
is plain LRU.  The crudest possible size-awareness — useful as the
lower bound against which GDS's continuous cost/size valuation is
measured, and historically what many production proxies actually
shipped (Squid's ``maximum_object_size``).
"""

from __future__ import annotations

from repro.core.lru import LRUPolicy
from repro.core.policy import CacheEntry
from repro.errors import ConfigurationError


class LRUThresholdPolicy(LRUPolicy):
    """LRU ordering; the admission decision lives in ``admits``.

    The cache consults :meth:`admits` before admitting (see
    :meth:`repro.core.cache.Cache.reference`); oversized documents are
    bypassed exactly like documents larger than the whole cache.
    """

    def __init__(self, threshold_bytes: int):
        super().__init__()
        if threshold_bytes <= 0:
            raise ConfigurationError("threshold_bytes must be positive")
        self.threshold_bytes = threshold_bytes
        self.name = "lru-threshold"

    def admits(self, size: int) -> bool:
        """Admission filter: False for documents above the threshold."""
        return size <= self.threshold_bytes

    def on_admit(self, entry: CacheEntry) -> None:
        super().on_admit(entry)
