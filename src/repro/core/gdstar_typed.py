"""GD* with per-document-type β estimation.

The paper's Section 4.4 diagnosis of GD*'s weakness on the RTP trace:

    "The slopes β of the distribution of temporal correlation for HTML,
    multi media, and application documents are much bigger than the
    overall slope ..., which is dominated by the slope of image
    documents.  This causes additional errors in replacement decisions
    performed by [GD*]."

The fix the paper implies but does not build: estimate β **per document
type** and age each document with its own type's exponent.  That is
exactly this policy — GD* (:mod:`repro.core.gdstar`) with one
:class:`~repro.core.beta_estimator.OnlineBetaEstimator` per
:class:`~repro.types.DocumentType`, so a multimedia document's strong
temporal correlation is no longer flattened by millions of
uncorrelated image references.  The ``ablation-typed-beta`` experiment
measures what the fix buys on the RTP-like workload.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.beta_estimator import OnlineBetaEstimator
from repro.core.cost import ConstantCost, CostModel
from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.addressable_heap import AddressableHeap
from repro.types import DOCUMENT_TYPES, DocumentType

#: See :data:`repro.core.gdstar._MAX_UTILITY`.
_MAX_UTILITY = 1e12

EstimatorFactory = Callable[[], OnlineBetaEstimator]


class GDStarTypedPolicy(ReplacementPolicy):
    """Greedy-Dual* with one online β estimator per document type."""

    def __init__(self, cost_model: CostModel = None,
                 estimator_factory: Optional[EstimatorFactory] = None):
        self.cost_model = cost_model or ConstantCost()
        self.name = f"gd*t({self.cost_model.tag.lower()})"
        factory = estimator_factory or OnlineBetaEstimator
        self.estimators: Dict[DocumentType, OnlineBetaEstimator] = {
            doc_type: factory() for doc_type in DOCUMENT_TYPES}
        self._heap: AddressableHeap = AddressableHeap()
        self.inflation = 0.0
        self._clock = 0

    def __len__(self) -> int:
        return len(self._heap)

    def beta(self, doc_type: DocumentType) -> float:
        """Current β estimate for one document type."""
        return self.estimators[doc_type].beta

    def _value(self, entry: CacheEntry) -> float:
        size = max(entry.size, 1)
        utility = entry.frequency * self.cost_model.cost(size) / size
        if utility > _MAX_UTILITY:
            utility = _MAX_UTILITY
        exponent = 1.0 / self.estimators[entry.doc_type].beta
        try:
            powered = utility ** exponent
        except OverflowError:
            powered = _MAX_UTILITY ** 2
        return self.inflation + powered

    def on_admit(self, entry: CacheEntry) -> None:
        self._clock += 1
        entry.policy_data = self._clock
        self._heap.push(entry, self._value(entry))

    def on_hit(self, entry: CacheEntry) -> None:
        self._clock += 1
        last = entry.policy_data
        if last is not None:
            self.estimators[entry.doc_type].observe(self._clock - last)
        entry.policy_data = self._clock
        self._heap.update_key(entry, self._value(entry))

    def peek_victim(self) -> CacheEntry:
        return self._heap.peek()[0]

    def pop_victim(self) -> CacheEntry:
        entry, h_min = self._heap.pop()
        self.inflation = h_min
        entry.policy_data = None
        return entry

    def remove(self, entry: CacheEntry) -> None:
        self._heap.remove(entry)
        entry.policy_data = None

    def clear(self) -> None:
        self._heap.clear()
        self.inflation = 0.0
        self._clock = 0
