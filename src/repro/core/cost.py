"""Retrieval cost models (paper Section 3).

Two cost models parameterize the Greedy-Dual family:

* **constant cost** ``c(p) = 1`` — every retrieval costs the same; a
  policy maximizing saved cost then maximizes the *hit rate* (the
  institutional-proxy objective);
* **packet cost** ``c(p) = 2 + s(p) / 536`` — retrieval cost is the TCP
  packet count (SYN + request packet plus one 536-byte MSS segment per
  payload chunk); maximizing saved packets approximates maximizing the
  *byte hit rate* (the backbone-proxy objective).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

#: Default TCP maximum segment size used by the packet cost model.
DEFAULT_MSS = 536


class CostModel(ABC):
    """Maps a document size to a retrieval cost."""

    name: str = "abstract"
    #: Short tag used in policy display names: GDS(1) vs GDS(P).
    tag: str = "?"

    @abstractmethod
    def cost(self, size: int) -> float:
        """Retrieval cost of a document of ``size`` bytes."""

    def cost_array(self, sizes):
        """Vectorized ``cost`` over a numpy integer size array.

        Must be element-wise bit-identical to :meth:`cost` — the
        columnar engine precomputes per-chunk Greedy-Dual key costs
        with it.  The fallback loops; the built-in models override
        with true array expressions.
        """
        import numpy as np

        return np.array([self.cost(int(size)) for size in sizes],
                        dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class ConstantCost(CostModel):
    """c(p) = constant (default 1)."""

    name = "constant"
    tag = "1"

    def __init__(self, value: float = 1.0):
        if value <= 0:
            raise ConfigurationError("constant cost must be positive")
        self.value = value

    def cost(self, size: int) -> float:
        return self.value

    def cost_array(self, sizes):
        import numpy as np

        return np.full(len(sizes), self.value, dtype=np.float64)


class PacketCost(CostModel):
    """c(p) = 2 + s(p) / mss, the paper's TCP packet count.

    ``ceil_packets=True`` rounds the payload term up to whole packets;
    the paper's formula is the plain quotient, which is the default.
    """

    name = "packet"
    tag = "P"

    def __init__(self, mss: int = DEFAULT_MSS, ceil_packets: bool = False):
        if mss <= 0:
            raise ConfigurationError("mss must be positive")
        self.mss = mss
        self.ceil_packets = ceil_packets

    def cost(self, size: int) -> float:
        payload = size / self.mss
        if self.ceil_packets:
            payload = math.ceil(payload)
        return 2.0 + payload

    def cost_array(self, sizes):
        import numpy as np

        payload = sizes / self.mss
        if self.ceil_packets:
            payload = np.ceil(payload)
        return 2.0 + payload


class ByteCost(CostModel):
    """c(p) = s(p): saved cost equals saved bytes exactly.

    Not in the paper; included because GDS with byte cost degenerates to
    a pure recency policy (c/s = 1 for all documents), a useful sanity
    baseline for tests and ablations.
    """

    name = "byte"
    tag = "B"

    def cost(self, size: int) -> float:
        return float(size)

    def cost_array(self, sizes):
        import numpy as np

        return sizes.astype(np.float64)


class LatencyCost(CostModel):
    """c(p) = rtt + s(p) / bandwidth: estimated download time.

    The latency-optimizing member of Cao & Irani's cost-function
    family: a Greedy-Dual policy under this model minimizes user-
    perceived delay rather than request count or traffic.  Defaults
    model a 2001-era WAN path (70 ms RTT, 1.5 Mbit/s ≈ 187 KB/s).
    """

    name = "latency"
    tag = "L"

    def __init__(self, rtt_seconds: float = 0.070,
                 bandwidth_bytes_per_second: float = 187_500.0):
        if rtt_seconds <= 0:
            raise ConfigurationError("rtt_seconds must be positive")
        if bandwidth_bytes_per_second <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.rtt_seconds = rtt_seconds
        self.bandwidth = bandwidth_bytes_per_second

    def cost(self, size: int) -> float:
        return self.rtt_seconds + size / self.bandwidth

    def cost_array(self, sizes):
        return self.rtt_seconds + sizes / self.bandwidth


def make_cost_model(name: str) -> CostModel:
    """Build a cost model from its name ("constant"/"1", "packet"/"p")."""
    key = name.strip().lower()
    if key in ("constant", "const", "1"):
        return ConstantCost()
    if key in ("packet", "packets", "p"):
        return PacketCost()
    if key in ("byte", "bytes", "b"):
        return ByteCost()
    if key in ("latency", "l"):
        return LatencyCost()
    raise ConfigurationError(f"unknown cost model: {name!r}")
