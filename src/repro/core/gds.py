"""Greedy-Dual-Size (Cao & Irani, paper Section 3).

Each resident document p carries a value H(p).  On admission or hit,
H(p) = L + c(p)/s(p), where c is the cost model, s the size, and L the
*inflation*: conceptually, GDS reduces all H values by H_min at every
eviction; the standard O(log n) realization instead keeps L equal to the
H value of the last evicted document and adds it when (re)setting H, so
no mass update ever happens.  The victim is always the minimum-H
document.

GDS is online-optimal with respect to its cost function.  Under constant
cost, c/s = 1/s: small documents are precious, large ones are evicted
readily — high hit rate, poor byte hit rate on multimedia.  Its stated
weakness, motivating GD*, is ignoring frequency.
"""

from __future__ import annotations

from repro.core.cost import ConstantCost, CostModel
from repro.core.policy import CacheEntry, ReplacementPolicy
from repro.structures.addressable_heap import AddressableHeap


class GDSPolicy(ReplacementPolicy):
    """Greedy-Dual-Size with inflation-based aging."""

    #: Per-reference cost precomputed by the columnar engine.  When
    #: set, :meth:`_value` consumes it instead of calling the cost
    #: model.  Sound because ``_value`` only runs from on_admit/on_hit,
    #: whose entry size always equals the current reference's size.
    _hint_cost = None

    def __init__(self, cost_model: CostModel = None):
        self.cost_model = cost_model or ConstantCost()
        self.name = f"gds({self.cost_model.tag.lower()})"
        self._heap: AddressableHeap = AddressableHeap()
        self.inflation = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def _value(self, entry: CacheEntry) -> float:
        # Clamp zero-size documents consistently: the same floored
        # size feeds both the cost model and the denominator.
        size = max(entry.size, 1)
        cost = self._hint_cost
        if cost is None:
            cost = self.cost_model.cost(size)
        return self.inflation + cost / size

    def on_admit(self, entry: CacheEntry) -> None:
        self._heap.push(entry, self._value(entry))

    def on_hit(self, entry: CacheEntry) -> None:
        # A hit restores the document's full (inflated) value.
        self._heap.update_key(entry, self._value(entry))

    def peek_victim(self) -> CacheEntry:
        return self._heap.peek()[0]

    def pop_victim(self) -> CacheEntry:
        entry, h_min = self._heap.pop()
        # Aging: everything not touched since stays below future H values.
        self.inflation = h_min
        return entry

    def remove(self, entry: CacheEntry) -> None:
        # Invalidation is not an eviction decision; L stays put.
        self._heap.remove(entry)

    def clear(self) -> None:
        self._heap.clear()
        self.inflation = 0.0

    def h_value(self, entry: CacheEntry) -> float:
        """Current H value of a resident entry (diagnostics)."""
        return self._heap.key_of(entry)
