"""repro — web cache replacement by document type.

A production-quality reproduction of Lindemann & Waldhorst,
*"Evaluating the Impact of Different Document Types on the Performance
of Web Cache Replacement Schemes"* (DSN 2002): trace-driven simulation
of LRU, LFU-DA, Greedy-Dual-Size, and Greedy-Dual* with hit rates and
byte hit rates broken down by document type (images, HTML, multimedia,
application), under the constant and packet cost models.

Quickstart::

    from repro import dfn_like, generate_trace, simulate

    trace = generate_trace(dfn_like(scale=1 / 256))
    result = simulate(trace, policy="gd*(1)", capacity_bytes=50_000_000)
    print(result.hit_rate(), result.byte_hit_rate())

Subpackages:

* :mod:`repro.core` — replacement policies, cost models, the cache;
* :mod:`repro.trace` — proxy-log parsing and preprocessing;
* :mod:`repro.workload` — synthetic DFN-like / RTP-like trace generation;
* :mod:`repro.simulation` — the Section-4.1 simulator and sweeps;
* :mod:`repro.analysis` — workload characterization (α, β, size stats);
* :mod:`repro.model` — analytical (Che/TTL) hit-rate models, no trace
  pass needed;
* :mod:`repro.experiments` — one named experiment per paper table/figure;
* :mod:`repro.resilience` — retries, checkpoints, fault injection;
* :mod:`repro.observability` — logging, metrics, manifests, telemetry.
"""

from repro.types import (
    DOCUMENT_TYPES,
    PLOTTED_TYPES,
    DocumentType,
    Request,
    Trace,
    TraceMetadata,
)
from repro.errors import (
    AnalysisError,
    CapacityError,
    CellTimeoutError,
    CheckpointError,
    ConfigurationError,
    ExperimentError,
    ReproError,
    SimulationError,
    TraceFormatError,
    WorkerCrashError,
)
from repro.core import (
    Cache,
    ConstantCost,
    PacketCost,
    POLICY_NAMES,
    make_policy,
)
from repro.simulation import (
    CacheSimulator,
    SimulationConfig,
    SimulationResult,
    SizeInterpretation,
    SweepResult,
    cache_sizes_from_fractions,
    run_sweep,
    simulate,
)
from repro.workload import (
    WorkloadProfile,
    dfn_like,
    future_like,
    fidelity_report,
    fit_profile,
    generate_trace,
    rtp_like,
    uniform_profile,
)
from repro.analysis import characterize, estimate_alpha, estimate_beta
from repro.model import (
    Catalog,
    catalog_from_profile,
    catalog_from_trace,
    hit_rate_curve,
    predict_hit_rates,
    validate_model,
)
from repro.trace import load_trace, write_trace
from repro.experiments import run_experiment, run_suite
from repro.resilience import (
    CheckpointStore,
    FaultInjector,
    RetryPolicy,
    config_hash,
    retry_call,
)
from repro.observability import (
    ProgressReporter,
    RunManifest,
    TelemetryRun,
    configure_logging,
    disable_metrics,
    enable_metrics,
    get_logger,
    get_registry,
    read_events,
    validate_telemetry_dir,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # types
    "DocumentType", "DOCUMENT_TYPES", "PLOTTED_TYPES",
    "Request", "Trace", "TraceMetadata",
    # errors
    "ReproError", "TraceFormatError", "ConfigurationError",
    "CapacityError", "SimulationError", "AnalysisError", "ExperimentError",
    "WorkerCrashError", "CellTimeoutError", "CheckpointError",
    # core
    "Cache", "ConstantCost", "PacketCost", "POLICY_NAMES", "make_policy",
    # simulation
    "CacheSimulator", "SimulationConfig", "SimulationResult",
    "SizeInterpretation", "SweepResult", "simulate", "run_sweep",
    "cache_sizes_from_fractions",
    # workload
    "WorkloadProfile", "dfn_like", "rtp_like", "future_like",
    "uniform_profile",
    "generate_trace",
    "fit_profile", "fidelity_report",
    # analysis
    "characterize", "estimate_alpha", "estimate_beta",
    # analytical models
    "Catalog", "catalog_from_trace", "catalog_from_profile",
    "predict_hit_rates", "hit_rate_curve", "validate_model",
    # trace io
    "load_trace", "write_trace",
    # experiments
    "run_experiment", "run_suite",
    # resilience
    "CheckpointStore", "config_hash", "RetryPolicy", "retry_call",
    "FaultInjector",
    # observability
    "configure_logging", "get_logger", "enable_metrics",
    "disable_metrics", "get_registry", "TelemetryRun", "RunManifest",
    "ProgressReporter", "read_events", "validate_telemetry_dir",
]
