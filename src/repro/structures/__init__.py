"""Core data structures shared by policies and estimators.

* :class:`~repro.structures.dlist.DList` — intrusive doubly-linked list
  backing the LRU and FIFO policies (O(1) move-to-front / unlink).
* :class:`~repro.structures.addressable_heap.AddressableHeap` — binary
  min-heap with a position map, supporting in-place key updates; backs the
  Greedy-Dual family and LFU-DA.
* :class:`~repro.structures.histogram.LogHistogram` — logarithmically
  binned counter used for reuse-distance distributions (β estimation).
* :mod:`~repro.structures.streaming` — Welford mean/variance and a P²
  quantile estimator for single-pass trace statistics.
* :class:`~repro.structures.reservoir.Reservoir` — uniform reservoir
  sampling for bounded-memory medians over full traces.
"""

from repro.structures.dlist import DList, DListNode
from repro.structures.fenwick import FenwickTree
from repro.structures.addressable_heap import AddressableHeap
from repro.structures.histogram import Histogram, LogHistogram
from repro.structures.streaming import P2Quantile, StreamingStats
from repro.structures.reservoir import Reservoir

__all__ = [
    "DList",
    "FenwickTree",
    "DListNode",
    "AddressableHeap",
    "Histogram",
    "LogHistogram",
    "P2Quantile",
    "StreamingStats",
    "Reservoir",
]
