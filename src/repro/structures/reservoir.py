"""Uniform reservoir sampling (Vitter's algorithm R).

Used where the analysis layer wants an *exact-over-sample* statistic (for
example a median cross-check against the P² estimate) without holding the
full trace in memory.
"""

from __future__ import annotations

import random
from typing import Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class Reservoir(Generic[T]):
    """Keeps a uniform random sample of at most ``capacity`` items."""

    def __init__(self, capacity: int, seed: Optional[int] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self._sample: List[T] = []
        self._rng = random.Random(seed)

    def add(self, item: T) -> None:
        self.count += 1
        if len(self._sample) < self.capacity:
            self._sample.append(item)
            return
        # Replace a random slot with probability capacity / count.
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._sample[slot] = item

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.add(item)

    @property
    def sample(self) -> List[T]:
        """The current sample (a copy, safe to sort or mutate)."""
        return list(self._sample)

    def __len__(self) -> int:
        return len(self._sample)
