"""Fixed-bin and logarithmically-binned histograms.

:class:`LogHistogram` is the workhorse of the temporal-correlation (β)
estimator: reuse distances span five or more orders of magnitude, and the
paper's β is defined as the slope of the reuse-distance density on a
log-log plot, which log-spaced bins estimate directly.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple


class Histogram:
    """Simple equal-width histogram over [lo, hi)."""

    def __init__(self, lo: float, hi: float, bins: int):
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if bins <= 0:
            raise ValueError("bins must be positive")
        self.lo = lo
        self.hi = hi
        self.counts: List[int] = [0] * bins
        self._width = (hi - lo) / bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0

    def add(self, value: float, weight: int = 1) -> None:
        self.total += weight
        if value < self.lo:
            self.underflow += weight
            return
        if value >= self.hi:
            self.overflow += weight
            return
        idx = int((value - self.lo) / self._width)
        # Guard the hi-boundary float round-off.
        if idx >= len(self.counts):
            idx = len(self.counts) - 1
        self.counts[idx] += weight

    def bin_edges(self) -> List[float]:
        return [self.lo + i * self._width for i in range(len(self.counts) + 1)]

    def mean(self) -> float:
        """Mean of the in-range samples, using bin midpoints."""
        inrange = sum(self.counts)
        if inrange == 0:
            return math.nan
        acc = 0.0
        for i, count in enumerate(self.counts):
            mid = self.lo + (i + 0.5) * self._width
            acc += mid * count
        return acc / inrange


class LogHistogram:
    """Histogram with logarithmically spaced bins over [1, max_value].

    Values below 1 land in bin 0.  Each bin spans a constant factor
    ``base ** (1 / bins_per_decade)`` where base is 10.
    """

    def __init__(self, max_value: float = 1e8, bins_per_decade: int = 8):
        if max_value <= 1:
            raise ValueError("max_value must exceed 1")
        if bins_per_decade <= 0:
            raise ValueError("bins_per_decade must be positive")
        self.bins_per_decade = bins_per_decade
        self._log_width = 1.0 / bins_per_decade
        n_bins = int(math.ceil(math.log10(max_value) * bins_per_decade)) + 1
        self.counts: List[int] = [0] * n_bins
        self.total = 0

    def __len__(self) -> int:
        return len(self.counts)

    def add(self, value: float, weight: int = 1) -> None:
        """Record a positive value; values <= 1 go to the first bin."""
        if value <= 0:
            raise ValueError("LogHistogram only accepts positive values")
        self.total += weight
        if value <= 1:
            idx = 0
        else:
            idx = int(math.log10(value) / self._log_width)
            if idx >= len(self.counts):
                idx = len(self.counts) - 1
        self.counts[idx] += weight

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def bin_bounds(self, idx: int) -> Tuple[float, float]:
        """(lower, upper) value bounds of bin ``idx``.

        Bin 0 nominally covers [1, base); values below 1 are clamped
        into it, so its lower bound is reported as 1.
        """
        lo = 10 ** (idx * self._log_width)
        hi = 10 ** ((idx + 1) * self._log_width)
        return lo, hi

    def bin_center(self, idx: int) -> float:
        """Geometric midpoint of bin ``idx``."""
        lo, hi = self.bin_bounds(idx)
        return math.sqrt(lo * hi)

    def densities(self) -> List[Tuple[float, float]]:
        """Nonempty bins as (center, count / bin_width) density points.

        Dividing by the (growing) bin width converts counts into an
        estimate of the underlying probability density up to a constant
        factor, which is what a log-log slope fit needs.
        """
        points = []
        for idx, count in enumerate(self.counts):
            if count == 0:
                continue
            lo, hi = self.bin_bounds(idx)
            width = hi - lo
            points.append((self.bin_center(idx), count / width))
        return points

    def loglog_points(self) -> List[Tuple[float, float]]:
        """(log10 center, log10 density) pairs for slope fitting."""
        return [(math.log10(x), math.log10(y))
                for x, y in self.densities() if x > 0 and y > 0]

    def merge(self, other: "LogHistogram") -> None:
        """Accumulate another histogram with identical binning."""
        if (other.bins_per_decade != self.bins_per_decade
                or len(other.counts) != len(self.counts)):
            raise ValueError("histograms have incompatible binning")
        for idx, count in enumerate(other.counts):
            self.counts[idx] += count
        self.total += other.total

    def decay(self, factor: float) -> None:
        """Multiply all counts by ``factor`` (aging for online estimation)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        new_total = 0
        for idx, count in enumerate(self.counts):
            decayed = int(count * factor)
            self.counts[idx] = decayed
            new_total += decayed
        self.total = new_total


def least_squares_slope(points: Sequence[Tuple[float, float]]) -> float:
    """Ordinary least-squares slope of y on x.

    Raises ValueError with fewer than two distinct x values.
    """
    n = len(points)
    if n < 2:
        raise ValueError("need at least two points for a slope")
    mean_x = sum(p[0] for p in points) / n
    mean_y = sum(p[1] for p in points) / n
    sxx = sum((p[0] - mean_x) ** 2 for p in points)
    if sxx == 0:
        raise ValueError("degenerate x values; slope undefined")
    sxy = sum((p[0] - mean_x) * (p[1] - mean_y) for p in points)
    return sxy / sxx
