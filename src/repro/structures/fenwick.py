"""Fenwick tree (binary indexed tree) over integer positions.

Backs the one-pass LRU stack-distance computation
(:mod:`repro.analysis.stack_distance`): each trace position holds a 0/1
flag ("is this the most recent reference to its document"), and the
stack distance of a re-reference is the number of set flags between the
previous reference and now — a prefix-sum query.  Both update and query
are O(log n).
"""

from __future__ import annotations

from typing import List


class FenwickTree:
    """Prefix sums over ``size`` integer cells (0-indexed externally)."""

    __slots__ = ("_tree", "size")

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._tree: List[int] = [0] * (size + 1)

    def add(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` to the cell at ``index``."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")
        position = index + 1
        tree = self._tree
        while position <= self.size:
            tree[position] += delta
            position += position & (-position)

    def prefix_sum(self, index: int) -> int:
        """Sum of cells [0, index].  index = -1 gives 0."""
        if index >= self.size:
            index = self.size - 1
        total = 0
        position = index + 1
        tree = self._tree
        while position > 0:
            total += tree[position]
            position -= position & (-position)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of cells [lo, hi] inclusive."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def total(self) -> int:
        return self.prefix_sum(self.size - 1)
