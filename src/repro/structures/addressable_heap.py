"""Addressable binary min-heap.

A binary heap over ``(key, item)`` pairs with a position map so that a
specific item's key can be updated (raised or lowered) in O(log n) and an
arbitrary item removed in O(log n).  Ties are broken by insertion order,
which makes every policy built on it deterministic.

This single structure backs all value-based replacement policies: the
Greedy-Dual family pops the minimum-H document, LFU-DA pops the minimum
(aged) reference count, and SIZE pops the minimum of ``-size``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generic, Hashable, Iterator, Tuple, TypeVar

K = TypeVar("K")  # keys must be mutually comparable


class AddressableHeap(Generic[K]):
    """Min-heap keyed by ``(key, sequence)`` with item addressing."""

    __slots__ = ("_entries", "_positions", "_counter")

    def __init__(self):
        # Each entry is [key, seq, item]; seq breaks ties FIFO.
        self._entries: list = []
        self._positions: Dict[Hashable, int] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._positions

    def __iter__(self) -> Iterator[Hashable]:
        """Iterate items in arbitrary (heap) order."""
        return (entry[2] for entry in self._entries)

    def push(self, item: Hashable, key: K) -> None:
        """Insert an item.  Raises KeyError if the item is already present."""
        if item in self._positions:
            raise KeyError(f"item already in heap: {item!r}")
        entry = [key, next(self._counter), item]
        self._entries.append(entry)
        self._positions[item] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def key_of(self, item: Hashable) -> K:
        """Current key of an item.  Raises KeyError if absent."""
        return self._entries[self._positions[item]][0]

    def peek(self) -> Tuple[Hashable, K]:
        """The (item, key) pair with the minimum key, without removing it."""
        if not self._entries:
            raise IndexError("peek at empty heap")
        entry = self._entries[0]
        return entry[2], entry[0]

    def pop(self) -> Tuple[Hashable, K]:
        """Remove and return the (item, key) pair with the minimum key."""
        if not self._entries:
            raise IndexError("pop from empty heap")
        entry = self._entries[0]
        self._remove_at(0)
        return entry[2], entry[0]

    def remove(self, item: Hashable) -> K:
        """Remove an arbitrary item; returns its key."""
        pos = self._positions[item]
        key = self._entries[pos][0]
        self._remove_at(pos)
        return key

    def update_key(self, item: Hashable, key: K) -> None:
        """Set an item's key, restoring heap order in O(log n).

        The new key is also assigned a fresh tie-break sequence number, so
        re-keyed items sort after existing equal keys (matching the
        "refreshed documents are newer" semantics the Greedy-Dual policies
        expect).
        """
        pos = self._positions[item]
        entry = self._entries[pos]
        old_key = entry[0]
        entry[0] = key
        entry[1] = next(self._counter)
        if key < old_key:
            self._sift_up(pos)
        else:
            self._sift_down(pos)

    def clear(self) -> None:
        self._entries.clear()
        self._positions.clear()

    # ----- internal sift machinery -------------------------------------

    def _less(self, a: int, b: int) -> bool:
        ea, eb = self._entries[a], self._entries[b]
        # Hot path: avoid building tie-break tuples unless keys tie.
        key_a, key_b = ea[0], eb[0]
        if key_a != key_b:
            return key_a < key_b
        return ea[1] < eb[1]

    def _swap(self, a: int, b: int) -> None:
        entries = self._entries
        entries[a], entries[b] = entries[b], entries[a]
        self._positions[entries[a][2]] = a
        self._positions[entries[b][2]] = b

    # The sift loops are the hottest code in every value-based policy
    # (millions of calls per simulated trace), so they trade the tidy
    # _less/_swap helpers for inlined comparisons and the classic
    # "hole" technique: the moving entry is written once at its final
    # position instead of being swapped down level by level.  The
    # comparison predicate is exactly _less, so heap layouts (and with
    # them every policy's eviction order) are unchanged.

    def _sift_up(self, pos: int) -> None:
        entries = self._entries
        positions = self._positions
        entry = entries[pos]
        key, seq = entry[0], entry[1]
        while pos > 0:
            parent_pos = (pos - 1) >> 1
            parent = entries[parent_pos]
            parent_key = parent[0]
            if key < parent_key or (key == parent_key
                                    and seq < parent[1]):
                entries[pos] = parent
                positions[parent[2]] = pos
                pos = parent_pos
            else:
                break
        entries[pos] = entry
        positions[entry[2]] = pos

    def _sift_down(self, pos: int) -> None:
        entries = self._entries
        positions = self._positions
        size = len(entries)
        entry = entries[pos]
        key, seq = entry[0], entry[1]
        while True:
            child_pos = 2 * pos + 1
            if child_pos >= size:
                break
            child = entries[child_pos]
            right_pos = child_pos + 1
            if right_pos < size:
                right = entries[right_pos]
                child_key, right_key = child[0], right[0]
                if right_key < child_key or (right_key == child_key
                                             and right[1] < child[1]):
                    child_pos, child = right_pos, right
            child_key = child[0]
            if child_key < key or (child_key == key
                                   and child[1] < seq):
                entries[pos] = child
                positions[child[2]] = pos
                pos = child_pos
            else:
                break
        entries[pos] = entry
        positions[entry[2]] = pos

    def _remove_at(self, pos: int) -> None:
        entries = self._entries
        last = len(entries) - 1
        item = entries[pos][2]
        if pos != last:
            self._swap(pos, last)
            entries.pop()
            del self._positions[item]
            # The moved entry may need to go either way.
            self._sift_down(pos)
            self._sift_up(pos)
        else:
            entries.pop()
            del self._positions[item]

    # ----- debugging aids ----------------------------------------------

    def check_invariants(self) -> None:
        """Assert heap order and position-map consistency (tests only)."""
        for pos, entry in enumerate(self._entries):
            assert self._positions[entry[2]] == pos, "position map stale"
            if pos > 0:
                parent = (pos - 1) >> 1
                assert not self._less(pos, parent), "heap order violated"
        assert len(self._positions) == len(self._entries)
