"""Single-pass streaming statistics.

The trace characterization (Tables 4 and 5) needs means, coefficients of
variation, and medians of document and transfer sizes over traces with
millions of requests.  :class:`StreamingStats` provides exact mean and
variance in O(1) memory via Welford's algorithm; :class:`P2Quantile`
approximates quantiles (the median by default) with the Jain & Chlamtac
P² algorithm, also in O(1) memory.
"""

from __future__ import annotations

import math
from typing import Iterable, List


class StreamingStats:
    """Welford online mean / variance / min / max accumulator."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Population variance."""
        if self.count == 0:
            return math.nan
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan

    @property
    def cov(self) -> float:
        """Coefficient of variation (stddev / mean), NaN when undefined."""
        if self.count == 0 or self._mean == 0:
            return math.nan
        return self.stddev / self._mean

    def merge(self, other: "StreamingStats") -> None:
        """Combine another accumulator into this one (Chan's formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total = n1 + n2
        self._mean += delta * n2 / total
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self.count = total
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class P2Quantile:
    """P² single-pass quantile estimator (Jain & Chlamtac, 1985).

    Tracks five markers whose heights approximate the p-quantile without
    storing observations.  Exact for the first five samples.
    """

    def __init__(self, p: float = 0.5):
        if not 0.0 < p < 1.0:
            raise ValueError("quantile p must be in (0, 1)")
        self.p = p
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[int] = []
        self._desired: List[float] = []
        self._increments: List[float] = []
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1, 2, 3, 4, 5]
                p = self.p
                self._desired = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
                self._increments = [0.0, p / 2, p, (1 + p) / 2, 1.0]
            return

        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while value >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in (1, 2, 3):
            d = self._desired[i] - positions[i]
            if ((d >= 1 and positions[i + 1] - positions[i] > 1)
                    or (d <= -1 and positions[i - 1] - positions[i] < -1)):
                step = 1 if d >= 1 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        h, q = self._positions, self._heights
        return q[i] + d / (h[i + 1] - h[i - 1]) * (
            (h[i] - h[i - 1] + d) * (q[i + 1] - q[i]) / (h[i + 1] - h[i])
            + (h[i + 1] - h[i] - d) * (q[i] - q[i - 1]) / (h[i] - h[i - 1]))

    def _linear(self, i: int, d: int) -> float:
        h, q = self._positions, self._heights
        return q[i] + d * (q[i + d] - q[i]) / (h[i + d] - h[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before any sample)."""
        if self.count == 0:
            return math.nan
        if len(self._initial) < 5:
            ordered = sorted(self._initial)
            # Nearest-rank on the few samples we have.
            idx = min(int(self.p * len(ordered)), len(ordered) - 1)
            return ordered[idx]
        return self._heights[2]
