"""Intrusive doubly-linked list with sentinel head.

Backs the recency order of LRU/FIFO caches: every operation a replacement
policy needs (append, move-to-back, unlink, pop-front) is O(1).  Nodes are
exposed so callers can store them in their own maps and unlink in O(1)
without a lookup.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class DListNode(Generic[T]):
    """A list node carrying one value.

    Nodes must not be shared between lists; a node is either linked into
    exactly one :class:`DList` or detached.
    """

    __slots__ = ("value", "prev", "next")

    def __init__(self, value: T):
        self.value = value
        self.prev: Optional[DListNode[T]] = None
        self.next: Optional[DListNode[T]] = None

    @property
    def linked(self) -> bool:
        return self.prev is not None


class DList(Generic[T]):
    """Doubly-linked list ordered from least to most recently inserted.

    The front of the list is the eviction end (least recent); the back is
    where new and freshly-touched entries go.
    """

    __slots__ = ("_head", "_size")

    def __init__(self):
        # Circular sentinel: head.next is the front, head.prev the back.
        head: DListNode[T] = DListNode(None)  # type: ignore[arg-type]
        head.prev = head
        head.next = head
        self._head = head
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[T]:
        node = self._head.next
        while node is not self._head:
            yield node.value
            node = node.next

    def __reversed__(self) -> Iterator[T]:
        node = self._head.prev
        while node is not self._head:
            yield node.value
            node = node.prev

    def push_back(self, value: T) -> DListNode[T]:
        """Append a value at the most-recent end; returns its node."""
        node = DListNode(value)
        self._link_back(node)
        return node

    def push_front(self, value: T) -> DListNode[T]:
        """Insert a value at the least-recent end; returns its node."""
        node = DListNode(value)
        head = self._head
        node.prev = head
        node.next = head.next
        head.next.prev = node
        head.next = node
        self._size += 1
        return node

    def front(self) -> T:
        """Value at the least-recent end.  Raises IndexError when empty."""
        if self._size == 0:
            raise IndexError("front of empty DList")
        return self._head.next.value

    def back(self) -> T:
        """Value at the most-recent end.  Raises IndexError when empty."""
        if self._size == 0:
            raise IndexError("back of empty DList")
        return self._head.prev.value

    def pop_front(self) -> T:
        """Remove and return the least-recent value."""
        if self._size == 0:
            raise IndexError("pop from empty DList")
        node = self._head.next
        self.unlink(node)
        return node.value

    def unlink(self, node: DListNode[T]) -> None:
        """Remove a node from the list in O(1).

        The node must currently be linked into this list.
        """
        if node.prev is None or node.next is None:
            raise ValueError("node is not linked")
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = None
        node.next = None
        self._size -= 1

    def move_to_back(self, node: DListNode[T]) -> None:
        """Move a linked node to the most-recent end in O(1)."""
        self.unlink(node)
        self._link_back(node)

    def _link_back(self, node: DListNode[T]) -> None:
        head = self._head
        node.next = head
        node.prev = head.prev
        head.prev.next = node
        head.prev = node
        self._size += 1
