"""The characteristic-time fixed point.

A cache of ``capacity_bytes`` serving an IRM stream admits one scalar
summary, the *characteristic time* ``T_C``: how long (measured in
requests) a document survives in the cache after its last admission or
refresh.  Under the Che approximation every document sees the *same*
``T_C``, so per-document hit probabilities collapse to closed forms:

* ``lru``   — timer resets on every hit: ``h_i = 1 − exp(−p_i·T)``;
* ``fifo`` / ``random`` — timer never resets:
  ``h_i = p_i·T / (1 + p_i·T)`` (their IRM hit rates coincide,
  Gelenbe 1973).

``T_C`` itself is pinned by the byte-weighted occupancy constraint

    occupancy(T) = Σ_i size_i · h_i(T) = capacity_bytes,

because ``h_i`` is also the stationary probability that document ``i``
occupies the cache.  ``occupancy`` is continuous, strictly increasing,
and *concave* in ``T`` (both timer families' ``h_i`` have negative
second derivatives), 0 at ``T = 0`` and → total catalog bytes as
``T → ∞``, so the root is unique — and concavity means Newton started
at or below the root converges to it monotonically from below, no
bracketing needed.  :func:`solve_characteristic_time` therefore runs
plain Newton from the warm-start floor (a handful of vectorized
occupancy evaluations), falling back to bracket/bisection/safeguarded
Newton only if that stalls.  :func:`solve_curve` solves a whole
capacity ladder, reusing each root as the Newton seed of the next —
capacities are sorted, so the ladder costs barely more than one solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.observability.metrics import get_registry

#: Policies the analytical model covers, by family:
#: "lru" (reset timer) vs "fifo"/"random" (non-reset timer).
MODEL_POLICIES = ("lru", "fifo", "random")

#: Residual tolerance, relative to capacity.
DEFAULT_REL_TOL = 1e-9
#: Iteration cap for the primary (monotone Newton) path.
NEWTON_PRIMARY_STEPS = 60
#: Bisection iterations before Newton takes over (fallback path).
COARSE_BISECTIONS = 30
#: Newton polish iterations (fallback path).
NEWTON_STEPS = 12


def normalize_policy(policy: str) -> str:
    """Canonical model policy name; raises on unsupported ones."""
    name = policy.lower()
    if name not in MODEL_POLICIES:
        raise ConfigurationError(
            f"analytical model covers {MODEL_POLICIES}, not {policy!r}")
    return name


def _resets(policy: str) -> bool:
    return normalize_policy(policy) == "lru"


@dataclass(frozen=True)
class SolverResult:
    """One characteristic-time root.

    ``characteristic_time`` is ``math.inf`` when the capacity holds the
    whole catalog (every document permanently resident, ``h_i = 1``).
    ``residual`` is ``|occupancy(T) − capacity|`` in bytes.
    """

    characteristic_time: float
    capacity_bytes: float
    policy: str
    iterations: int
    newton_iterations: int
    residual: float
    converged: bool


def hit_probabilities(rates: np.ndarray, characteristic_time: float,
                      policy: str = "lru") -> np.ndarray:
    """Per-document stationary hit probabilities at a given ``T_C``."""
    rates = np.asarray(rates, dtype=np.float64)
    if math.isinf(characteristic_time):
        return np.ones_like(rates)
    pt = rates * characteristic_time
    if _resets(policy):
        return -np.expm1(-pt)
    return pt / (1.0 + pt)


def occupancy_bytes(rates: np.ndarray, sizes: np.ndarray,
                    characteristic_time: float,
                    policy: str = "lru") -> float:
    """Expected cache occupancy Σ size_i·h_i(T) in bytes."""
    return float((np.asarray(sizes, dtype=np.float64)
                  * hit_probabilities(rates, characteristic_time,
                                      policy)).sum())


def _occupancy_and_gradient(rates: np.ndarray, sizes: np.ndarray,
                            characteristic_time: float,
                            resets: bool) -> tuple:
    """(occupancy, d occupancy / dT), one fused vectorized evaluation."""
    pt = rates * characteristic_time
    if resets:
        decay = np.exp(-pt)
        occupancy = float((sizes * (1.0 - decay)).sum())
        gradient = float((sizes * rates * decay).sum())
    else:
        denom = 1.0 + pt
        occupancy = float((sizes * (pt / denom)).sum())
        gradient = float((sizes * rates / (denom * denom)).sum())
    return occupancy, gradient


def solve_characteristic_time(rates: Sequence[float],
                              sizes: Sequence[float],
                              capacity_bytes: float,
                              policy: str = "lru",
                              rel_tol: float = DEFAULT_REL_TOL,
                              _bracket_floor: float = 0.0,
                              ) -> SolverResult:
    """Root of the occupancy constraint for one capacity.

    Args:
        rates: Per-document request probabilities (or rates — the
            characteristic time simply comes out in the reciprocal
            unit).
        sizes: Per-document sizes in bytes.
        capacity_bytes: The byte capacity to pin occupancy to.
        policy: One of :data:`MODEL_POLICIES`.
        rel_tol: Convergence threshold on ``residual / capacity``.
    """
    policy = normalize_policy(policy)
    resets = _resets(policy)
    if capacity_bytes <= 0:
        raise ConfigurationError("capacity_bytes must be positive")
    rates = np.asarray(rates, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    if rates.shape != sizes.shape or rates.ndim != 1 or len(rates) == 0:
        raise ConfigurationError(
            "rates and sizes must be matching non-empty 1-d arrays")
    if np.any(rates < 0) or np.any(sizes < 0):
        raise ConfigurationError("rates and sizes must be non-negative")

    registry = get_registry()
    if capacity_bytes >= float(sizes.sum()):
        # The cache holds the entire catalog: T_C is unbounded and
        # every document is permanently resident.
        if registry.enabled:
            registry.counter("model_solves_total", policy=policy).inc()
        return SolverResult(
            characteristic_time=math.inf,
            capacity_bytes=float(capacity_bytes), policy=policy,
            iterations=0, newton_iterations=0, residual=0.0,
            converged=True)

    tolerance = rel_tol * capacity_bytes

    # Primary path: occupancy is concave increasing, so Newton seeded
    # at or below the root (the warm-start floor, or 0 where
    # occupancy(0) = 0) climbs to it monotonically from below —
    # typically 3–8 vectorized evaluations, no bracketing.
    value = float(_bracket_floor)
    iterations = 0
    newton_iterations = 0
    residual = math.inf
    for _ in range(NEWTON_PRIMARY_STEPS):
        iterations += 1
        occupancy, gradient = _occupancy_and_gradient(rates, sizes,
                                                      value, resets)
        residual = abs(occupancy - capacity_bytes)
        if residual <= tolerance:
            break
        if gradient <= 0.0 or occupancy > capacity_bytes:
            # A stale warm start (or float noise near the root) broke
            # the from-below invariant; the fallback re-brackets.
            break
        value += (capacity_bytes - occupancy) / gradient
        newton_iterations += 1

    if residual > tolerance:
        # Fallback: bracket by geometric doubling, narrow by coarse
        # bisection, polish with safeguarded Newton.
        lo, hi = 0.0, 1.0
        while _occupancy_and_gradient(rates, sizes, hi, resets)[0] \
                < capacity_bytes:
            lo = hi
            hi *= 2.0
            iterations += 1
            if iterations > 400:  # pragma: no cover - occupancy sums
                break             # to total bytes, so this terminates
        value = (lo + hi) / 2.0
        for _ in range(COARSE_BISECTIONS):
            iterations += 1
            value = (lo + hi) / 2.0
            occupancy = _occupancy_and_gradient(rates, sizes, value,
                                                resets)[0]
            residual = abs(occupancy - capacity_bytes)
            if residual <= tolerance:
                break
            if occupancy < capacity_bytes:
                lo = value
            else:
                hi = value
        if residual > tolerance:
            for _ in range(NEWTON_STEPS):
                occupancy, gradient = _occupancy_and_gradient(
                    rates, sizes, value, resets)
                residual = abs(occupancy - capacity_bytes)
                if occupancy < capacity_bytes:
                    lo = value
                else:
                    hi = value
                if residual <= tolerance or gradient <= 0.0:
                    break
                step = (capacity_bytes - occupancy) / gradient
                candidate = value + step
                if not lo < candidate < hi:
                    candidate = (lo + hi) / 2.0  # back to bisection
                value = candidate
                newton_iterations += 1
            else:
                occupancy = _occupancy_and_gradient(rates, sizes,
                                                    value, resets)[0]
                residual = abs(occupancy - capacity_bytes)
    converged = residual <= max(tolerance,
                                1e-6 * capacity_bytes)
    if registry.enabled:
        registry.counter("model_solves_total", policy=policy).inc()
        registry.histogram("model_solver_iterations").observe(
            iterations + newton_iterations)
    return SolverResult(
        characteristic_time=value,
        capacity_bytes=float(capacity_bytes), policy=policy,
        iterations=iterations, newton_iterations=newton_iterations,
        residual=residual, converged=converged)


def solve_curve(rates: Sequence[float], sizes: Sequence[float],
                capacities: Sequence[float], policy: str = "lru",
                rel_tol: float = DEFAULT_REL_TOL) -> List[SolverResult]:
    """One root per capacity, in input order.

    ``T_C`` grows with capacity, so solving the ladder in ascending
    order lets each solved root floor the next root's bracket — the
    whole curve costs one solve per capacity with tiny brackets.
    """
    if len(capacities) == 0:
        raise ConfigurationError("need at least one capacity")
    order = sorted(range(len(capacities)), key=lambda i: capacities[i])
    results: List[SolverResult] = [None] * len(capacities)  # type: ignore
    floor = 0.0
    for index in order:
        result = solve_characteristic_time(
            rates, sizes, capacities[index], policy=policy,
            rel_tol=rel_tol, _bracket_floor=floor)
        results[index] = result
        if not math.isinf(result.characteristic_time):
            floor = result.characteristic_time
    return results
