"""Model calibration: the document catalog.

Every analytical predictor in this package consumes a :class:`Catalog`
— parallel numpy arrays of per-document request probabilities, sizes,
and document types, the sufficient statistic of a workload under the
Independent Reference Model.  Three calibration routes:

* :func:`catalog_from_trace` — one streaming pass over any request
  iterable (the *only* trace pass a model workflow needs).  Keeps the
  empirical per-document request counts, which lets the predictors
  correct for compulsory (cold) misses on a finite trace.
* :func:`catalog_from_profile` — no trace at all: synthesizes the
  catalog a :class:`~repro.workload.profiles.WorkloadProfile` *would*
  generate, using the same per-type Zipf(α) count allocation as the
  trace generator.  Warns through the fit diagnostics attached by
  :func:`repro.workload.fitting.fit_profile` when a fitted profile's
  parameters are thin or clamped.
* :func:`catalog_from_counts` — raw arrays, for tests and for
  popularity laws obtained elsewhere (e.g.
  :func:`repro.analysis.popularity.popularity_counts`).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.observability.events import emit
from repro.observability.logs import get_logger
from repro.types import DOCUMENT_TYPES, DocumentType, Request, Trace
from repro.workload.profiles import WorkloadProfile
from repro.workload.zipf import zipf_counts

_logger = get_logger("model")

#: Stable integer code per document type (index into DOCUMENT_TYPES).
TYPE_CODES: Dict[DocumentType, int] = {
    t: i for i, t in enumerate(DOCUMENT_TYPES)}


class Catalog:
    """The IRM view of a workload: per-document popularity and size.

    Attributes:
        probabilities: Request probability per document (sums to 1).
        sizes: Document size in bytes (the cache-occupancy weight).
        type_codes: ``DOCUMENT_TYPES`` index per document.
        counts: Empirical request counts when calibrated from a trace
            (``None`` for purely distributional catalogs).  With counts
            present, predictors charge each document its one compulsory
            miss — the finite-trace correction.
        mean_transfers: Mean bytes transferred per request of each
            document (< size under interrupted transfers); defaults to
            ``sizes``.  Drives byte-hit-rate predictions in the same
            units the simulator counts.
        name: Workload label carried into predictions and reports.
    """

    def __init__(self, probabilities: np.ndarray, sizes: np.ndarray,
                 type_codes: np.ndarray,
                 counts: Optional[np.ndarray] = None,
                 mean_transfers: Optional[np.ndarray] = None,
                 name: str = "catalog"):
        self.probabilities = np.asarray(probabilities, dtype=np.float64)
        self.sizes = np.asarray(sizes, dtype=np.float64)
        self.type_codes = np.asarray(type_codes, dtype=np.int64)
        self.counts = (None if counts is None
                       else np.asarray(counts, dtype=np.float64))
        self.mean_transfers = (self.sizes if mean_transfers is None
                               else np.asarray(mean_transfers,
                                               dtype=np.float64))
        self.name = name
        self.validate()

    # -- invariants -------------------------------------------------------

    def validate(self) -> None:
        n = len(self.probabilities)
        if n == 0:
            raise ConfigurationError("catalog has no documents")
        for label, array in (("sizes", self.sizes),
                             ("type_codes", self.type_codes),
                             ("mean_transfers", self.mean_transfers)):
            if len(array) != n:
                raise ConfigurationError(
                    f"catalog arrays disagree: {n} probabilities vs "
                    f"{len(array)} {label}")
        if self.counts is not None and len(self.counts) != n:
            raise ConfigurationError(
                f"catalog arrays disagree: {n} probabilities vs "
                f"{len(self.counts)} counts")
        if np.any(self.probabilities < 0):
            raise ConfigurationError("negative request probability")
        total = float(self.probabilities.sum())
        if not np.isclose(total, 1.0, rtol=0, atol=1e-6):
            raise ConfigurationError(
                f"request probabilities sum to {total}, expected 1")
        if np.any(self.sizes < 0):
            raise ConfigurationError("negative document size")
        if (self.type_codes.min() < 0
                or self.type_codes.max() >= len(DOCUMENT_TYPES)):
            raise ConfigurationError("type code out of range")

    # -- views ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.probabilities)

    @property
    def n_documents(self) -> int:
        return len(self.probabilities)

    @property
    def total_bytes(self) -> float:
        """Bytes needed to hold every document (the working set)."""
        return float(self.sizes.sum())

    @property
    def total_requests(self) -> Optional[float]:
        return None if self.counts is None else float(self.counts.sum())

    def type_mask(self, doc_type: DocumentType) -> np.ndarray:
        return self.type_codes == TYPE_CODES[doc_type]

    def as_dict(self) -> dict:
        """Summary (not the arrays) for manifests and telemetry."""
        summary = {
            "name": self.name,
            "documents": self.n_documents,
            "total_bytes": self.total_bytes,
            "calibration": ("empirical" if self.counts is not None
                            else "distributional"),
        }
        if self.counts is not None:
            summary["requests"] = self.total_requests
        return summary


def catalog_from_counts(
        counts: Union[Sequence[float], np.ndarray,
                      Mapping[str, int]],
        sizes: Union[Sequence[float], np.ndarray, float] = 1.0,
        doc_types: Union[Sequence[DocumentType], DocumentType, None]
        = None,
        name: str = "catalog") -> Catalog:
    """Catalog from per-document request counts.

    ``counts`` may be a mapping (as returned by
    :func:`repro.analysis.popularity.popularity_counts`) or a plain
    sequence.  ``sizes`` broadcasts a scalar (unit sizes model a
    document-granularity cache); ``doc_types`` broadcasts a single
    type and defaults to :attr:`DocumentType.OTHER`.
    """
    if isinstance(counts, Mapping):
        counts = list(counts.values())
    count_array = np.asarray(counts, dtype=np.float64)
    if count_array.ndim != 1 or len(count_array) == 0:
        raise ConfigurationError("counts must be a non-empty 1-d array")
    if np.any(count_array <= 0):
        raise ConfigurationError("every document needs a positive count")
    n = len(count_array)
    size_array = (np.full(n, float(sizes))
                  if np.isscalar(sizes) else
                  np.asarray(sizes, dtype=np.float64))
    if doc_types is None:
        doc_types = DocumentType.OTHER
    if isinstance(doc_types, DocumentType):
        code_array = np.full(n, TYPE_CODES[doc_types], dtype=np.int64)
    else:
        code_array = np.array([TYPE_CODES[t] for t in doc_types],
                              dtype=np.int64)
    return Catalog(
        probabilities=count_array / count_array.sum(),
        sizes=size_array,
        type_codes=code_array,
        counts=count_array,
        name=name,
    )


def catalog_from_trace(trace: Union[Trace, Iterable[Request]],
                       name: Optional[str] = None) -> Catalog:
    """Calibrate a catalog in **one streaming pass** over a trace.

    Accepts a :class:`~repro.types.Trace` or any request iterable
    (e.g. :func:`repro.trace.pipeline.iter_trace` for bounded-memory
    calibration from a file).  A document's size is its last observed
    size — the same convention
    :meth:`repro.types.Trace.metadata` uses; transfers are clamped to
    the document size exactly as the simulator clamps them.
    """
    counts: Dict[str, int] = {}
    sizes: Dict[str, int] = {}
    codes: Dict[str, int] = {}
    transfers: Dict[str, int] = {}
    for request in trace:
        url = request.url
        size = request.size
        transfer = request.transfer_size
        counts[url] = counts.get(url, 0) + 1
        sizes[url] = size
        codes[url] = TYPE_CODES[request.doc_type]
        transfers[url] = transfers.get(url, 0) + (
            transfer if transfer < size else size)
    if not counts:
        raise ConfigurationError(
            "cannot calibrate a catalog from an empty trace")
    urls = list(counts)
    count_array = np.array([counts[u] for u in urls], dtype=np.float64)
    catalog = Catalog(
        probabilities=count_array / count_array.sum(),
        sizes=np.array([sizes[u] for u in urls], dtype=np.float64),
        type_codes=np.array([codes[u] for u in urls], dtype=np.int64),
        counts=count_array,
        mean_transfers=np.array([transfers[u] for u in urls],
                                dtype=np.float64) / count_array,
        name=name or getattr(trace, "name", "trace"),
    )
    emit("model_calibrated", documents=catalog.n_documents,
         requests=int(count_array.sum()), source="trace")
    return catalog


def _warn_on_fit_diagnostics(profile: WorkloadProfile) -> None:
    """Surface thin/clamped fits before they silently steer the model."""
    diagnostics = getattr(profile, "fit_diagnostics", None)
    if diagnostics is None:
        return
    for doc_type, entry in diagnostics.by_type.items():
        problems = entry.problems()
        if problems:
            _logger.warning(
                "calibrating from profile %r: %s fit is unreliable "
                "(%s); model predictions for this type inherit the "
                "fallback/clamped parameters",
                profile.name, doc_type.value, ", ".join(problems),
                extra={"profile": profile.name,
                       "doc_type": doc_type.value,
                       "problems": problems})


def catalog_from_profile(profile: WorkloadProfile,
                         name: Optional[str] = None) -> Catalog:
    """Synthesize the catalog a workload profile would generate.

    Mirrors the trace generator's allocation: per-type document and
    request budgets split by the profile shares, per-rank counts from
    :func:`~repro.workload.zipf.zipf_counts`, sizes drawn from each
    type's size model with randomness derived from ``profile.seed``.
    No trace is generated — a million-request profile calibrates in
    milliseconds.
    """
    from repro.workload.generator import _allocate

    profile.validate()
    _warn_on_fit_diagnostics(profile)
    rng = random.Random(profile.seed)
    doc_budget = _allocate(
        profile.n_documents,
        {t: p.doc_share for t, p in profile.types.items()},
        minimum=1)
    request_budget = _allocate(
        profile.n_requests,
        {t: p.request_share for t, p in profile.types.items()},
        minimum=0)

    count_parts = []
    size_parts = []
    code_parts = []
    transfer_parts = []
    for doc_type, type_profile in sorted(
            profile.types.items(), key=lambda item: item[0].value):
        n_docs = doc_budget[doc_type]
        n_requests = request_budget[doc_type]
        if n_docs == 0 or n_requests == 0:
            continue
        if n_requests < n_docs:
            n_docs = n_requests
        counts = np.asarray(
            zipf_counts(n_docs, type_profile.alpha, n_requests),
            dtype=np.float64)
        sizes = np.array([type_profile.size_model.sample(rng)
                          for _ in range(n_docs)], dtype=np.float64)
        count_parts.append(counts)
        size_parts.append(sizes)
        code_parts.append(np.full(n_docs, TYPE_CODES[doc_type],
                                  dtype=np.int64))
        # Interrupted transfers move a uniform fraction of the
        # document on average (ChangeInjector draws U(5%, 95%); mean
        # one half), so the mean transfer shrinks accordingly.
        interrupted = type_profile.interruption_rate
        transfer_parts.append(sizes * (1.0 - 0.5 * interrupted))

    counts = np.concatenate(count_parts)
    catalog = Catalog(
        probabilities=counts / counts.sum(),
        sizes=np.concatenate(size_parts),
        type_codes=np.concatenate(code_parts),
        counts=counts,
        mean_transfers=np.concatenate(transfer_parts),
        name=name or profile.name,
    )
    emit("model_calibrated", documents=catalog.n_documents,
         requests=int(counts.sum()), source="profile")
    return catalog
