"""Che-style hit-rate predictors over a calibrated catalog.

Glue between the characteristic-time solver and the questions the rest
of the library answers by simulation: overall and per-document-type
hit rate and byte hit rate at a byte capacity (:func:`predict`), whole
capacity→hit-rate curves (:func:`hit_rate_curve`, one solve per
capacity), and a two-level cache hierarchy under the standard
independence approximation (:func:`hierarchy_predict`).

Finite-trace correction
-----------------------

The raw Che formulas are *steady-state*: they ignore that on a real
(finite) trace every document's first request is a compulsory miss.
When the catalog carries empirical counts ``n_i`` (calibrated from a
trace), predictions charge that miss explicitly,

    hits_i = (n_i − 1) · h_i,

which is what lets a prediction line up with a
:func:`repro.simulation.engine.run_cells` measurement of the *same
trace* rather than of a hypothetical infinite one.  A non-zero
``warmup_fraction`` additionally drops the leading ``W`` share of
requests from both sides of the ratio the way the simulator does:
measured requests ≈ ``(1−W)·n_i`` and the compulsory miss only lands
in the measured window with probability ``(1−W)^{n_i}`` (all ``n_i``
IRM placements fall past the boundary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.model.catalog import Catalog
from repro.model.solver import (
    SolverResult,
    hit_probabilities,
    normalize_policy,
    solve_characteristic_time,
    solve_curve,
)
from repro.observability.events import emit
from repro.types import DOCUMENT_TYPES, DocumentType


@dataclass(frozen=True)
class TypePrediction:
    """Predicted per-document-type rates at one capacity."""

    doc_type: DocumentType
    request_share: float
    hit_rate: float
    byte_hit_rate: float

    def as_dict(self) -> dict:
        return {
            "doc_type": self.doc_type.value,
            "request_share": self.request_share,
            "hit_rate": self.hit_rate,
            "byte_hit_rate": self.byte_hit_rate,
        }


@dataclass(frozen=True)
class ModelPrediction:
    """One analytical (policy, capacity) cell.

    The model twin of
    :class:`~repro.simulation.results.SimulationResult`: same units
    (bytes, rates in [0, 1]), same per-type decomposition, no trace
    pass.
    """

    policy: str
    capacity_bytes: float
    hit_rate: float
    byte_hit_rate: float
    characteristic_time: float
    converged: bool
    finite_trace: bool
    warmup_fraction: float
    catalog_name: str
    per_type: Dict[DocumentType, TypePrediction] = field(
        default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "capacity_bytes": self.capacity_bytes,
            "hit_rate": self.hit_rate,
            "byte_hit_rate": self.byte_hit_rate,
            "characteristic_time": (
                None if math.isinf(self.characteristic_time)
                else self.characteristic_time),
            "converged": self.converged,
            "finite_trace": self.finite_trace,
            "warmup_fraction": self.warmup_fraction,
            "catalog": self.catalog_name,
            "per_type": {t.value: p.as_dict()
                         for t, p in self.per_type.items()},
        }


class _CurveWeights:
    """Point-independent aggregation weights, hoisted out of the
    per-capacity loop (the curve-solving hot path): the per-document
    request weights, their finite-trace/warmup adjustment, and every
    per-type denominator are the same at every capacity — only the hit
    probabilities change."""

    def __init__(self, catalog: Catalog, warmup_fraction: float,
                 steady_state: bool):
        self.finite = catalog.counts is not None and not steady_state
        if self.finite:
            counts = catalog.counts
            if warmup_fraction > 0.0:
                survive = 1.0 - warmup_fraction
                requests = survive * counts
                # The compulsory miss reaches the measured window only
                # when every one of the document's IRM placements does.
                cold = survive ** counts
            else:
                requests = counts
                cold = 1.0
            self.hit_base = np.maximum(requests - cold, 0.0)
        else:
            # Steady state: weights are request probabilities.
            requests = catalog.probabilities
            self.hit_base = catalog.probabilities
        self.requests = requests
        self.requested_bytes = requests * catalog.mean_transfers
        codes = catalog.type_codes
        n_types = len(DOCUMENT_TYPES)
        # Per-type sums via bincount (one pass; beats boolean masks).
        self.docs_per_type = np.bincount(codes, minlength=n_types)
        self.requests_per_type = np.bincount(
            codes, weights=requests, minlength=n_types)
        self.bytes_per_type = np.bincount(
            codes, weights=self.requested_bytes, minlength=n_types)
        self.total_requests = float(requests.sum())
        self.total_bytes = float(self.requested_bytes.sum())


def _prediction_from_hits(catalog: Catalog, solved: SolverResult,
                          hit_probs: np.ndarray,
                          warmup_fraction: float,
                          steady_state: bool,
                          weights: Optional[_CurveWeights] = None,
                          ) -> ModelPrediction:
    """Aggregate per-document hit probabilities into one prediction."""
    if weights is None:
        weights = _CurveWeights(catalog, warmup_fraction, steady_state)
    hits = hit_probs * weights.hit_base
    hit_bytes = hits * catalog.mean_transfers

    codes = catalog.type_codes
    n_types = len(DOCUMENT_TYPES)
    hits_per_type = np.bincount(codes, weights=hits, minlength=n_types)
    hit_bytes_per_type = np.bincount(codes, weights=hit_bytes,
                                     minlength=n_types)

    per_type: Dict[DocumentType, TypePrediction] = {}
    total_requests = weights.total_requests
    for code, doc_type in enumerate(DOCUMENT_TYPES):
        if weights.docs_per_type[code] == 0:
            continue
        type_requests = float(weights.requests_per_type[code])
        type_bytes = float(weights.bytes_per_type[code])
        per_type[doc_type] = TypePrediction(
            doc_type=doc_type,
            request_share=(type_requests / total_requests
                           if total_requests else 0.0),
            hit_rate=(float(hits_per_type[code]) / type_requests
                      if type_requests else 0.0),
            byte_hit_rate=(float(hit_bytes_per_type[code]) / type_bytes
                           if type_bytes else 0.0),
        )
    return ModelPrediction(
        policy=solved.policy,
        capacity_bytes=solved.capacity_bytes,
        hit_rate=(float(hits_per_type.sum()) / total_requests
                  if total_requests else 0.0),
        byte_hit_rate=(float(hit_bytes_per_type.sum())
                       / weights.total_bytes
                       if weights.total_bytes else 0.0),
        characteristic_time=solved.characteristic_time,
        converged=solved.converged,
        finite_trace=weights.finite,
        warmup_fraction=warmup_fraction if weights.finite else 0.0,
        catalog_name=catalog.name,
        per_type=per_type,
    )


def _check_warmup(warmup_fraction: float) -> None:
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")


def predict(catalog: Catalog, capacity_bytes: float,
            policy: str = "lru", warmup_fraction: float = 0.0,
            steady_state: bool = False) -> ModelPrediction:
    """Predicted hit rates for one (policy, capacity) cell.

    Args:
        catalog: Calibrated workload statistics.
        capacity_bytes: Cache capacity, in the same bytes units as
            :class:`~repro.simulation.simulator.SimulationConfig`.
        policy: ``"lru"``, ``"fifo"``, or ``"random"``.
        warmup_fraction: Mirror of the simulator knob — the leading
            fraction of the trace excluded from measurement.  Only
            meaningful with an empirically calibrated catalog.
        steady_state: Force the infinite-trace formulas even when the
            catalog carries counts (capacity-planning view: what the
            hit rate converges to, compulsory misses amortized away).
    """
    _check_warmup(warmup_fraction)
    solved = solve_characteristic_time(
        catalog.probabilities, catalog.sizes, capacity_bytes,
        policy=policy)
    hit_probs = hit_probabilities(catalog.probabilities,
                                  solved.characteristic_time,
                                  solved.policy)
    prediction = _prediction_from_hits(catalog, solved, hit_probs,
                                       warmup_fraction, steady_state)
    emit("model_predicted", policy=prediction.policy,
         capacity_bytes=float(capacity_bytes),
         hit_rate=round(prediction.hit_rate, 6))
    return prediction


def hit_rate_curve(catalog: Catalog, capacities: Sequence[float],
                   policy: str = "lru", warmup_fraction: float = 0.0,
                   steady_state: bool = False) -> List[ModelPrediction]:
    """The whole capacity→(hit rate, byte hit rate) curve.

    One characteristic-time solve per capacity (warm-started along the
    ladder), zero trace passes: this is the capacity-planning loop the
    simulator answers in ``O(requests)`` per point, answered in
    microseconds per point.
    """
    _check_warmup(warmup_fraction)
    solved_ladder = solve_curve(catalog.probabilities, catalog.sizes,
                                capacities, policy=policy)
    weights = _CurveWeights(catalog, warmup_fraction, steady_state)
    predictions = []
    for solved in solved_ladder:
        hit_probs = hit_probabilities(catalog.probabilities,
                                      solved.characteristic_time,
                                      solved.policy)
        predictions.append(_prediction_from_hits(
            catalog, solved, hit_probs, warmup_fraction, steady_state,
            weights=weights))
    emit("model_curve_computed", policy=normalize_policy(policy),
         points=len(predictions))
    return predictions


@dataclass(frozen=True)
class HierarchyPrediction:
    """Two-level tandem prediction (child level 1, parent level 2).

    ``child``/``parent`` carry the per-level views: the child sees the
    raw stream; the parent's rates are over the requests that *missed*
    the child (the filtered, low-locality stream, exactly how
    :mod:`repro.simulation.hierarchy` reports parents).  ``combined``
    is the hit-at-either-level (origin off-load) view over all
    requests.
    """

    child: ModelPrediction
    parent: ModelPrediction
    combined_hit_rate: float
    combined_byte_hit_rate: float

    def as_dict(self) -> dict:
        return {
            "child": self.child.as_dict(),
            "parent": self.parent.as_dict(),
            "combined_hit_rate": self.combined_hit_rate,
            "combined_byte_hit_rate": self.combined_byte_hit_rate,
        }


def hierarchy_predict(catalog: Catalog, child_capacity_bytes: float,
                      parent_capacity_bytes: float,
                      policy: str = "lru") -> HierarchyPrediction:
    """Two-level hierarchy via the leave-copy-down independence
    approximation.

    Level 1 (child) is solved against the raw request probabilities.
    Its *miss stream* — document ``i`` escapes with rate
    ``p_i·(1 − h1_i)`` — is treated as an independent reference stream
    in its own right (the independence approximation; exact only in
    the limit, good whenever the child is not tiny) and drives the
    level-2 solve.  A document is served from the hierarchy when it
    hits at either level: ``h_i = h1_i + (1 − h1_i)·h2_i``.
    """
    child_solved = solve_characteristic_time(
        catalog.probabilities, catalog.sizes, child_capacity_bytes,
        policy=policy)
    h1 = hit_probabilities(catalog.probabilities,
                           child_solved.characteristic_time,
                           child_solved.policy)
    child = _prediction_from_hits(catalog, child_solved, h1, 0.0,
                                  steady_state=True)

    miss_rates = catalog.probabilities * (1.0 - h1)
    total_miss = float(miss_rates.sum())
    if total_miss <= 0.0:
        # The child absorbs everything; the parent is idle.
        parent_solved = solve_characteristic_time(
            catalog.probabilities, catalog.sizes,
            parent_capacity_bytes, policy=policy)
        parent = _prediction_from_hits(
            catalog, parent_solved,
            np.zeros_like(catalog.probabilities), 0.0,
            steady_state=True)
        return HierarchyPrediction(
            child=child, parent=parent,
            combined_hit_rate=child.hit_rate,
            combined_byte_hit_rate=child.byte_hit_rate)

    parent_catalog = Catalog(
        probabilities=miss_rates / total_miss,
        sizes=catalog.sizes,
        type_codes=catalog.type_codes,
        mean_transfers=catalog.mean_transfers,
        name=f"{catalog.name}-child-misses",
    )
    parent_solved = solve_characteristic_time(
        parent_catalog.probabilities, parent_catalog.sizes,
        parent_capacity_bytes, policy=policy)
    h2 = hit_probabilities(parent_catalog.probabilities,
                           parent_solved.characteristic_time,
                           parent_solved.policy)
    parent = _prediction_from_hits(parent_catalog, parent_solved, h2,
                                   0.0, steady_state=True)

    combined = h1 + (1.0 - h1) * h2
    weights = catalog.probabilities
    transfers = catalog.mean_transfers
    requested_bytes = float((weights * transfers).sum())
    return HierarchyPrediction(
        child=child,
        parent=parent,
        combined_hit_rate=float((weights * combined).sum()),
        combined_byte_hit_rate=(
            float((weights * combined * transfers).sum())
            / requested_bytes if requested_bytes else 0.0),
    )
