"""Model-vs-simulation validation harness.

An approximation is only useful with a measured error bar.  This
harness runs the two stacks against the *same* workload —

* the analytical side: one :func:`~repro.model.catalog.catalog_from_trace`
  calibration pass, then :func:`~repro.model.che.hit_rate_curve` per
  policy (microseconds per cell);
* the simulated side: every (policy, capacity) cell rides **one**
  shared :func:`repro.simulation.engine.run_cells` pass —

and emits a structured error report: per-cell absolute hit-rate and
byte-hit-rate errors, per-document-type breakdowns, and mean/max
aggregates, through the observability layer (``model_validated``
telemetry event, ``model_validation_abs_error`` histogram).  CI runs
this in smoke mode and fails when the LRU mean absolute error exceeds
its tolerance; see :mod:`repro.model.cli` (``validate --max-mae``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.model.catalog import Catalog, catalog_from_trace
from repro.model.che import (HierarchyPrediction, ModelPrediction,
                             hierarchy_predict, hit_rate_curve)
from repro.model.solver import normalize_policy
from repro.observability.events import emit
from repro.observability.logs import get_logger
from repro.observability.metrics import get_registry
from repro.simulation.engine import SimulationConfig, run_cells
from repro.simulation.results import SimulationResult
from repro.simulation.sweep import PAPER_SIZE_FRACTIONS
from repro.types import DOCUMENT_TYPES, DocumentType, Trace

_logger = get_logger("model")

#: Default policy set: every policy the analytical model covers.
DEFAULT_POLICIES = ("lru", "fifo", "random")


@dataclass(frozen=True)
class ValidationCell:
    """Model vs simulator at one (policy, capacity) cell."""

    policy: str
    capacity_bytes: int
    predicted_hit_rate: float
    simulated_hit_rate: float
    predicted_byte_hit_rate: float
    simulated_byte_hit_rate: float
    per_type: Dict[DocumentType, dict] = field(default_factory=dict)

    @property
    def hit_rate_error(self) -> float:
        return abs(self.predicted_hit_rate - self.simulated_hit_rate)

    @property
    def byte_hit_rate_error(self) -> float:
        return abs(self.predicted_byte_hit_rate
                   - self.simulated_byte_hit_rate)

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "capacity_bytes": self.capacity_bytes,
            "predicted_hit_rate": self.predicted_hit_rate,
            "simulated_hit_rate": self.simulated_hit_rate,
            "hit_rate_error": self.hit_rate_error,
            "predicted_byte_hit_rate": self.predicted_byte_hit_rate,
            "simulated_byte_hit_rate": self.simulated_byte_hit_rate,
            "byte_hit_rate_error": self.byte_hit_rate_error,
            "per_type": {t.value: entry
                         for t, entry in self.per_type.items()},
        }


@dataclass
class ValidationReport:
    """The structured model-error report over a policy × capacity grid."""

    trace_name: str
    total_requests: int
    warmup_fraction: float
    cells: List[ValidationCell] = field(default_factory=list)

    @property
    def mean_absolute_error(self) -> float:
        """Hit-rate MAE over every cell of the grid."""
        if not self.cells:
            return 0.0
        return sum(c.hit_rate_error for c in self.cells) / len(self.cells)

    @property
    def max_absolute_error(self) -> float:
        if not self.cells:
            return 0.0
        return max(c.hit_rate_error for c in self.cells)

    @property
    def byte_mean_absolute_error(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.byte_hit_rate_error
                   for c in self.cells) / len(self.cells)

    def policy_mean_absolute_error(self, policy: str) -> float:
        """Hit-rate MAE restricted to one policy's capacity ladder."""
        cells = [c for c in self.cells if c.policy == policy]
        if not cells:
            raise ConfigurationError(
                f"no validation cells for policy {policy!r}")
        return sum(c.hit_rate_error for c in cells) / len(cells)

    @property
    def policies(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.policy not in seen:
                seen.append(cell.policy)
        return seen

    def as_dict(self) -> dict:
        return {
            "trace_name": self.trace_name,
            "total_requests": self.total_requests,
            "warmup_fraction": self.warmup_fraction,
            "mean_absolute_error": self.mean_absolute_error,
            "max_absolute_error": self.max_absolute_error,
            "byte_mean_absolute_error": self.byte_mean_absolute_error,
            "per_policy_mean_absolute_error": {
                policy: self.policy_mean_absolute_error(policy)
                for policy in self.policies},
            "cells": [cell.as_dict() for cell in self.cells],
        }

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    def text(self) -> str:
        """Human-readable error table."""
        lines = [
            f"Model validation on {self.trace_name!r} "
            f"({self.total_requests:,} requests, "
            f"warmup {self.warmup_fraction:.0%})",
            f"{'policy':<8} {'capacity':>14} {'sim hr':>8} "
            f"{'model hr':>9} {'|err|':>7}   {'sim bhr':>8} "
            f"{'model bhr':>9} {'|err|':>7}",
        ]
        for c in self.cells:
            lines.append(
                f"{c.policy:<8} {c.capacity_bytes:>14,} "
                f"{c.simulated_hit_rate:>8.4f} "
                f"{c.predicted_hit_rate:>9.4f} "
                f"{c.hit_rate_error:>7.4f}   "
                f"{c.simulated_byte_hit_rate:>8.4f} "
                f"{c.predicted_byte_hit_rate:>9.4f} "
                f"{c.byte_hit_rate_error:>7.4f}")
        lines.append(
            f"hit-rate MAE {self.mean_absolute_error:.4f}  "
            f"max {self.max_absolute_error:.4f}  "
            f"byte-hit-rate MAE {self.byte_mean_absolute_error:.4f}")
        for policy in self.policies:
            lines.append(
                f"  {policy:<8} MAE "
                f"{self.policy_mean_absolute_error(policy):.4f}")
        return "\n".join(lines)


#: Default (child, parent) capacity-fraction ladder for the hierarchy
#: validation: parents four times their children, spanning the small-
#: cache regime the paper sweeps.
HIERARCHY_FRACTION_PAIRS = ((0.002, 0.008), (0.005, 0.02),
                            (0.01, 0.04), (0.02, 0.08))


@dataclass(frozen=True)
class HierarchyValidationCell:
    """Tandem-queue model vs network simulator at one capacity pair."""

    policy: str
    child_capacity_bytes: int
    parent_capacity_bytes: int
    predicted: HierarchyPrediction
    simulated_child_hit_rate: float
    simulated_parent_hit_rate: float
    simulated_combined_hit_rate: float
    simulated_combined_byte_hit_rate: float

    @property
    def combined_error(self) -> float:
        """|model − simulator| on the hierarchy (origin off-load)
        hit rate — the quantity the CI gate bounds."""
        return abs(self.predicted.combined_hit_rate
                   - self.simulated_combined_hit_rate)

    @property
    def child_error(self) -> float:
        return abs(self.predicted.child.hit_rate
                   - self.simulated_child_hit_rate)

    @property
    def parent_error(self) -> float:
        return abs(self.predicted.parent.hit_rate
                   - self.simulated_parent_hit_rate)

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "child_capacity_bytes": self.child_capacity_bytes,
            "parent_capacity_bytes": self.parent_capacity_bytes,
            "predicted_child_hit_rate": self.predicted.child.hit_rate,
            "predicted_parent_hit_rate": self.predicted.parent.hit_rate,
            "predicted_combined_hit_rate":
                self.predicted.combined_hit_rate,
            "predicted_combined_byte_hit_rate":
                self.predicted.combined_byte_hit_rate,
            "simulated_child_hit_rate": self.simulated_child_hit_rate,
            "simulated_parent_hit_rate": self.simulated_parent_hit_rate,
            "simulated_combined_hit_rate":
                self.simulated_combined_hit_rate,
            "simulated_combined_byte_hit_rate":
                self.simulated_combined_byte_hit_rate,
            "combined_error": self.combined_error,
            "child_error": self.child_error,
            "parent_error": self.parent_error,
        }


@dataclass
class HierarchyValidationReport:
    """Tandem model errors over a (policy × capacity-pair) grid."""

    trace_name: str
    total_requests: int
    n_children: int
    warmup_fraction: float
    cells: List[HierarchyValidationCell] = field(default_factory=list)

    @property
    def mean_absolute_error(self) -> float:
        """Combined-hit-rate MAE over the grid (the CI-gated bound)."""
        if not self.cells:
            return 0.0
        return sum(c.combined_error for c in self.cells) / len(self.cells)

    @property
    def max_absolute_error(self) -> float:
        if not self.cells:
            return 0.0
        return max(c.combined_error for c in self.cells)

    @property
    def child_mean_absolute_error(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.child_error for c in self.cells) / len(self.cells)

    @property
    def parent_mean_absolute_error(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.parent_error for c in self.cells) / len(self.cells)

    def as_dict(self) -> dict:
        return {
            "trace_name": self.trace_name,
            "total_requests": self.total_requests,
            "n_children": self.n_children,
            "warmup_fraction": self.warmup_fraction,
            "mean_absolute_error": self.mean_absolute_error,
            "max_absolute_error": self.max_absolute_error,
            "child_mean_absolute_error": self.child_mean_absolute_error,
            "parent_mean_absolute_error":
                self.parent_mean_absolute_error,
            "cells": [cell.as_dict() for cell in self.cells],
        }

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    def text(self) -> str:
        lines = [
            f"Hierarchy model validation on {self.trace_name!r} "
            f"({self.total_requests:,} requests, "
            f"{self.n_children} children, "
            f"warmup {self.warmup_fraction:.0%})",
            f"{'policy':<8} {'child cap':>12} {'parent cap':>12} "
            f"{'sim hr':>8} {'model hr':>9} {'|err|':>7}   "
            f"{'child |err|':>11} {'parent |err|':>12}",
        ]
        for c in self.cells:
            lines.append(
                f"{c.policy:<8} {c.child_capacity_bytes:>12,} "
                f"{c.parent_capacity_bytes:>12,} "
                f"{c.simulated_combined_hit_rate:>8.4f} "
                f"{c.predicted.combined_hit_rate:>9.4f} "
                f"{c.combined_error:>7.4f}   "
                f"{c.child_error:>11.4f} {c.parent_error:>12.4f}")
        lines.append(
            f"combined MAE {self.mean_absolute_error:.4f}  "
            f"max {self.max_absolute_error:.4f}  "
            f"child MAE {self.child_mean_absolute_error:.4f}  "
            f"parent MAE {self.parent_mean_absolute_error:.4f}")
        return "\n".join(lines)


def validate_hierarchy(trace: Trace,
                       policies: Sequence[str] = ("lru",),
                       fraction_pairs: Sequence[Sequence[float]]
                       = HIERARCHY_FRACTION_PAIRS,
                       n_children: int = 3,
                       warmup_fraction: float = 0.10,
                       catalog: Optional[Catalog] = None,
                       ) -> HierarchyValidationReport:
    """Score the two-level tandem predictor against the network engine.

    The analytical side is :func:`repro.model.che.hierarchy_predict`
    (child solved on the raw stream, parent on the normalized child
    miss stream, independence approximation); the simulated side is
    :func:`repro.simulation.hierarchy.simulate_hierarchy`, which since
    the :mod:`repro.network` refactor *is* the network engine on a
    :func:`~repro.network.topology.two_level` topology under
    leave-copy-everywhere.

    The tandem model is per-child-count agnostic — under IRM each
    round-robin child substream keeps the popularity distribution, so
    one solved child stands for all ``n_children`` of them — which is
    why the comparison is meaningful for any ``n_children``.

    Returns the structured report; also emits a
    ``hierarchy_model_validated`` event and feeds per-cell combined
    errors into the ``hierarchy_validation_abs_error`` histogram.
    """
    from repro.simulation.hierarchy import simulate_hierarchy
    from repro.simulation.sweep import cache_sizes_from_fractions

    policies = [normalize_policy(p) for p in policies]
    if not policies:
        raise ConfigurationError("need at least one policy")
    pairs = [tuple(pair) for pair in fraction_pairs]
    if not pairs or any(len(pair) != 2 for pair in pairs):
        raise ConfigurationError(
            "fraction_pairs must be (child, parent) fraction pairs")
    if catalog is None:
        catalog = catalog_from_trace(trace)

    report = HierarchyValidationReport(
        trace_name=catalog.name,
        total_requests=len(trace),
        n_children=n_children,
        warmup_fraction=warmup_fraction)
    registry = get_registry()
    for policy in policies:
        for child_fraction, parent_fraction in pairs:
            child_cap, parent_cap = cache_sizes_from_fractions(
                trace, [child_fraction, parent_fraction])
            predicted = hierarchy_predict(
                catalog, child_cap, parent_cap, policy=policy)
            simulated = simulate_hierarchy(
                trace, child_cap, parent_cap,
                child_policy=policy, parent_policy=policy,
                n_children=n_children,
                warmup_fraction=warmup_fraction)
            cell = HierarchyValidationCell(
                policy=policy,
                child_capacity_bytes=int(child_cap),
                parent_capacity_bytes=int(parent_cap),
                predicted=predicted,
                simulated_child_hit_rate=simulated.child_hit_rate,
                simulated_parent_hit_rate=simulated.parent_hit_rate,
                simulated_combined_hit_rate=simulated.hierarchy_hit_rate,
                simulated_combined_byte_hit_rate=
                simulated.hierarchy.overall.byte_hit_rate,
            )
            report.cells.append(cell)
            if registry.enabled:
                registry.histogram(
                    "hierarchy_validation_abs_error",
                    policy=policy).observe(cell.combined_error)
    emit("hierarchy_model_validated",
         cells=len(report.cells),
         mean_absolute_error=round(report.mean_absolute_error, 6),
         max_absolute_error=round(report.max_absolute_error, 6))
    _logger.info(
        "hierarchy model validated on %r: %d cells, combined MAE "
        "%.4f (max %.4f)", report.trace_name, len(report.cells),
        report.mean_absolute_error, report.max_absolute_error,
        extra={"trace": report.trace_name, "cells": len(report.cells),
               "mean_absolute_error": report.mean_absolute_error,
               "max_absolute_error": report.max_absolute_error})
    return report


def _type_errors(prediction: ModelPrediction,
                 simulated: SimulationResult) -> Dict[DocumentType, dict]:
    errors: Dict[DocumentType, dict] = {}
    for doc_type in DOCUMENT_TYPES:
        type_prediction = prediction.per_type.get(doc_type)
        if type_prediction is None:
            continue
        sim_hr = simulated.hit_rate(doc_type)
        sim_bhr = simulated.byte_hit_rate(doc_type)
        errors[doc_type] = {
            "predicted_hit_rate": type_prediction.hit_rate,
            "simulated_hit_rate": sim_hr,
            "hit_rate_error": abs(type_prediction.hit_rate - sim_hr),
            "predicted_byte_hit_rate": type_prediction.byte_hit_rate,
            "simulated_byte_hit_rate": sim_bhr,
            "byte_hit_rate_error": abs(
                type_prediction.byte_hit_rate - sim_bhr),
        }
    return errors


def validate_model(trace: Trace,
                   policies: Sequence[str] = DEFAULT_POLICIES,
                   capacities: Optional[Sequence[int]] = None,
                   fractions: Sequence[float] = PAPER_SIZE_FRACTIONS,
                   warmup_fraction: float = 0.0,
                   catalog: Optional[Catalog] = None,
                   ) -> ValidationReport:
    """Score the analytical model against a shared-pass simulation grid.

    Args:
        trace: The workload, materialized (both stacks walk it).
        policies: Model-covered policy names; each gets the full
            capacity ladder.
        capacities: Byte capacities; defaults to ``fractions`` of the
            trace's distinct-document bytes (the paper's ladder).
        warmup_fraction: Applied identically to both stacks.  The
            default 0 measures the whole trace — the regime where the
            model's compulsory-miss correction is exact rather than
            approximated.
        catalog: Pre-calibrated catalog (skips the calibration pass).

    Returns the structured :class:`ValidationReport`; also emits a
    ``model_validated`` telemetry event and feeds per-cell errors into
    the ``model_validation_abs_error`` histogram.
    """
    from repro.simulation.sweep import cache_sizes_from_fractions

    policies = [normalize_policy(p) for p in policies]
    if not policies:
        raise ConfigurationError("need at least one policy")
    if capacities is None:
        capacities = cache_sizes_from_fractions(trace, fractions)
    if not capacities:
        raise ConfigurationError("need at least one capacity")

    if catalog is None:
        catalog = catalog_from_trace(trace)

    configs = [
        SimulationConfig(capacity_bytes=capacity, policy=policy,
                         warmup_fraction=warmup_fraction)
        for policy in policies for capacity in capacities
    ]
    simulated = run_cells(trace, configs)

    report = ValidationReport(
        trace_name=catalog.name,
        total_requests=len(trace),
        warmup_fraction=warmup_fraction)
    registry = get_registry()
    index = 0
    for policy in policies:
        predictions = hit_rate_curve(catalog, capacities, policy=policy,
                                     warmup_fraction=warmup_fraction)
        for prediction in predictions:
            result = simulated[index]
            index += 1
            cell = ValidationCell(
                policy=policy,
                capacity_bytes=int(result.capacity_bytes),
                predicted_hit_rate=prediction.hit_rate,
                simulated_hit_rate=result.hit_rate(),
                predicted_byte_hit_rate=prediction.byte_hit_rate,
                simulated_byte_hit_rate=result.byte_hit_rate(),
                per_type=_type_errors(prediction, result),
            )
            report.cells.append(cell)
            if registry.enabled:
                registry.histogram(
                    "model_validation_abs_error",
                    policy=policy).observe(cell.hit_rate_error)
    emit("model_validated",
         cells=len(report.cells),
         mean_absolute_error=round(report.mean_absolute_error, 6),
         max_absolute_error=round(report.max_absolute_error, 6))
    _logger.info(
        "model validated on %r: %d cells, hit-rate MAE %.4f (max %.4f)",
        report.trace_name, len(report.cells),
        report.mean_absolute_error, report.max_absolute_error,
        extra={"trace": report.trace_name, "cells": len(report.cells),
               "mean_absolute_error": report.mean_absolute_error,
               "max_absolute_error": report.max_absolute_error})
    return report
