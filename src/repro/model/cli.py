"""The ``model`` subcommand of the experiments CLI.

Three verbs, all driven by the same workload-source options::

    python -m repro.experiments model predict \\
        --profile dfn --capacity 50000000 --policy lru
    python -m repro.experiments model curve \\
        --trace proxy.csv --fractions 0.005,0.01,0.02,0.04
    python -m repro.experiments model validate \\
        --profile dfn --profile-scale 0.004 --irm --max-mae 0.02

Workload sources:

* ``--trace PATH`` — calibrate from a trace file in **one streaming
  pass** (:func:`repro.trace.pipeline.iter_trace`); the trace is never
  materialized and never read again.
* ``--profile NAME`` — calibrate from a named workload profile with
  no trace at all (``predict``/``curve``) or from a freshly generated
  synthetic trace (``validate``, which needs something to simulate).

``validate`` exits non-zero when the LRU mean absolute hit-rate error
exceeds ``--max-mae`` — that is the CI ``model-validation`` gate.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.model.catalog import (
    Catalog,
    catalog_from_profile,
    catalog_from_trace,
)
from repro.model.che import hierarchy_predict, hit_rate_curve, predict
from repro.model.solver import MODEL_POLICIES
from repro.model.validation import DEFAULT_POLICIES, validate_model
from repro.observability.logs import LOG_LEVELS, configure, get_logger
from repro.observability.manifest import TelemetryRun
from repro.simulation.sweep import PAPER_SIZE_FRACTIONS
from repro.types import DOCUMENT_TYPES

_logger = get_logger("model.cli")

PROFILE_NAMES = ("dfn", "rtp", "future", "uniform")
DEFAULT_PROFILE_SCALE = 1.0 / 256.0


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    source = parser.add_argument_group("workload source")
    source.add_argument(
        "--trace", default=None, metavar="PATH",
        help="calibrate from this trace file (one streaming pass; "
             "squid/clf/csv, .gz ok)")
    source.add_argument(
        "--profile", choices=PROFILE_NAMES, default=None,
        help="calibrate from a named workload profile instead of a "
             "trace")
    source.add_argument(
        "--profile-scale", type=float, default=DEFAULT_PROFILE_SCALE,
        help="profile scale factor (default: 1/256)")
    source.add_argument(
        "--seed", type=int, default=None,
        help="override the profile's seed")
    source.add_argument(
        "--irm", action="store_true",
        help="with --profile on 'validate': generate the reference "
             "trace under the Independent Reference Model (the "
             "regime the approximation assumes)")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--warmup", type=float, default=0.0,
        help="warm-up fraction excluded from measurement, mirroring "
             "the simulator knob (default: 0)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of a table")
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="info",
        help="diagnostic verbosity on stderr (default: info)")
    obs.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines")
    obs.add_argument(
        "--telemetry-dir", default=None,
        help="write manifest.json + events.jsonl (calibration, "
             "per-cell predictions, validation verdict) here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments model",
        description="Analytical cache models (Che/TTL approximation): "
                    "predict hit rates without simulating.")
    verbs = parser.add_subparsers(dest="verb", required=True)

    p_predict = verbs.add_parser(
        "predict", help="one (policy, capacity) prediction, "
                        "optionally a two-level hierarchy")
    p_predict.add_argument(
        "--capacity", type=int, required=True,
        help="cache capacity in bytes")
    p_predict.add_argument(
        "--parent-capacity", type=int, default=None,
        help="add a parent cache of this many bytes and predict the "
             "two-level hierarchy")
    p_predict.add_argument(
        "--policy", choices=MODEL_POLICIES, default="lru")
    p_predict.add_argument(
        "--steady-state", action="store_true",
        help="infinite-trace view: amortize compulsory misses away")
    _add_workload_options(p_predict)
    _add_common_options(p_predict)

    p_curve = verbs.add_parser(
        "curve", help="whole capacity→(hit rate, byte hit rate) "
                      "curve, per document type")
    p_curve.add_argument(
        "--capacities", default=None,
        help="comma-separated byte capacities")
    p_curve.add_argument(
        "--fractions", default=None,
        help="comma-separated fractions of the workload's total bytes "
             f"(default: {','.join(str(f) for f in PAPER_SIZE_FRACTIONS)})")
    p_curve.add_argument(
        "--policy", choices=MODEL_POLICIES, default="lru")
    p_curve.add_argument(
        "--steady-state", action="store_true",
        help="infinite-trace view: amortize compulsory misses away")
    _add_workload_options(p_curve)
    _add_common_options(p_curve)

    p_validate = verbs.add_parser(
        "validate", help="score the model against a shared-pass "
                         "simulation grid")
    p_validate.add_argument(
        "--capacities", default=None,
        help="comma-separated byte capacities")
    p_validate.add_argument(
        "--fractions", default=None,
        help="comma-separated fractions of the trace's total bytes "
             f"(default: {','.join(str(f) for f in PAPER_SIZE_FRACTIONS)})")
    p_validate.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated model policies to validate "
             f"(default: {','.join(DEFAULT_POLICIES)})")
    p_validate.add_argument(
        "--max-mae", type=float, default=None,
        help="fail (exit 1) when the LRU mean absolute hit-rate "
             "error exceeds this tolerance")
    p_validate.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the full structured error report as JSON")
    _add_workload_options(p_validate)
    _add_common_options(p_validate)
    return parser


def _parse_float_list(text: str, flag: str) -> List[float]:
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as error:
        raise ConfigurationError(f"{flag}: {error}") from None
    if not values:
        raise ConfigurationError(f"{flag} lists no values")
    return values


def _load_profile(args):
    from repro.workload.profiles import profile_by_name, uniform_profile

    if args.profile == "uniform":
        profile = uniform_profile(
            seed=args.seed if args.seed is not None else 7)
        if args.profile_scale != DEFAULT_PROFILE_SCALE:
            profile = profile.scaled(
                args.profile_scale / DEFAULT_PROFILE_SCALE)
        return profile
    return profile_by_name(args.profile, scale=args.profile_scale,
                           seed=args.seed)


def _build_catalog(args) -> Catalog:
    if (args.trace is None) == (args.profile is None):
        raise ConfigurationError(
            "exactly one of --trace or --profile is required")
    if args.trace is not None:
        from repro.trace.pipeline import iter_trace

        catalog = catalog_from_trace(iter_trace(args.trace),
                                     name=str(args.trace))
        _logger.info(
            "calibrated %d documents from one pass over %s",
            catalog.n_documents, args.trace,
            extra={"documents": catalog.n_documents,
                   "trace": str(args.trace)})
        return catalog
    return catalog_from_profile(_load_profile(args))


def _capacities_for(args, catalog: Catalog) -> List[int]:
    if getattr(args, "capacities", None):
        return [int(v) for v in
                _parse_float_list(args.capacities, "--capacities")]
    fractions = (PAPER_SIZE_FRACTIONS if not getattr(args, "fractions",
                                                     None)
                 else _parse_float_list(args.fractions, "--fractions"))
    if any(f <= 0 for f in fractions):
        raise ConfigurationError("--fractions must be positive")
    total = catalog.total_bytes
    return sorted({max(int(total * f), 1) for f in fractions})


def _format_prediction_table(predictions) -> str:
    lines = [
        f"{'capacity':>14} {'policy':<8} {'T_C':>12} {'hit rate':>9} "
        f"{'byte hr':>9}",
    ]
    for p in predictions:
        tc = ("inf" if math.isinf(p.characteristic_time)
              else f"{p.characteristic_time:,.1f}")
        lines.append(
            f"{int(p.capacity_bytes):>14,} {p.policy:<8} {tc:>12} "
            f"{p.hit_rate:>9.4f} {p.byte_hit_rate:>9.4f}")
        for doc_type in DOCUMENT_TYPES:
            entry = p.per_type.get(doc_type)
            if entry is None:
                continue
            lines.append(
                f"{'':>14} {'· ' + doc_type.value:<20} "
                f"{entry.hit_rate:>9.4f} {entry.byte_hit_rate:>9.4f}")
    return "\n".join(lines)


def _run_predict(args) -> int:
    catalog = _build_catalog(args)
    if args.parent_capacity is not None:
        hierarchy = hierarchy_predict(
            catalog, args.capacity, args.parent_capacity,
            policy=args.policy)
        if args.json:
            print(json.dumps(hierarchy.as_dict(), indent=2))
        else:
            print(_format_prediction_table([hierarchy.child]))
            print(f"{'parent':>14} (over child misses)")
            print(_format_prediction_table([hierarchy.parent]))
            print(f"hierarchy hit rate {hierarchy.combined_hit_rate:.4f}"
                  f"  byte hit rate "
                  f"{hierarchy.combined_byte_hit_rate:.4f}")
        return 0
    prediction = predict(catalog, args.capacity, policy=args.policy,
                         warmup_fraction=args.warmup,
                         steady_state=args.steady_state)
    if args.json:
        print(json.dumps(prediction.as_dict(), indent=2))
    else:
        print(_format_prediction_table([prediction]))
    return 0


def _run_curve(args) -> int:
    catalog = _build_catalog(args)
    capacities = _capacities_for(args, catalog)
    predictions = hit_rate_curve(
        catalog, capacities, policy=args.policy,
        warmup_fraction=args.warmup, steady_state=args.steady_state)
    if args.json:
        print(json.dumps([p.as_dict() for p in predictions], indent=2))
    else:
        print(_format_prediction_table(predictions))
    return 0


def _run_validate(args) -> int:
    from repro.workload.generator import generate_trace

    if (args.trace is None) == (args.profile is None):
        raise ConfigurationError(
            "exactly one of --trace or --profile is required")
    if args.trace is not None:
        from repro.trace.pipeline import load_trace

        trace = load_trace(args.trace)
    else:
        trace = generate_trace(
            _load_profile(args),
            temporal_model="irm" if args.irm else "gaps")
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    capacities = None
    if args.capacities:
        capacities = [int(v) for v in
                      _parse_float_list(args.capacities, "--capacities")]
    fractions = (PAPER_SIZE_FRACTIONS if not args.fractions
                 else _parse_float_list(args.fractions, "--fractions"))
    report = validate_model(
        trace, policies=policies, capacities=capacities,
        fractions=fractions, warmup_fraction=args.warmup)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.text())
    if args.report:
        path = report.save(args.report)
        _logger.info("validation report written to %s", path,
                     extra={"path": str(path)})
    if args.max_mae is not None:
        gate_policy = "lru" if "lru" in policies else policies[0]
        gate = report.policy_mean_absolute_error(gate_policy)
        if gate > args.max_mae:
            _logger.error(
                "%s mean absolute error %.4f exceeds tolerance %.4f",
                gate_policy, gate, args.max_mae,
                extra={"policy": gate_policy,
                       "mean_absolute_error": gate,
                       "tolerance": args.max_mae})
            return 1
        _logger.info(
            "%s mean absolute error %.4f within tolerance %.4f",
            gate_policy, gate, args.max_mae,
            extra={"policy": gate_policy, "mean_absolute_error": gate,
                   "tolerance": args.max_mae})
    return 0


_VERBS = {
    "predict": _run_predict,
    "curve": _run_curve,
    "validate": _run_validate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure(level=args.log_level, json_lines=args.log_json)
    settings = {key: value for key, value in sorted(vars(args).items())
                if key not in ("log_level", "log_json",
                               "telemetry_dir") and value is not None}
    run = None
    if args.telemetry_dir:
        run = TelemetryRun(args.telemetry_dir, kind=f"model-{args.verb}",
                           settings=settings)
    try:
        code = _VERBS[args.verb](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        code = 2
    except Exception:
        if run is not None:
            run.finalize("failed")
        raise
    if run is not None:
        run.finalize("complete" if code == 0 else "failed")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
