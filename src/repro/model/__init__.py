"""Analytical cache models: hit rates without a trace pass.

The paper's methodology — and everything under :mod:`repro.simulation`
— is trace-driven: every hit-rate number costs one pass over the
workload (or, since the shared-pass engine, one pass per *grid*).  This
package answers the same questions in microseconds from the workload's
*statistics* alone, using the characteristic-time (Che) approximation
and its TTL-cache generalizations:

* LRU ≈ a TTL cache with a deterministic timer that resets on every
  hit: a document requested with probability ``p`` hits with
  probability ``1 − exp(−p·T_C)`` (Che, Tung & Wang 2002).
* FIFO and RANDOM ≈ TTL caches whose timer does *not* reset; both hit
  with probability ``p·T_C / (1 + p·T_C)`` — and indeed FIFO and
  RANDOM have identical IRM hit rates (Gelenbe 1973; Gallo et al.
  2012).

The characteristic time ``T_C`` is the unique root of the byte-weighted
occupancy constraint ``Σ_i size_i · h_i(T) = capacity_bytes``, so
predictions live in the same bytes units as
:class:`~repro.simulation.simulator.CacheSimulator`
(:mod:`repro.model.solver`).  Calibration takes one pass over a trace
— or none at all, from a :class:`~repro.workload.profiles.WorkloadProfile`
(:mod:`repro.model.catalog`); predictions decompose per document type
and extend to a two-level hierarchy (:mod:`repro.model.che`); and a
validation harness scores the model against
:func:`repro.simulation.engine.run_cells` grids
(:mod:`repro.model.validation`).

Quickstart::

    from repro import dfn_like, generate_trace
    from repro.model import catalog_from_trace, hit_rate_curve

    trace = generate_trace(dfn_like(scale=1 / 256), temporal_model="irm")
    catalog = catalog_from_trace(trace)      # the only trace pass
    for pred in hit_rate_curve(catalog, [2**20, 2**22, 2**24]):
        print(pred.capacity_bytes, pred.hit_rate, pred.byte_hit_rate)

The approximation assumes the Independent Reference Model; see
docs/guide.md ("Analytical models") for when to trust it — in short:
the stronger the paper's temporal correlation β, the more the model
flatters recency-based policies' competition.
"""

from repro.model.catalog import (
    Catalog,
    catalog_from_counts,
    catalog_from_profile,
    catalog_from_trace,
)
from repro.model.che import (
    HierarchyPrediction,
    ModelPrediction,
    TypePrediction,
    hierarchy_predict,
    hit_rate_curve,
    predict,
)
from repro.model.solver import (
    MODEL_POLICIES,
    SolverResult,
    hit_probabilities,
    occupancy_bytes,
    solve_characteristic_time,
    solve_curve,
)
from repro.model.validation import (
    ValidationCell,
    ValidationReport,
    validate_model,
)

#: Unambiguous alias for the package-root namespace
#: (``repro.predict_hit_rates``); inside ``repro.model`` the short
#: :func:`predict` reads fine.
predict_hit_rates = predict

__all__ = [
    # catalog
    "Catalog", "catalog_from_counts", "catalog_from_profile",
    "catalog_from_trace",
    # solver
    "MODEL_POLICIES", "SolverResult", "hit_probabilities",
    "occupancy_bytes", "solve_characteristic_time", "solve_curve",
    # predictors
    "ModelPrediction", "TypePrediction", "HierarchyPrediction",
    "predict", "predict_hit_rates", "hit_rate_curve",
    "hierarchy_predict",
    # validation
    "ValidationCell", "ValidationReport", "validate_model",
]
