"""ASCII rendering of the paper's tables."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.analysis.characterize import WorkloadCharacterization
from repro.simulation.results import SweepResult
from repro.types import DOCUMENT_TYPES, DocumentType


def _fmt(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if value and abs(value) < 10 ** (-digits):
            return f"{value:.2e}"
        return f"{value:,.{digits}f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None, digits: int = 2) -> str:
    """Render a simple aligned ASCII table.

    The first column is left-aligned (row labels); the rest are
    right-aligned numbers formatted with ``digits`` decimals.
    """
    text_rows = [[_fmt(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def _line(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [cell.rjust(width)
                  for cell, width in zip(cells[1:], widths[1:])]
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_line(row) for row in text_rows)
    return "\n".join(lines)


def render_properties_table(
        characterizations: Dict[str, WorkloadCharacterization],
        title: str = "Table 1. Trace properties") -> str:
    """Table 1: one column per trace."""
    names = list(characterizations)
    headers = ["Property"] + names
    rows = [
        ["Distinct Documents"] + [
            characterizations[n].metadata.distinct_documents for n in names],
        ["Overall Size (GB)"] + [
            characterizations[n].metadata.total_size_gb for n in names],
        ["Total Requests"] + [
            characterizations[n].metadata.total_requests for n in names],
        ["Requested Data (GB)"] + [
            characterizations[n].metadata.requested_gb for n in names],
    ]
    return render_table(headers, rows, title=title)


def render_breakdown_table(char: WorkloadCharacterization,
                           title: str) -> str:
    """Tables 2/3: per-type percentage shares."""
    headers = ["Metric"] + [t.label for t in DOCUMENT_TYPES]
    breakdown = char.breakdown
    rows = [
        ["% of Distinct Documents"] + [
            breakdown.distinct_documents[t] for t in DOCUMENT_TYPES],
        ["% of Overall Size"] + [
            breakdown.overall_size[t] for t in DOCUMENT_TYPES],
        ["% of Total Requests"] + [
            breakdown.total_requests[t] for t in DOCUMENT_TYPES],
        ["% of Requested Data"] + [
            breakdown.requested_data[t] for t in DOCUMENT_TYPES],
    ]
    return render_table(headers, rows, title=title)


def render_statistics_table(char: WorkloadCharacterization,
                            title: str) -> str:
    """Tables 4/5: per-type size statistics plus α and β."""
    headers = ["Statistic"] + [t.label for t in DOCUMENT_TYPES]
    types = DOCUMENT_TYPES
    rows = [
        ["Mean of Document Size (KB)"] + [
            char.by_type[t].sizes.document.mean_kb for t in types],
        ["Median of Document Size (KB)"] + [
            char.by_type[t].sizes.document.median_kb for t in types],
        ["CoV of Document Size"] + [
            char.by_type[t].sizes.document.cov for t in types],
        ["Mean of Transfer Size (KB)"] + [
            char.by_type[t].sizes.transfer.mean_kb for t in types],
        ["Median of Transfer Size (KB)"] + [
            char.by_type[t].sizes.transfer.median_kb for t in types],
        ["CoV of Transfer Size"] + [
            char.by_type[t].sizes.transfer.cov for t in types],
        ["Slope of Popularity Distribution (alpha)"] + [
            char.by_type[t].alpha for t in types],
        ["Degree of Temporal Correlations (beta)"] + [
            char.by_type[t].beta for t in types],
    ]
    return render_table(headers, rows, title=title)


def _capacity_label(capacity_bytes: int) -> str:
    """Human-readable capacity with an auto-selected unit."""
    for unit, factor in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if capacity_bytes >= factor:
            return f"{capacity_bytes / factor:,.1f}{unit}"
    return f"{capacity_bytes}B"


def render_sweep_table(sweep: SweepResult,
                       doc_type: Optional[DocumentType] = None,
                       byte_rate: bool = False,
                       title: Optional[str] = None) -> str:
    """One figure panel as a table: policies × cache sizes → rate."""
    capacities = sweep.capacities
    headers = ["Policy"] + [_capacity_label(c) for c in capacities]
    rows: List[List] = []
    for policy in sweep.policies:
        row: List = [policy]
        per_policy = sweep.grid[policy]
        for capacity in capacities:
            result = per_policy.get(capacity)
            if result is None:
                row.append(None)
            elif byte_rate:
                row.append(result.byte_hit_rate(doc_type))
            else:
                row.append(result.hit_rate(doc_type))
        rows.append(row)
    if title is None:
        metric = "byte hit rate" if byte_rate else "hit rate"
        label = doc_type.label if doc_type else "overall"
        title = f"{label} {metric} ({sweep.trace_name})"
    return render_table(headers, rows, title=title, digits=3)
