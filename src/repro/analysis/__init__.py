"""Workload characterization and reporting (paper Section 2).

Regenerates the paper's characterization tables from any request
stream:

* Table 1 — aggregate trace properties
  (:func:`~repro.analysis.characterize.characterize`);
* Tables 2/3 — per-type breakdown of documents, bytes, requests;
* Tables 4/5 — per-type size statistics plus the two temporal-locality
  parameters: popularity index α
  (:mod:`~repro.analysis.popularity`) and temporal-correlation exponent
  β (:mod:`~repro.analysis.correlation`).

Rendering helpers live in :mod:`~repro.analysis.tables` (ASCII tables)
and :mod:`~repro.analysis.plotting` (ASCII line charts standing in for
the paper's figures).
"""

from repro.analysis.popularity import alpha_mle, estimate_alpha, popularity_counts
from repro.analysis.correlation import estimate_beta, reuse_distances
from repro.analysis.sizestats import SizeStats, size_stats_by_type
from repro.analysis.characterize import (
    TypeCharacterization,
    WorkloadCharacterization,
    characterize,
    type_breakdown,
)
from repro.analysis.tables import (
    render_breakdown_table,
    render_properties_table,
    render_statistics_table,
    render_sweep_table,
    render_table,
)
from repro.analysis.plotting import ascii_chart
from repro.analysis.stack_distance import (
    StackProfile,
    approximate_byte_curve,
    profiles_by_type,
    stack_distances,
    stack_profile,
)
from repro.analysis.concentration import (
    concentration_by_type,
    concentration_curve,
    gini_coefficient,
    top_share,
)
from repro.analysis.drift import (
    DriftReport,
    drift_report,
    windowed_summaries,
)
from repro.analysis.footprint import (
    FootprintSample,
    mean_footprint_bytes,
    peak_footprint,
    working_set_series,
)
from repro.analysis.confidence import (
    Interval,
    block_bootstrap_ratio,
    hit_rate_interval,
    wilson_interval,
)

__all__ = [
    "estimate_alpha",
    "alpha_mle",
    "popularity_counts",
    "estimate_beta",
    "reuse_distances",
    "SizeStats",
    "size_stats_by_type",
    "TypeCharacterization",
    "WorkloadCharacterization",
    "characterize",
    "type_breakdown",
    "render_table",
    "render_properties_table",
    "render_breakdown_table",
    "render_statistics_table",
    "render_sweep_table",
    "ascii_chart",
    "StackProfile",
    "stack_distances",
    "stack_profile",
    "approximate_byte_curve",
    "profiles_by_type",
    "concentration_curve",
    "concentration_by_type",
    "gini_coefficient",
    "top_share",
    "Interval",
    "wilson_interval",
    "block_bootstrap_ratio",
    "hit_rate_interval",
    "FootprintSample",
    "working_set_series",
    "peak_footprint",
    "mean_footprint_bytes",
    "DriftReport",
    "drift_report",
    "windowed_summaries",
]
