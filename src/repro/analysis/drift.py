"""Workload drift over time.

The paper's closing motivation — replacement design "under changing
workload characteristics" — presumes workloads change.  This module
measures how much: the trace is cut into consecutive windows, each
window is summarized (request mix by type, popularity index, mean
transfer size), and drift is reported as the total-variation distance
between consecutive windows' request mixes.  A stationary synthetic
trace shows near-zero drift; a regime-switching one (see
``examples/adaptive_gdstar.py``) lights up exactly at the switch —
which is the signal an adaptive policy like GD* has available to act
on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.popularity import alpha_from_counts, popularity_counts
from repro.errors import AnalysisError
from repro.types import DOCUMENT_TYPES, DocumentType, Request, Trace


@dataclass
class WindowSummary:
    """Statistics of one trace window."""

    index: int
    start: int                    # first request index (inclusive)
    end: int                      # last request index (exclusive)
    request_mix: Dict[DocumentType, float] = field(default_factory=dict)
    alpha: float = math.nan
    mean_transfer_bytes: float = math.nan


def total_variation(mix_a: Dict[DocumentType, float],
                    mix_b: Dict[DocumentType, float]) -> float:
    """Total-variation distance between two type mixes (0..1)."""
    return 0.5 * sum(abs(mix_a.get(t, 0.0) - mix_b.get(t, 0.0))
                     for t in DOCUMENT_TYPES)


def windowed_summaries(requests: Sequence[Request],
                       n_windows: int = 10) -> List[WindowSummary]:
    """Cut the trace into equal windows and summarize each."""
    if n_windows <= 0:
        raise AnalysisError("n_windows must be positive")
    total = len(requests)
    if total < n_windows:
        raise AnalysisError(
            f"trace of {total} requests cannot fill {n_windows} windows")
    summaries: List[WindowSummary] = []
    window_size = total // n_windows
    for index in range(n_windows):
        start = index * window_size
        end = total if index == n_windows - 1 else start + window_size
        window = requests[start:end]
        counts = {t: 0 for t in DOCUMENT_TYPES}
        transfer_total = 0
        for request in window:
            counts[request.doc_type] += 1
            transfer_total += min(request.transfer_size, request.size)
        size = len(window)
        summary = WindowSummary(
            index=index, start=start, end=end,
            request_mix={t: counts[t] / size for t in DOCUMENT_TYPES},
            mean_transfer_bytes=transfer_total / size,
        )
        try:
            summary.alpha = alpha_from_counts(
                popularity_counts(window).values(), min_documents=10)
        except AnalysisError:
            pass
        summaries.append(summary)
    return summaries


@dataclass
class DriftReport:
    """Aggregate drift over all consecutive window pairs."""

    summaries: List[WindowSummary]
    mix_distances: List[float]

    @property
    def max_mix_drift(self) -> float:
        return max(self.mix_distances) if self.mix_distances else 0.0

    @property
    def mean_mix_drift(self) -> float:
        if not self.mix_distances:
            return 0.0
        return sum(self.mix_distances) / len(self.mix_distances)

    def drift_window(self) -> int:
        """Index of the window pair with the largest mix shift."""
        if not self.mix_distances:
            return 0
        return max(range(len(self.mix_distances)),
                   key=lambda i: self.mix_distances[i]) + 1


def drift_report(trace: Trace, n_windows: int = 10) -> DriftReport:
    """Windowed drift analysis of a whole trace."""
    summaries = windowed_summaries(trace.requests, n_windows)
    distances = [
        total_variation(summaries[i].request_mix,
                        summaries[i + 1].request_mix)
        for i in range(len(summaries) - 1)
    ]
    return DriftReport(summaries=summaries, mix_distances=distances)
