"""Full workload characterization: Tables 1-5 from a trace."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.correlation import estimate_beta
from repro.analysis.popularity import estimate_alpha
from repro.analysis.sizestats import TypeSizeStats, size_stats_by_type
from repro.errors import AnalysisError
from repro.types import (
    DOCUMENT_TYPES,
    DocumentType,
    Trace,
    TraceMetadata,
    TypeBreakdown,
)


def type_breakdown(trace: Trace) -> TypeBreakdown:
    """Per-type percentage shares (Tables 2 and 3).

    * distinct documents and overall size count each URL once, at its
      most recent full size;
    * total requests and requested data count every request, by
      transfer size.
    """
    doc_sizes: Dict[DocumentType, Dict[str, int]] = {
        t: {} for t in DOCUMENT_TYPES}
    request_counts = {t: 0 for t in DOCUMENT_TYPES}
    requested_bytes = {t: 0 for t in DOCUMENT_TYPES}
    for request in trace:
        doc_sizes[request.doc_type][request.url] = request.size
        request_counts[request.doc_type] += 1
        requested_bytes[request.doc_type] += min(request.transfer_size,
                                                 request.size)
    doc_counts = {t: len(doc_sizes[t]) for t in DOCUMENT_TYPES}
    byte_counts = {t: sum(doc_sizes[t].values()) for t in DOCUMENT_TYPES}

    def _percent(counts: Dict[DocumentType, int]) -> Dict[DocumentType, float]:
        total = sum(counts.values())
        if total == 0:
            return {t: 0.0 for t in DOCUMENT_TYPES}
        return {t: 100.0 * counts[t] / total for t in DOCUMENT_TYPES}

    return TypeBreakdown(
        distinct_documents=_percent(doc_counts),
        overall_size=_percent(byte_counts),
        total_requests=_percent(request_counts),
        requested_data=_percent(requested_bytes),
    )


@dataclass
class TypeCharacterization:
    """One type's row set in Table 4/5: sizes plus α and β."""

    doc_type: DocumentType
    sizes: TypeSizeStats
    alpha: float = math.nan
    beta: float = math.nan


@dataclass
class WorkloadCharacterization:
    """Everything Section 2 reports about one trace."""

    metadata: TraceMetadata
    breakdown: TypeBreakdown
    by_type: Dict[DocumentType, TypeCharacterization] = field(
        default_factory=dict)

    def alpha(self, doc_type: DocumentType) -> float:
        return self.by_type[doc_type].alpha

    def beta(self, doc_type: DocumentType) -> float:
        return self.by_type[doc_type].beta


def characterize(trace: Trace,
                 estimate_locality: bool = True,
                 min_documents: int = 10,
                 beta_min_samples: int = 25,
                 beta_max_refs: int = 50) -> WorkloadCharacterization:
    """Characterize a trace (Tables 1-5 in one object).

    α/β estimation needs enough repeat traffic per type; types too thin
    for a fit get NaN rather than failing the whole characterization.
    """
    metadata = trace.metadata()
    breakdown = type_breakdown(trace)
    sizes = size_stats_by_type(trace)
    result = WorkloadCharacterization(metadata=metadata,
                                      breakdown=breakdown)
    for doc_type in DOCUMENT_TYPES:
        char = TypeCharacterization(doc_type=doc_type,
                                    sizes=sizes[doc_type])
        if estimate_locality:
            char.alpha = _safe_alpha(trace, doc_type, min_documents)
            char.beta = _safe_beta(trace, doc_type, beta_min_samples,
                                   beta_max_refs)
        result.by_type[doc_type] = char
    return result


def _safe_alpha(trace: Trace, doc_type: DocumentType,
                min_documents: int) -> float:
    try:
        return estimate_alpha(trace, doc_type, min_documents=min_documents)
    except AnalysisError:
        return math.nan


def _safe_beta(trace: Trace, doc_type: DocumentType,
               min_samples: int, max_refs: int) -> float:
    try:
        return estimate_beta(trace, doc_type, max_refs=max_refs,
                             min_samples=min_samples)
    except AnalysisError:
        return math.nan
