"""Confidence intervals for simulation-derived rates.

Trace-driven simulation on one trace produces point estimates; when the
workload itself is synthetic (seeded), the natural uncertainty measures
are

* a **Wilson score interval** for hit rates (a hit is a Bernoulli
  outcome per request) — cheap, no resampling;
* a **block bootstrap** for byte hit rates, where the per-request
  contributions are heavy-tailed and correlated, so Bernoulli math is
  wrong: resample contiguous request blocks and recompute the ratio.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import AnalysisError

#: z-values for common two-sided confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Interval:
    """A two-sided confidence interval around a point estimate."""

    estimate: float
    lower: float
    upper: float
    level: float

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def _z_for(level: float) -> float:
    z = _Z.get(round(level, 2))
    if z is None:
        raise AnalysisError(
            f"unsupported confidence level {level}; "
            f"use one of {sorted(_Z)}")
    return z


def wilson_interval(hits: int, requests: int,
                    level: float = 0.95) -> Interval:
    """Wilson score interval for a hit rate.

    Well-behaved at the extremes (0 or all hits), unlike the normal
    approximation.
    """
    if requests <= 0:
        raise AnalysisError("requests must be positive")
    if not 0 <= hits <= requests:
        raise AnalysisError("hits must be within [0, requests]")
    z = _z_for(level)
    p = hits / requests
    z2 = z * z
    denominator = 1.0 + z2 / requests
    center = (p + z2 / (2 * requests)) / denominator
    margin = (z / denominator) * math.sqrt(
        p * (1 - p) / requests + z2 / (4 * requests * requests))
    return Interval(estimate=p,
                    lower=max(center - margin, 0.0),
                    upper=min(center + margin, 1.0),
                    level=level)


def block_bootstrap_ratio(numerators: Sequence[float],
                          denominators: Sequence[float],
                          level: float = 0.95,
                          block_size: int = 1000,
                          replicates: int = 500,
                          seed: int = 0) -> Interval:
    """Bootstrap CI for sum(numerators)/sum(denominators).

    For a byte hit rate, pass per-request hit bytes as numerators and
    per-request requested bytes as denominators.  Contiguous blocks
    preserve the short-range correlation of web request streams.
    """
    n = len(numerators)
    if n == 0 or n != len(denominators):
        raise AnalysisError("need equal, nonempty numerator/denominator "
                            "sequences")
    total_num = sum(numerators)
    total_den = sum(denominators)
    if total_den <= 0:
        raise AnalysisError("denominator total must be positive")
    estimate = total_num / total_den

    block_size = min(max(block_size, 1), n)
    n_blocks = max(n // block_size, 1)
    rng = random.Random(seed)
    # Precompute block sums.
    block_sums: List[Tuple[float, float]] = []
    for b in range(n_blocks):
        start = b * block_size
        stop = n if b == n_blocks - 1 else start + block_size
        block_sums.append((sum(numerators[start:stop]),
                           sum(denominators[start:stop])))

    ratios = []
    for _ in range(replicates):
        num = den = 0.0
        for _ in range(n_blocks):
            b_num, b_den = block_sums[rng.randrange(n_blocks)]
            num += b_num
            den += b_den
        if den > 0:
            ratios.append(num / den)
    if not ratios:
        raise AnalysisError("bootstrap produced no valid replicates")
    ratios.sort()
    alpha = 1.0 - level
    lower_index = int(len(ratios) * (alpha / 2))
    upper_index = min(int(len(ratios) * (1 - alpha / 2)),
                      len(ratios) - 1)
    return Interval(estimate=estimate,
                    lower=ratios[lower_index],
                    upper=ratios[upper_index],
                    level=level)


def hit_rate_interval(result, doc_type=None,
                      level: float = 0.95) -> Interval:
    """Wilson interval for a :class:`SimulationResult`'s hit rate."""
    accumulator = (result.metrics.overall if doc_type is None
                   else result.metrics.by_type[doc_type])
    return wilson_interval(accumulator.hits, accumulator.requests,
                           level=level)
