"""Per-type document and transfer size statistics (Tables 4 and 5).

Two populations per document type:

* **document sizes** — one observation per *distinct document*, at its
  most recently observed full size;
* **transfer sizes** — one observation per *request* (the bytes
  actually moved, smaller than the document when interrupted).

For each, the paper reports mean, median, and coefficient of variation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.types import DOCUMENT_TYPES, DocumentType, Request


@dataclass
class SizeStats:
    """Mean / median / CoV of one size population (bytes)."""

    count: int
    mean: float
    median: float
    cov: float
    total: int

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "SizeStats":
        data = np.asarray(list(values), dtype=np.float64)
        if data.size == 0:
            return cls(count=0, mean=math.nan, median=math.nan,
                       cov=math.nan, total=0)
        mean = float(data.mean())
        std = float(data.std())
        return cls(
            count=int(data.size),
            mean=mean,
            median=float(np.median(data)),
            cov=(std / mean) if mean else math.nan,
            total=int(data.sum()),
        )

    @property
    def mean_kb(self) -> float:
        return self.mean / 1024.0

    @property
    def median_kb(self) -> float:
        return self.median / 1024.0


@dataclass
class TypeSizeStats:
    """Document-size and transfer-size statistics for one type."""

    doc_type: DocumentType
    document: SizeStats
    transfer: SizeStats


def size_stats_by_type(requests: Iterable[Request]
                       ) -> Dict[DocumentType, TypeSizeStats]:
    """Compute both size populations for every document type.

    Document sizes use the *last seen* full size per URL (matching the
    paper's simulator, which tracks sizes across the whole trace).
    """
    doc_sizes: Dict[DocumentType, Dict[str, int]] = {
        t: {} for t in DOCUMENT_TYPES}
    transfers: Dict[DocumentType, List[int]] = {
        t: [] for t in DOCUMENT_TYPES}
    for request in requests:
        doc_sizes[request.doc_type][request.url] = request.size
        transfers[request.doc_type].append(
            min(request.transfer_size, request.size))
    return {
        t: TypeSizeStats(
            doc_type=t,
            document=SizeStats.from_values(doc_sizes[t].values()),
            transfer=SizeStats.from_values(transfers[t]),
        )
        for t in DOCUMENT_TYPES
    }


def overall_size_stats(requests: Iterable[Request],
                       transfers: bool = False) -> SizeStats:
    """Size statistics over all types combined."""
    if transfers:
        values = [min(r.transfer_size, r.size) for r in requests]
        return SizeStats.from_values(values)
    last: Dict[str, int] = {}
    for request in requests:
        last[request.url] = request.size
    return SizeStats.from_values(last.values())
