"""ASCII line charts.

matplotlib is not available offline, so the experiment harness renders
each figure panel as (a) a CSV series file — the real deliverable — and
(b) an ASCII chart for quick human inspection.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

#: Marker characters assigned to series in insertion order.
MARKERS = "*o+x#@%&"


def _bounds(all_series: Dict[str, Series], logx: bool):
    xs, ys = [], []
    for series in all_series.values():
        for x, y in series:
            if logx and x <= 0:
                continue
            xs.append(math.log10(x) if logx else x)
            ys.append(y)
    if not xs:
        raise ValueError("no plottable points")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_lo == x_hi:
        x_hi = x_lo + 1.0
    if y_lo == y_hi:
        y_hi = y_lo + 1.0
    return x_lo, x_hi, y_lo, y_hi


def ascii_chart(all_series: Dict[str, Series],
                width: int = 64, height: int = 16,
                title: Optional[str] = None,
                x_label: str = "x", y_label: str = "y",
                logx: bool = False) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a marker from :data:`MARKERS`; overlapping points
    show the later series' marker.  A legend maps markers to names.
    """
    if not all_series:
        raise ValueError("no series to plot")
    x_lo, x_hi, y_lo, y_hi = _bounds(all_series, logx)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    for index, (name, series) in enumerate(all_series.items()):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in series:
            if logx:
                if x <= 0:
                    continue
                x = math.log10(x)
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    margin = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    x_lo_label = f"{10 ** x_lo:.3g}" if logx else f"{x_lo:.3g}"
    x_hi_label = f"{10 ** x_hi:.3g}" if logx else f"{x_hi:.3g}"
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    footer = (" " * margin + "  " + x_lo_label
              + " " * max(width - len(x_lo_label) - len(x_hi_label), 1)
              + x_hi_label)
    lines.append(footer)
    scale = " (log scale)" if logx else ""
    lines.append(" " * margin + f"  {x_label}{scale}; y: {y_label}")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}"
        for i, name in enumerate(all_series))
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def series_to_csv(all_series: Dict[str, Series],
                  x_name: str = "x") -> str:
    """Serialize named series to CSV: one x column, one column each.

    Series are aligned on the union of x values; missing points are
    empty cells.
    """
    names = list(all_series)
    xs = sorted({x for series in all_series.values() for x, _ in series})
    lookup = {name: dict(series) for name, series in all_series.items()}
    lines = [",".join([x_name] + names)]
    for x in xs:
        cells = [f"{x:g}"]
        for name in names:
            value = lookup[name].get(x)
            cells.append("" if value is None else f"{value:.6g}")
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
