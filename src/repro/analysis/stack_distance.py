"""LRU stack-distance analysis (Mattson et al., 1970).

The *stack distance* of a reference is the number of distinct documents
referenced since the previous reference to the same document.  Because
LRU is a stack algorithm, a reference hits in an LRU cache of
``C``-document capacity iff its stack distance is ≤ C — so a single
pass over the trace yields the **exact LRU hit-rate curve at every
cache size simultaneously** (in documents; web caches are byte-bounded,
so this is the document-granularity companion to the byte-accurate
simulator, and the cross-validation tests pin the two together on
fixed-size workloads).

Implementation: classic Fenwick-tree formulation, O(n log n) over the
trace; per-document-type distance histograms come for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.structures.fenwick import FenwickTree
from repro.types import DOCUMENT_TYPES, DocumentType, Request

#: Stack distance reported for first references (cold misses).
COLD = math.inf


def stack_distances(requests: Sequence[Request],
                    byte_weighted: bool = False) -> List[float]:
    """Per-request LRU stack distances (:data:`COLD` for first refs).

    By default a distance counts *distinct intervening documents*: 0
    means an immediate re-reference, and a request hits an LRU cache
    of capacity C (documents) iff its distance < C.

    With ``byte_weighted`` the distance is instead the total **bytes**
    of distinct intervening documents (each at its current size): a
    request hits a byte-capacity-B LRU cache iff roughly
    ``distance + size <= B``.  Byte distances are only approximate at
    the eviction boundary (a byte-bounded LRU evicts whole documents),
    which is why the byte curve helper carries a tolerance.
    """
    n = len(requests)
    if n == 0:
        return []
    tree = FenwickTree(n)
    last_position: Dict[str, int] = {}
    distances: List[float] = []
    for position, request in enumerate(requests):
        weight = request.size if byte_weighted else 1
        previous = last_position.get(request.url)
        if previous is None:
            distances.append(COLD)
        else:
            # Distinct documents touched strictly between the two
            # references = flagged weight in (previous, position).
            distances.append(
                float(tree.range_sum(previous + 1, position - 1)))
            tree.add(previous, -tree_weight(tree, previous))
        tree.add(position, weight)
        last_position[request.url] = position
    return distances


def tree_weight(tree: FenwickTree, index: int) -> int:
    """Current cell value at ``index`` (point query via range sum)."""
    return tree.range_sum(index, index)


@dataclass
class StackProfile:
    """Distance histogram plus the derived LRU hit-rate curve."""

    #: histogram[d] = number of references at stack distance d.
    histogram: Dict[int, int] = field(default_factory=dict)
    cold_misses: int = 0
    total_references: int = 0

    def hit_rate_at(self, capacity_documents: int) -> float:
        """Exact LRU hit rate with a ``capacity_documents``-entry cache."""
        if self.total_references == 0:
            return 0.0
        hits = sum(count for distance, count in self.histogram.items()
                   if distance < capacity_documents)
        return hits / self.total_references

    def curve(self, capacities: Iterable[int]) -> List[tuple]:
        """(capacity, exact hit rate) points, computed incrementally."""
        ordered = sorted(set(capacities))
        if not ordered:
            return []
        points = []
        hits = 0
        boundary = 0
        distances = sorted(self.histogram)
        index = 0
        for capacity in ordered:
            while index < len(distances) and distances[index] < capacity:
                hits += self.histogram[distances[index]]
                index += 1
            boundary = capacity
            rate = hits / self.total_references \
                if self.total_references else 0.0
            points.append((boundary, rate))
        return points

    @property
    def compulsory_miss_rate(self) -> float:
        """Cold misses / references: the floor no cache size removes."""
        if self.total_references == 0:
            return 0.0
        return self.cold_misses / self.total_references


def stack_profile(requests: Sequence[Request],
                  doc_type: Optional[DocumentType] = None) -> StackProfile:
    """Build a :class:`StackProfile`, optionally for one document type.

    Distances are always computed over the *full* interleaved stream
    (an LRU cache holds every type); ``doc_type`` only selects which
    requests' distances are counted, mirroring the paper's per-type
    hit-rate definition.
    """
    profile = StackProfile()
    distances = stack_distances(requests)
    for request, distance in zip(requests, distances):
        if doc_type is not None and request.doc_type is not doc_type:
            continue
        profile.total_references += 1
        if distance is COLD or math.isinf(distance):
            profile.cold_misses += 1
        else:
            key = int(distance)
            profile.histogram[key] = profile.histogram.get(key, 0) + 1
    return profile


def approximate_byte_curve(requests: Sequence[Request],
                           capacities_bytes: Iterable[int]
                           ) -> List[tuple]:
    """Approximate LRU hit-rate curve for *byte*-bounded caches.

    One byte-weighted stack pass; a request is scored a hit at
    capacity B iff its byte distance plus its own size fits in B.
    Accurate to within the eviction-boundary granularity (a few
    documents' worth of bytes); the tests pin the error against the
    exact simulator.
    """
    ordered = sorted(set(capacities_bytes))
    if not ordered:
        return []
    distances = stack_distances(requests, byte_weighted=True)
    totals = [0] * len(ordered)
    counted = 0
    for request, distance in zip(requests, distances):
        counted += 1
        if math.isinf(distance):
            continue
        needed = distance + request.size
        for index, capacity in enumerate(ordered):
            if needed <= capacity:
                totals[index] += 1
    if counted == 0:
        return [(capacity, 0.0) for capacity in ordered]
    return [(capacity, hits / counted)
            for capacity, hits in zip(ordered, totals)]


def profiles_by_type(requests: Sequence[Request]
                     ) -> Dict[Optional[DocumentType], StackProfile]:
    """One pass, all profiles: overall (key None) plus one per type."""
    profiles: Dict[Optional[DocumentType], StackProfile] = {
        None: StackProfile()}
    for doc_type in DOCUMENT_TYPES:
        profiles[doc_type] = StackProfile()
    distances = stack_distances(requests)
    for request, distance in zip(requests, distances):
        for profile in (profiles[None], profiles[request.doc_type]):
            profile.total_references += 1
            if math.isinf(distance):
                profile.cold_misses += 1
            else:
                key = int(distance)
                profile.histogram[key] = profile.histogram.get(key, 0) + 1
    return profiles
