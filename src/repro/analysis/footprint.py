"""Working-set (footprint) analysis.

Denning's working set W(t, τ): the set of distinct documents referenced
in the window (t − τ, t].  Its size over time answers the cache-sizing
question the paper's sweeps probe empirically: how much of the request
stream's activity fits in a given budget, and how the answer differs by
document type (a few multimedia documents dominate the byte footprint
while contributing almost nothing to the document footprint).

:func:`working_set_series` slides the window in O(n) amortized using a
deque of (expiry position, url, size) plus per-URL refcounts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import AnalysisError
from repro.types import DocumentType, Request


@dataclass(frozen=True)
class FootprintSample:
    """Working-set measurements at one trace position."""

    request_index: int
    documents: int
    bytes: int


def working_set_series(requests: Sequence[Request],
                       window: int,
                       sample_interval: Optional[int] = None,
                       doc_type: Optional[DocumentType] = None
                       ) -> List[FootprintSample]:
    """Working-set size over the trace, in a ``window``-request window.

    Args:
        requests: The trace (position order defines time).
        window: Window length in requests.
        sample_interval: Emit one sample every N requests (default:
            ~200 samples over the trace).
        doc_type: Restrict the working set to one document type
            (window positions still advance on every request).
    """
    if window <= 0:
        raise AnalysisError("window must be positive")
    n = len(requests)
    if n == 0:
        return []
    if sample_interval is None:
        sample_interval = max(n // 200, 1)

    refcounts: Dict[str, int] = {}
    sizes: Dict[str, int] = {}
    live_bytes = 0
    recent: deque = deque()
    samples: List[FootprintSample] = []

    for position, request in enumerate(requests):
        eligible = doc_type is None or request.doc_type is doc_type
        if eligible:
            url = request.url
            recent.append((position, url))
            count = refcounts.get(url, 0)
            if count == 0:
                sizes[url] = request.size
                live_bytes += request.size
            refcounts[url] = count + 1
        # Expire references older than the window.
        boundary = position - window
        while recent and recent[0][0] <= boundary:
            _, old_url = recent.popleft()
            remaining = refcounts[old_url] - 1
            if remaining == 0:
                del refcounts[old_url]
                live_bytes -= sizes.pop(old_url)
            else:
                refcounts[old_url] = remaining
        if (position + 1) % sample_interval == 0 or position == n - 1:
            samples.append(FootprintSample(
                request_index=position + 1,
                documents=len(refcounts),
                bytes=live_bytes,
            ))
    return samples


def peak_footprint(requests: Sequence[Request], window: int,
                   doc_type: Optional[DocumentType] = None
                   ) -> FootprintSample:
    """The sample with the largest byte footprint (sizing worst case)."""
    samples = working_set_series(requests, window, doc_type=doc_type)
    if not samples:
        raise AnalysisError("empty trace has no footprint")
    return max(samples, key=lambda s: s.bytes)


def mean_footprint_bytes(requests: Sequence[Request],
                         window: int) -> float:
    """Time-average byte footprint — a principled cache-size floor:
    a cache smaller than this cannot hold even one window's working
    set."""
    samples = working_set_series(requests, window)
    if not samples:
        raise AnalysisError("empty trace has no footprint")
    return sum(s.bytes for s in samples) / len(samples)
