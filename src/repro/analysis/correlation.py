"""Temporal-correlation exponent β (paper Section 2).

"The probability P that a document is requested again after n requests
is proportional to n to the power of β [i.e. n^{-β}], for equally
popular documents.  The parameter β can be determined by plotting the
reference count as a function of references made between two successive
references to the same document for equally popular documents."

:func:`estimate_beta` collects reuse distances (number of requests
between successive references to the same document), restricted to a
*popularity class* — documents with similar total reference counts — so
the estimate is not confounded by popularity, then fits the log-log
slope of the log-binned distance distribution.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.structures.histogram import LogHistogram, least_squares_slope
from repro.types import DocumentType, Request


def reuse_distances(requests: Sequence[Request],
                    doc_type: Optional[DocumentType] = None
                    ) -> Iterator[Tuple[str, int]]:
    """Yield (url, distance) for every repeat reference.

    Distance counts requests of *any* type between the two references,
    as the paper's definition does; ``doc_type`` only restricts which
    documents' repeats are reported.
    """
    last_seen: Dict[str, int] = {}
    for index, request in enumerate(requests):
        url = request.url
        previous = last_seen.get(url)
        if previous is not None and (
                doc_type is None or request.doc_type is doc_type):
            yield url, index - previous
        last_seen[url] = index


def popularity_class(requests: Sequence[Request],
                     doc_type: Optional[DocumentType] = None,
                     min_refs: int = 2, max_refs: int = 50) -> set:
    """URLs whose total reference count lies in [min_refs, max_refs].

    This is the "equally popular documents" conditioning: very hot
    documents are excluded so their popularity-driven short distances
    do not masquerade as temporal correlation.
    """
    counts: Counter = Counter()
    for request in requests:
        if doc_type is None or request.doc_type is doc_type:
            counts[request.url] += 1
    return {url for url, count in counts.items()
            if min_refs <= count <= max_refs}


def beta_from_distances(distances: Iterable[int],
                        min_samples: int = 50,
                        bins_per_decade: int = 6,
                        max_distance: float = 1e8) -> float:
    """Fit β as the negated log-log slope of the distance density."""
    histogram = LogHistogram(max_value=max_distance,
                             bins_per_decade=bins_per_decade)
    for distance in distances:
        histogram.add(max(distance, 1))
    if histogram.total < min_samples:
        raise AnalysisError(
            f"need at least {min_samples} reuse distances, "
            f"got {histogram.total}")
    points = histogram.loglog_points()
    if len(points) < 3:
        raise AnalysisError("too few distinct distance scales to fit beta")
    slope = least_squares_slope(points)
    return -slope


def estimate_beta(requests: Sequence[Request],
                  doc_type: Optional[DocumentType] = None,
                  min_refs: int = 2, max_refs: int = 50,
                  min_samples: int = 50) -> float:
    """β of a request stream (optionally one document type).

    Conditions on the [min_refs, max_refs] popularity class per the
    paper's "equally popular documents" requirement; widen the class if
    an :class:`~repro.errors.AnalysisError` reports too few samples.
    """
    eligible = popularity_class(requests, doc_type, min_refs, max_refs)
    if not eligible:
        raise AnalysisError("popularity class is empty; widen the bounds")
    distances: List[int] = [
        distance for url, distance in reuse_distances(requests, doc_type)
        if url in eligible
    ]
    return beta_from_distances(distances, min_samples=min_samples)
