"""Concentration of references.

Arlitt, Friedrich & Jin — the comparison study the paper builds on —
"observed an extreme non-uniformity in popularity of web requests seen
at caching proxies".  This module quantifies that non-uniformity:

* the **concentration curve** (a Lorenz curve over popularity ranks):
  cumulative share of requests captured by the most popular fraction
  of documents;
* the **Gini coefficient** of the request distribution;
* ``top_share(f)``: the share of requests going to the hottest
  fraction f of documents (the "10 % of documents get 80 % of
  requests" number).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.popularity import popularity_counts
from repro.errors import AnalysisError
from repro.types import DocumentType, Request


def concentration_curve(counts: Iterable[int],
                        points: int = 100) -> List[Tuple[float, float]]:
    """(fraction of documents, fraction of requests) curve.

    Documents are ordered from most to least popular, so the curve is
    concave and lies above the diagonal; a perfectly uniform workload
    gives the diagonal itself.
    """
    ordered = sorted((c for c in counts if c > 0), reverse=True)
    if not ordered:
        raise AnalysisError("no documents with requests")
    total = sum(ordered)
    n = len(ordered)
    curve = [(0.0, 0.0)]
    cumulative = 0
    step = max(n // points, 1)
    for index, count in enumerate(ordered, start=1):
        cumulative += count
        if index % step == 0 or index == n:
            curve.append((index / n, cumulative / total))
    return curve


def top_share(counts: Iterable[int], fraction: float) -> float:
    """Share of requests going to the most popular ``fraction`` of docs."""
    if not 0.0 < fraction <= 1.0:
        raise AnalysisError("fraction must be in (0, 1]")
    ordered = sorted((c for c in counts if c > 0), reverse=True)
    if not ordered:
        raise AnalysisError("no documents with requests")
    take = max(int(len(ordered) * fraction), 1)
    return sum(ordered[:take]) / sum(ordered)


def gini_coefficient(counts: Iterable[int]) -> float:
    """Gini coefficient of the per-document request distribution.

    0 = every document equally popular; → 1 = all requests on one
    document.  Computed exactly from the sorted counts.
    """
    ordered = sorted(c for c in counts if c > 0)
    n = len(ordered)
    if n == 0:
        raise AnalysisError("no documents with requests")
    if n == 1:
        return 0.0
    total = sum(ordered)
    # Gini = (2 * sum(i * x_i) / (n * total)) - (n + 1) / n, 1-based
    # ranks over ascending order.
    weighted = sum(rank * value
                   for rank, value in enumerate(ordered, start=1))
    return 2.0 * weighted / (n * total) - (n + 1.0) / n


def concentration_by_type(requests: Sequence[Request],
                          fraction: float = 0.10
                          ) -> Dict[Optional[DocumentType], Dict[str, float]]:
    """Per-type (and overall, key None) concentration summary.

    Returns ``{type: {"gini": ..., "top_share": ..., "documents": n}}``;
    types with no repeat traffic get NaN-free entries (gini 0).
    """
    summary: Dict[Optional[DocumentType], Dict[str, float]] = {}
    groups: List[Optional[DocumentType]] = [None]
    groups.extend(sorted({r.doc_type for r in requests},
                         key=lambda t: t.value))
    for doc_type in groups:
        counts = popularity_counts(requests, doc_type)
        if not counts:
            continue
        values = list(counts.values())
        summary[doc_type] = {
            "gini": gini_coefficient(values),
            "top_share": top_share(values, fraction),
            "documents": float(len(values)),
        }
    return summary
