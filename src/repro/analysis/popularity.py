"""Popularity index α (paper Section 2).

"The number of requests N to a web document is proportional to its
popularity rank ρ to the power of α ... α can be determined [from] the
slope of the log/log scale plot for the number of references to a web
document as function of its popularity rank."

:func:`estimate_alpha` sorts per-document request counts into rank
order and fits a least-squares line in log-log space.  Rank/count pairs
are aggregated per distinct count before fitting (the standard fix for
the long flat tail of 1-request documents biasing the slope).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional

import numpy as np

from repro.errors import AnalysisError
from repro.types import DocumentType, Request


def popularity_counts(requests: Iterable[Request],
                      doc_type: Optional[DocumentType] = None
                      ) -> Dict[str, int]:
    """Requests per URL, optionally restricted to one document type."""
    counts: Counter = Counter()
    for request in requests:
        if doc_type is None or request.doc_type is doc_type:
            counts[request.url] += 1
    return dict(counts)


def alpha_from_counts(counts: Iterable[int],
                      min_documents: int = 10) -> float:
    """Fit α from per-document request counts.

    Documents are ranked by count; ties are collapsed to their mean
    rank, so the massive tail of equal counts contributes one point
    with its proper rank rather than thousands of degenerate ones.
    """
    ordered = sorted((c for c in counts if c > 0), reverse=True)
    if len(ordered) < min_documents:
        raise AnalysisError(
            f"need at least {min_documents} documents to fit alpha, "
            f"got {len(ordered)}")
    # Collapse runs of equal counts to (mean rank, count).
    points = []
    start = 0
    n = len(ordered)
    while start < n:
        end = start
        while end < n and ordered[end] == ordered[start]:
            end += 1
        mean_rank = (start + 1 + end) / 2.0  # ranks are 1-based
        points.append((mean_rank, ordered[start]))
        start = end
    if len(points) < 2:
        raise AnalysisError("all documents equally popular; alpha undefined")
    ranks = np.array([p[0] for p in points], dtype=np.float64)
    values = np.array([p[1] for p in points], dtype=np.float64)
    slope = np.polyfit(np.log10(ranks), np.log10(values), 1)[0]
    return -float(slope)


def estimate_alpha(requests: Iterable[Request],
                   doc_type: Optional[DocumentType] = None,
                   min_documents: int = 10) -> float:
    """α of a request stream (optionally one document type)."""
    counts = popularity_counts(requests, doc_type)
    return alpha_from_counts(counts.values(), min_documents=min_documents)


def alpha_mle(counts: Iterable[int], min_documents: int = 10,
              alpha_bounds: tuple = (1e-3, 5.0),
              tolerance: float = 1e-6) -> float:
    """Maximum-likelihood α under the Zipf rank model.

    Models the observed per-document counts as a multinomial over
    ranks with p_r ∝ r^{-α}.  The log-likelihood derivative in α,

        S(α) = -Σ_r N_r ln r + N · (Σ_r r^{-α} ln r / Σ_r r^{-α}),

    is strictly decreasing, so the MLE is the unique root, found by
    bisection.  Statistically efficient where the regression fit is
    merely consistent, and free of binning/tie artifacts.
    """
    ordered = sorted((c for c in counts if c > 0), reverse=True)
    if len(ordered) < min_documents:
        raise AnalysisError(
            f"need at least {min_documents} documents, got "
            f"{len(ordered)}")
    observed = np.asarray(ordered, dtype=np.float64)
    ranks = np.arange(1, len(ordered) + 1, dtype=np.float64)
    log_ranks = np.log(ranks)
    total = observed.sum()
    data_term = float((observed * log_ranks).sum())

    def score(alpha: float) -> float:
        weights = ranks ** (-alpha)
        partition = weights.sum()
        return -data_term + total * float(
            (weights * log_ranks).sum()) / partition

    lo, hi = alpha_bounds
    score_lo, score_hi = score(lo), score(hi)
    if score_lo <= 0:
        # Even the flattest admissible alpha over-weights the head:
        # the data are (near-)uniform.
        raise AnalysisError("counts too uniform; alpha at lower bound")
    if score_hi >= 0:
        raise AnalysisError("counts too concentrated; alpha exceeds "
                            f"{hi}")
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if score(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
