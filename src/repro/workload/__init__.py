"""Synthetic workload generation.

Substitutes for the paper's proprietary DFN and RTP proxy traces: a
generator producing per-document-type request streams whose controllable
statistics are exactly the ones the paper shows drive the results —

* Zipf-like document popularity with per-type index α
  (:mod:`~repro.workload.zipf`);
* power-law reuse-distance gaps with per-type temporal-correlation
  exponent β (:mod:`~repro.workload.temporal`);
* heavy-tailed per-type document sizes
  (:mod:`~repro.workload.sizes`);
* document modifications and interrupted transfers
  (:mod:`~repro.workload.modifications`).

:func:`~repro.workload.profiles.dfn_like` and
:func:`~repro.workload.profiles.rtp_like` return calibrated profiles;
:class:`~repro.workload.generator.SyntheticTraceGenerator` turns a
profile into a :class:`~repro.types.Trace`.
"""

from repro.workload.zipf import ZipfSampler, zipf_counts
from repro.workload.temporal import PowerLawGapSampler
from repro.workload.sizes import LognormalSizeModel, BoundedParetoSizeModel, MixtureSizeModel
from repro.workload.profiles import (
    TypeProfile,
    WorkloadProfile,
    dfn_like,
    future_like,
    rtp_like,
    uniform_profile,
)
from repro.workload.modifications import ChangeInjector
from repro.workload.fitting import (
    FitDiagnostics,
    TypeFitDiagnostics,
    fidelity_report,
    fit_profile,
)
from repro.workload.generator import SyntheticTraceGenerator, generate_trace

__all__ = [
    "ZipfSampler",
    "zipf_counts",
    "PowerLawGapSampler",
    "LognormalSizeModel",
    "BoundedParetoSizeModel",
    "MixtureSizeModel",
    "TypeProfile",
    "WorkloadProfile",
    "dfn_like",
    "future_like",
    "rtp_like",
    "uniform_profile",
    "ChangeInjector",
    "fit_profile",
    "fidelity_report",
    "FitDiagnostics",
    "TypeFitDiagnostics",
    "SyntheticTraceGenerator",
    "generate_trace",
]
