"""Synthetic trace assembly.

For each document type the generator:

1. splits the profile's document and request budgets by the type shares;
2. assigns per-document request counts with Zipf(α) popularity
   (:func:`~repro.workload.zipf.zipf_counts`);
3. draws each document's size from the type's size model;
4. places each document's references on a circular timeline with
   power-law(β) reuse gaps
   (:func:`~repro.workload.temporal.place_references`).

All types share one global timeline, so the interleaved stream has the
per-type mixes of the profile.  A final pass injects document
modifications and interrupted transfers
(:class:`~repro.workload.modifications.ChangeInjector`), then timestamps
are assigned uniformly over the profile's duration.

Determinism: the same profile and seed always produce the identical
trace (the generator derives all randomness from ``profile.seed``).
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Tuple

from repro.errors import ConfigurationError
from repro.types import DocumentType, Request, Trace
from repro.workload.modifications import ChangeInjector
from repro.workload.profiles import TypeProfile, WorkloadProfile
from repro.workload.temporal import (
    PowerLawGapSampler,
    place_references,
    place_references_irm,
)
from repro.workload.zipf import zipf_counts

#: Short URL prefixes per type, so synthetic URLs stay classifiable.
_URL_PREFIX = {
    DocumentType.IMAGE: "http://syn/img/{}.gif",
    DocumentType.HTML: "http://syn/html/{}.html",
    DocumentType.MULTIMEDIA: "http://syn/mm/{}.mpg",
    DocumentType.APPLICATION: "http://syn/app/{}.pdf",
    DocumentType.OTHER: "http://syn/other/{}.dat",
}

_CONTENT_TYPE = {
    DocumentType.IMAGE: "image/gif",
    DocumentType.HTML: "text/html",
    DocumentType.MULTIMEDIA: "video/mpeg",
    DocumentType.APPLICATION: "application/pdf",
    DocumentType.OTHER: None,
}


def _allocate(total: int, shares: Dict[DocumentType, float],
              minimum: int = 0) -> Dict[DocumentType, int]:
    """Integer allocation of ``total`` by shares (largest-remainder)."""
    raw = {t: total * share for t, share in shares.items()}
    counts = {t: max(int(v), minimum if shares[t] > 0 else 0)
              for t, v in raw.items()}
    assigned = sum(counts.values())
    remainders = sorted(raw, key=lambda t: raw[t] - int(raw[t]), reverse=True)
    idx = 0
    while assigned < total:
        counts[remainders[idx % len(remainders)]] += 1
        assigned += 1
        idx += 1
    while assigned > total:
        victim = max(counts, key=lambda t: counts[t])
        if counts[victim] <= minimum:
            break
        counts[victim] -= 1
        assigned -= 1
    return counts


class SyntheticTraceGenerator:
    """Builds a :class:`~repro.types.Trace` from a workload profile.

    ``temporal_model`` selects how each document's references are laid
    out in time: ``"gaps"`` (default) uses power-law(β) reuse gaps;
    ``"irm"`` places references independently and uniformly (the
    Independent Reference Model), keeping popularity and sizes
    identical — the ablation arm for temporal-correlation effects.
    """

    def __init__(self, profile: WorkloadProfile,
                 temporal_model: str = "gaps"):
        profile.validate()
        if temporal_model not in ("gaps", "irm"):
            raise ConfigurationError(
                f"unknown temporal model: {temporal_model!r}")
        self.profile = profile
        self.temporal_model = temporal_model

    def generate(self) -> Trace:
        """Produce the full trace (deterministic for a given profile)."""
        profile = self.profile
        rng = random.Random(profile.seed)
        doc_budget = _allocate(
            profile.n_documents,
            {t: p.doc_share for t, p in profile.types.items()},
            minimum=1)
        request_budget = _allocate(
            profile.n_requests,
            {t: p.request_share for t, p in profile.types.items()},
            minimum=0)

        events: List[Tuple[float, str, int, DocumentType]] = []
        horizon = float(profile.n_requests)
        for doc_type, type_profile in sorted(
                profile.types.items(), key=lambda item: item[0].value):
            n_docs = doc_budget[doc_type]
            n_requests = request_budget[doc_type]
            if n_docs == 0 or n_requests == 0:
                continue
            if n_requests < n_docs:
                # Request budget cannot cover one request per document;
                # shrink the document population instead of failing.
                n_docs = n_requests
            events.extend(self._layout_type(
                doc_type, type_profile, n_docs, n_requests, horizon, rng))

        events.sort(key=lambda e: e[0])
        requests = self._materialize(events)
        injector = ChangeInjector(self.profile)
        final = list(injector.process(requests))
        trace = Trace(final, name=profile.name)
        trace.modifications_injected = injector.modifications
        trace.interruptions_injected = injector.interruptions
        return trace

    def _layout_type(self, doc_type: DocumentType,
                     type_profile: TypeProfile, n_docs: int,
                     n_requests: int, horizon: float,
                     rng: random.Random) -> Iterator[
                         Tuple[float, str, int, DocumentType]]:
        counts = zipf_counts(n_docs, type_profile.alpha, n_requests)
        gap_sampler = PowerLawGapSampler(
            beta=type_profile.beta,
            max_gap=max(int(horizon), 1),
            seed=rng.randrange(1 << 30))
        url_template = _URL_PREFIX[doc_type]
        use_irm = self.temporal_model == "irm"
        for rank, n_refs in enumerate(counts, start=1):
            url = url_template.format(rank)
            size = type_profile.size_model.sample(rng)
            if use_irm:
                positions = place_references_irm(n_refs, horizon, rng)
            else:
                positions = place_references(n_refs, horizon,
                                             gap_sampler, rng)
            for position in positions:
                yield (position, url, size, doc_type)

    def _materialize(self, events) -> Iterator[Request]:
        profile = self.profile
        n = len(events)
        if n == 0:
            return
        time_step = profile.duration_seconds / max(n, 1)
        for index, (_, url, size, doc_type) in enumerate(events):
            yield Request(
                timestamp=index * time_step,
                url=url,
                size=size,
                transfer_size=size,
                doc_type=doc_type,
                status=200,
                content_type=_CONTENT_TYPE[doc_type],
            )


def generate_trace(profile: WorkloadProfile,
                   temporal_model: str = "gaps") -> Trace:
    """Convenience wrapper: generate the trace for a profile."""
    return SyntheticTraceGenerator(profile, temporal_model).generate()
