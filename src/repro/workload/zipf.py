"""Zipf-like popularity (the paper's α parameter).

The paper characterizes document popularity by the index α of the
relation N ∝ ρ^{-α} between a document's request count N and its
popularity rank ρ.  Two tools live here:

* :func:`zipf_counts` deterministically assigns per-rank request counts
  that realize a target α and total request volume (used by the trace
  generator, which then *places* those requests in time);
* :class:`ZipfSampler` draws i.i.d. ranks from the Zipf distribution
  (used by tests and by the independent-reference-model ablation).
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence

import numpy as np


def zipf_weights(n_docs: int, alpha: float) -> np.ndarray:
    """Unnormalized Zipf weights rank^(-alpha) for ranks 1..n_docs."""
    if n_docs <= 0:
        raise ValueError("n_docs must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, n_docs + 1, dtype=np.float64)
    return ranks ** (-alpha)


def zipf_counts(n_docs: int, alpha: float, total_requests: int) -> List[int]:
    """Per-rank request counts realizing Zipf(α) popularity.

    Counts are proportional to rank^{-α}, scaled so they sum to exactly
    ``total_requests``, with every document requested at least once.
    Requires ``total_requests >= n_docs``.

    The rounding residue is distributed to the most popular ranks, which
    keeps the log-log slope intact where the fit happens (the head).
    """
    if total_requests < n_docs:
        raise ValueError(
            f"total_requests ({total_requests}) must be >= n_docs ({n_docs}) "
            "so every document gets at least one request")
    weights = zipf_weights(n_docs, alpha)
    # Every document gets one baseline request; the remaining budget is
    # split by weight with largest-remainder rounding, which is exact and
    # never disturbs the head of the distribution.
    extra_budget = total_requests - n_docs
    shares = weights * (extra_budget / float(weights.sum()))
    extras = np.floor(shares).astype(np.int64)
    residue = extra_budget - int(extras.sum())
    if residue > 0:
        remainders = shares - extras
        top = np.argpartition(remainders, -residue)[-residue:]
        extras[top] += 1
    counts = (extras + 1).tolist()
    # Largest-remainder bumps can locally invert neighbours by one; the
    # callers expect rank order, so sort descending (cheap, already
    # nearly sorted).
    counts.sort(reverse=True)
    return counts


class ZipfSampler:
    """Draws ranks 1..n with probability proportional to rank^{-alpha}."""

    def __init__(self, n_docs: int, alpha: float,
                 seed: Optional[int] = None):
        weights = zipf_weights(n_docs, alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf: Sequence[float] = cdf.tolist()
        self.n_docs = n_docs
        self.alpha = alpha
        self._rng = random.Random(seed)

    def sample(self) -> int:
        """One rank in [1, n_docs]."""
        return bisect.bisect_left(self._cdf, self._rng.random()) + 1

    def sample_many(self, count: int) -> List[int]:
        cdf = np.asarray(self._cdf)
        draws = np.array([self._rng.random() for _ in range(count)])
        return (np.searchsorted(cdf, draws, side="left") + 1).tolist()


def fit_alpha(counts: Sequence[int], head_fraction: float = 1.0) -> float:
    """Least-squares α from per-document request counts.

    Sorts the counts into rank order and fits log(count) against
    log(rank); returns the negated slope.  ``head_fraction`` restricts
    the fit to the most popular fraction of documents, mirroring the
    common practice of fitting where the Zipf relation is linear.
    """
    ordered = sorted((c for c in counts if c > 0), reverse=True)
    if len(ordered) < 2:
        raise ValueError("need at least two documents to fit alpha")
    take = max(2, int(len(ordered) * head_fraction))
    ranks = np.arange(1, take + 1, dtype=np.float64)
    values = np.asarray(ordered[:take], dtype=np.float64)
    slope = np.polyfit(np.log10(ranks), np.log10(values), 1)[0]
    return -float(slope)
