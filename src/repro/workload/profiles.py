"""Calibrated workload profiles.

:func:`dfn_like` and :func:`rtp_like` encode the per-type statistics the
paper reports for its two traces (Tables 1-5 and the prose of Sections 2
and 4.4), scaled down by default so experiments run on a laptop.  Where a
table cell is unrecoverable from the OCR'd paper, the value is calibrated
from the prose; see EXPERIMENTS.md for the full provenance table.

The structurally important contrasts the profiles preserve:

* DFN: images+HTML ≈ 95 % of documents and requests; multimedia is rare
  (0.23 % of documents, 0.14 % of requests) but byte-heavy; application
  documents carry 34.8 % of requested bytes with a tiny median size.
* RTP: more multimedia (0.41 % of documents, 0.33 % of requests), many
  more HTML requests (44.2 % vs 21.2 %), smaller image/application byte
  shares (19.7 % / 21.9 %), *flatter* popularity (smaller α) and
  *stronger* per-type temporal correlation (larger β) for HTML,
  multimedia, and application documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.types import DOCUMENT_TYPES, DocumentType
from repro.workload.sizes import (
    BoundedParetoSizeModel,
    LognormalSizeModel,
    MixtureSizeModel,
    SizeModel,
)

KB = 1024


@dataclass
class TypeProfile:
    """Generation parameters for one document type.

    Attributes:
        doc_share: Fraction of distinct documents of this type.
        request_share: Fraction of requests going to this type.
        alpha: Popularity index (Zipf slope) within the type.
        beta: Temporal-correlation exponent within the type.
        size_model: Distribution of full document sizes.
        modification_rate: Per-request probability that the document was
            modified since its previous request (size delta < 5 %).
        interruption_rate: Per-request probability the client aborts the
            transfer (transfer size well below document size).
    """

    doc_share: float
    request_share: float
    alpha: float
    beta: float
    size_model: SizeModel
    modification_rate: float = 0.0
    interruption_rate: float = 0.0

    def validate(self) -> None:
        for name in ("doc_share", "request_share"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if self.beta < 0:
            raise ConfigurationError("beta must be non-negative")
        for name in ("modification_rate", "interruption_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1)")


@dataclass
class WorkloadProfile:
    """Complete recipe for one synthetic trace.

    ``fit_diagnostics`` is populated by
    :func:`repro.workload.fitting.fit_profile` (a
    :class:`~repro.workload.fitting.FitDiagnostics`): per-type sample
    counts, the estimator that produced each parameter, and clamp
    flags.  ``None`` for hand-written profiles.
    """

    name: str
    n_requests: int
    n_documents: int
    types: Dict[DocumentType, TypeProfile] = field(default_factory=dict)
    duration_seconds: float = 7 * 24 * 3600.0
    seed: int = 42
    fit_diagnostics: Optional[object] = field(
        default=None, repr=False, compare=False)

    def validate(self) -> None:
        if self.n_requests <= 0 or self.n_documents <= 0:
            raise ConfigurationError("request and document counts must be "
                                     "positive")
        if self.n_requests < self.n_documents:
            raise ConfigurationError(
                "n_requests must be >= n_documents (every document is "
                "requested at least once)")
        if not self.types:
            raise ConfigurationError("profile defines no document types")
        doc_total = sum(t.doc_share for t in self.types.values())
        req_total = sum(t.request_share for t in self.types.values())
        if abs(doc_total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"doc_share values sum to {doc_total}, expected 1")
        if abs(req_total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"request_share values sum to {req_total}, expected 1")
        for type_profile in self.types.values():
            type_profile.validate()

    def scaled(self, factor: float, name: Optional[str] = None) -> "WorkloadProfile":
        """A copy with request/document counts multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return WorkloadProfile(
            name=name or f"{self.name}-x{factor:g}",
            n_requests=max(int(self.n_requests * factor), 1),
            n_documents=max(int(self.n_documents * factor), 1),
            types=dict(self.types),
            duration_seconds=self.duration_seconds,
            seed=self.seed,
            # Per-type parameters are scale-free, so their provenance
            # survives scaling unchanged.
            fit_diagnostics=self.fit_diagnostics,
        )


def _app_size_model(median: float, sigma: float) -> SizeModel:
    """Application sizes: small-median lognormal body + Pareto tail.

    The tail reproduces the paper's observation that application
    documents have very small medians but very large means (archives and
    ISO images among tiny .ps/.pdf files).
    """
    body = LognormalSizeModel(median_bytes=median, sigma=sigma)
    tail = BoundedParetoSizeModel(shape=1.1, min_bytes=256 * KB,
                                  max_bytes=512 * 1024 * KB)
    return MixtureSizeModel(body=body, tail=tail, tail_prob=0.03)


# Reference scale of the real traces, used by ``scale=`` arguments:
# DFN had 6,718,201 requests over 2,987,565 documents; RTP 4,144,900 over
# 2,227,339.  Default profiles are 1/64 of that (≈105k / 65k requests).
DFN_FULL_REQUESTS = 6_718_201
DFN_FULL_DOCUMENTS = 2_987_565
RTP_FULL_REQUESTS = 4_144_900
RTP_FULL_DOCUMENTS = 2_227_339
DEFAULT_SCALE = 1.0 / 64.0


def dfn_like(scale: float = DEFAULT_SCALE, seed: int = 42) -> WorkloadProfile:
    """DFN-trace-like profile (German research network, July 2001).

    ``scale`` multiplies the real trace's request/document counts; the
    per-type mix, sizes, α and β are scale-free.
    """
    types = {
        DocumentType.IMAGE: TypeProfile(
            doc_share=0.650, request_share=0.700,
            alpha=0.90, beta=0.15,
            size_model=LognormalSizeModel(median_bytes=3.5 * KB, sigma=1.05),
            modification_rate=0.005, interruption_rate=0.01),
        DocumentType.HTML: TypeProfile(
            doc_share=0.280, request_share=0.212,
            alpha=0.75, beta=0.35,
            size_model=LognormalSizeModel(median_bytes=5.0 * KB, sigma=1.15),
            modification_rate=0.02, interruption_rate=0.01),
        DocumentType.MULTIMEDIA: TypeProfile(
            doc_share=0.0023, request_share=0.0014,
            alpha=0.55, beta=0.65,
            size_model=LognormalSizeModel(median_bytes=750 * KB, sigma=1.46),
            modification_rate=0.001, interruption_rate=0.25),
        DocumentType.APPLICATION: TypeProfile(
            doc_share=0.0250, request_share=0.0260,
            alpha=0.60, beta=0.60,
            size_model=_app_size_model(median=20 * KB, sigma=2.05),
            modification_rate=0.002, interruption_rate=0.20),
        DocumentType.OTHER: TypeProfile(
            doc_share=0.0427, request_share=0.0606,
            alpha=0.70, beta=0.30,
            size_model=LognormalSizeModel(median_bytes=8.0 * KB, sigma=1.20),
            modification_rate=0.01, interruption_rate=0.02),
    }
    profile = WorkloadProfile(
        name="dfn-like",
        n_requests=max(int(DFN_FULL_REQUESTS * scale), 1),
        n_documents=max(int(DFN_FULL_DOCUMENTS * scale), 1),
        types=types,
        seed=seed,
    )
    profile.validate()
    return profile


def rtp_like(scale: float = DEFAULT_SCALE, seed: int = 43) -> WorkloadProfile:
    """RTP-trace-like profile (NLANR Research Triangle Park, Feb 2001).

    Relative to DFN: more multimedia documents and requests, far more
    HTML requests, flatter popularity (smaller α everywhere) and
    stronger temporal correlation (larger β) for HTML, multimedia, and
    application documents — the characteristics the paper blames for
    GD*'s shrinking advantage.
    """
    types = {
        DocumentType.IMAGE: TypeProfile(
            doc_share=0.550, request_share=0.4702,
            alpha=0.75, beta=0.20,
            size_model=LognormalSizeModel(median_bytes=5.0 * KB, sigma=1.05),
            modification_rate=0.005, interruption_rate=0.01),
        DocumentType.HTML: TypeProfile(
            doc_share=0.400, request_share=0.442,
            alpha=0.65, beta=0.55,
            size_model=LognormalSizeModel(median_bytes=4.5 * KB, sigma=1.25),
            modification_rate=0.02, interruption_rate=0.01),
        DocumentType.MULTIMEDIA: TypeProfile(
            doc_share=0.0041, request_share=0.0033,
            alpha=0.45, beta=0.80,
            size_model=LognormalSizeModel(median_bytes=450 * KB, sigma=1.50),
            modification_rate=0.001, interruption_rate=0.30),
        DocumentType.APPLICATION: TypeProfile(
            doc_share=0.0150, request_share=0.0300,
            alpha=0.50, beta=0.75,
            size_model=_app_size_model(median=15 * KB, sigma=1.95),
            modification_rate=0.002, interruption_rate=0.22),
        DocumentType.OTHER: TypeProfile(
            doc_share=0.0309, request_share=0.0545,
            alpha=0.60, beta=0.40,
            size_model=LognormalSizeModel(median_bytes=7.0 * KB, sigma=1.15),
            modification_rate=0.01, interruption_rate=0.02),
    }
    profile = WorkloadProfile(
        name="rtp-like",
        n_requests=max(int(RTP_FULL_REQUESTS * scale), 1),
        n_documents=max(int(RTP_FULL_DOCUMENTS * scale), 1),
        types=types,
        seed=seed,
    )
    profile.validate()
    return profile


def future_like(scale: float = DEFAULT_SCALE, seed: int = 44
                ) -> WorkloadProfile:
    """The workload the paper *predicts* (introduction, 2002).

    "Due to the rapidly increasing popularity of digital audio (i.e.,
    MP3) and video (i.e., MPEG) documents and the sustained growth of
    application documents ... we conjecture that in future workloads
    the percentage of requests to such documents will be substantially
    larger."

    This profile realizes the conjecture against the DFN baseline:
    multimedia requests 35× (0.14 % → 5 %), application 4× (2.6 % →
    10 %), documents scaled accordingly, with DFN-like locality
    parameters otherwise.  The `future-workload` experiment asks the
    question the paper poses implicitly: do its recommendations
    survive its own prediction?
    """
    types = {
        DocumentType.IMAGE: TypeProfile(
            doc_share=0.560, request_share=0.590,
            alpha=0.90, beta=0.15,
            size_model=LognormalSizeModel(median_bytes=3.5 * KB, sigma=1.05),
            modification_rate=0.005, interruption_rate=0.01),
        DocumentType.HTML: TypeProfile(
            doc_share=0.300, request_share=0.220,
            alpha=0.75, beta=0.35,
            size_model=LognormalSizeModel(median_bytes=5.0 * KB, sigma=1.15),
            modification_rate=0.02, interruption_rate=0.01),
        DocumentType.MULTIMEDIA: TypeProfile(
            doc_share=0.040, request_share=0.050,
            alpha=0.65, beta=0.70,
            size_model=LognormalSizeModel(median_bytes=750 * KB, sigma=1.46),
            modification_rate=0.001, interruption_rate=0.25),
        DocumentType.APPLICATION: TypeProfile(
            doc_share=0.060, request_share=0.100,
            alpha=0.65, beta=0.60,
            size_model=_app_size_model(median=20 * KB, sigma=2.05),
            modification_rate=0.002, interruption_rate=0.20),
        DocumentType.OTHER: TypeProfile(
            doc_share=0.040, request_share=0.040,
            alpha=0.70, beta=0.30,
            size_model=LognormalSizeModel(median_bytes=8.0 * KB, sigma=1.20),
            modification_rate=0.01, interruption_rate=0.02),
    }
    profile = WorkloadProfile(
        name="future-like",
        n_requests=max(int(DFN_FULL_REQUESTS * scale), 1),
        n_documents=max(int(DFN_FULL_DOCUMENTS * scale), 1),
        types=types,
        seed=seed,
    )
    profile.validate()
    return profile


def uniform_profile(n_requests: int = 10_000, n_documents: int = 2_000,
                    alpha: float = 0.8, beta: float = 0.4,
                    median_bytes: float = 8 * KB, sigma: float = 1.0,
                    seed: int = 7) -> WorkloadProfile:
    """A single-knob profile with all five types equally likely.

    Useful for tests and for isolating the effect of one parameter.
    """
    share = 1.0 / len(DOCUMENT_TYPES)
    types = {
        doc_type: TypeProfile(
            doc_share=share, request_share=share,
            alpha=alpha, beta=beta,
            size_model=LognormalSizeModel(median_bytes=median_bytes,
                                          sigma=sigma))
        for doc_type in DOCUMENT_TYPES
    }
    profile = WorkloadProfile(
        name="uniform", n_requests=n_requests, n_documents=n_documents,
        types=types, seed=seed)
    profile.validate()
    return profile


def profile_by_name(name: str, scale: float = DEFAULT_SCALE,
                    seed: Optional[int] = None) -> WorkloadProfile:
    """Look up a named profile ("dfn" or "rtp", with -like suffix ok)."""
    key = name.lower().replace("-like", "")
    builders: Mapping[str, object] = {"dfn": dfn_like, "rtp": rtp_like,
                                      "future": future_like}
    if key not in builders:
        raise ConfigurationError(f"unknown profile name: {name!r}")
    builder = builders[key]
    if seed is None:
        return builder(scale=scale)  # type: ignore[operator]
    return builder(scale=scale, seed=seed)  # type: ignore[operator]
