"""Fit a workload profile from an observed trace.

The inverse of the generator: given any request stream (a parsed Squid
log, or another synthetic trace), estimate everything a
:class:`~repro.workload.profiles.WorkloadProfile` needs —

* per-type document and request shares,
* per-type popularity index α (MLE, regression fallback),
* per-type temporal-correlation exponent β,
* per-type lognormal size parameters (median + log-space σ),
* per-type modification and interruption rates,

so that ``generate_trace(fit_profile(trace))`` produces a *synthetic
twin*: a shareable, arbitrarily scalable workload with the same
statistics as a log that may itself be confidential.  This is exactly
the substitution argument DESIGN.md makes for the DFN/RTP traces,
packaged as a reusable tool.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.analysis.correlation import estimate_beta
from repro.analysis.popularity import (
    alpha_from_counts,
    alpha_mle,
    popularity_counts,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.types import DOCUMENT_TYPES, DocumentType, Trace
from repro.workload.profiles import TypeProfile, WorkloadProfile
from repro.workload.sizes import LognormalSizeModel

#: Fallbacks for types too thin to estimate.
DEFAULT_ALPHA = 0.7
DEFAULT_BETA = 0.4
#: Clamp bounds keeping fitted parameters generatable.
ALPHA_BOUNDS = (0.05, 2.0)
BETA_BOUNDS = (0.05, 1.0)
SIGMA_BOUNDS = (0.05, 3.0)


def _clamp(value: float, bounds: tuple) -> float:
    return min(max(value, bounds[0]), bounds[1])


def _fit_alpha(trace: Trace, doc_type: DocumentType) -> float:
    counts = list(popularity_counts(trace, doc_type).values())
    try:
        return _clamp(alpha_mle(counts), ALPHA_BOUNDS)
    except AnalysisError:
        pass
    try:
        return _clamp(alpha_from_counts(counts), ALPHA_BOUNDS)
    except AnalysisError:
        return DEFAULT_ALPHA


def _fit_beta(trace: Trace, doc_type: DocumentType) -> float:
    try:
        return _clamp(estimate_beta(trace.requests, doc_type,
                                    max_refs=100, min_samples=25),
                      BETA_BOUNDS)
    except AnalysisError:
        return DEFAULT_BETA


def _fit_size_model(sizes: np.ndarray) -> LognormalSizeModel:
    median = float(np.median(sizes))
    if median < 1:
        median = 1.0
    logs = np.log(np.maximum(sizes, 1.0))
    sigma = _clamp(float(logs.std()), SIGMA_BOUNDS)
    return LognormalSizeModel(median_bytes=median, sigma=sigma)


def fit_profile(trace: Trace, name: Optional[str] = None,
                seed: int = 42) -> WorkloadProfile:
    """Estimate a generator profile from a trace.

    Types absent from the trace get a vanishing-but-positive share so
    the profile validates; scale the result with
    :meth:`~repro.workload.profiles.WorkloadProfile.scaled` before
    generating if a different volume is wanted.
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot fit a profile to an empty trace")

    # Per-type populations.
    doc_sizes: Dict[DocumentType, Dict[str, int]] = {
        t: {} for t in DOCUMENT_TYPES}
    request_counts = {t: 0 for t in DOCUMENT_TYPES}
    repeats = {t: 0 for t in DOCUMENT_TYPES}
    modifications = {t: 0 for t in DOCUMENT_TYPES}
    interruptions = {t: 0 for t in DOCUMENT_TYPES}
    for request in trace:
        sizes = doc_sizes[request.doc_type]
        previous = sizes.get(request.url)
        if previous is not None:
            repeats[request.doc_type] += 1
            if previous != request.size:
                modifications[request.doc_type] += 1
        sizes[request.url] = request.size
        request_counts[request.doc_type] += 1
        if request.transfer_size < request.size:
            interruptions[request.doc_type] += 1

    total_docs = sum(len(sizes) for sizes in doc_sizes.values())
    total_requests = sum(request_counts.values())

    types: Dict[DocumentType, TypeProfile] = {}
    # Reserve a sliver of share for empty types so validation holds.
    epsilon = 1e-6
    present = [t for t in DOCUMENT_TYPES if request_counts[t] > 0]
    missing = [t for t in DOCUMENT_TYPES if request_counts[t] == 0]
    reserved = epsilon * len(missing)

    for doc_type in DOCUMENT_TYPES:
        n_docs = len(doc_sizes[doc_type])
        n_requests = request_counts[doc_type]
        if n_requests == 0:
            types[doc_type] = TypeProfile(
                doc_share=epsilon, request_share=epsilon,
                alpha=DEFAULT_ALPHA, beta=DEFAULT_BETA,
                size_model=LognormalSizeModel(median_bytes=8192,
                                              sigma=1.0))
            continue
        sizes = np.asarray(list(doc_sizes[doc_type].values()),
                           dtype=np.float64)
        repeat_count = max(repeats[doc_type], 1)
        types[doc_type] = TypeProfile(
            doc_share=(n_docs / total_docs) * (1.0 - reserved),
            request_share=(n_requests / total_requests) * (1.0 - reserved),
            alpha=_fit_alpha(trace, doc_type),
            beta=_fit_beta(trace, doc_type),
            size_model=_fit_size_model(sizes),
            modification_rate=min(
                modifications[doc_type] / repeat_count, 0.5),
            interruption_rate=min(
                interruptions[doc_type] / n_requests, 0.9),
        )

    # Normalize shares to exactly 1 (guard float drift).
    doc_total = sum(t.doc_share for t in types.values())
    req_total = sum(t.request_share for t in types.values())
    for type_profile in types.values():
        type_profile.doc_share /= doc_total
        type_profile.request_share /= req_total

    profile = WorkloadProfile(
        name=name or f"{trace.name}-fitted",
        n_requests=max(total_requests, total_docs),
        n_documents=total_docs,
        types=types,
        seed=seed,
    )
    profile.validate()
    return profile


def fidelity_report(original: Trace, twin: Trace) -> Dict[str, float]:
    """Quantify how closely a synthetic twin matches its original.

    Returns maximum absolute per-type deviations (in percentage
    points) for each Table-2 metric, plus the request-volume ratio —
    small numbers mean a faithful twin.
    """
    from repro.analysis.characterize import type_breakdown

    a = type_breakdown(original)
    b = type_breakdown(twin)

    def max_dev(metric_a, metric_b):
        return max(abs(metric_a[t] - metric_b[t])
                   for t in DOCUMENT_TYPES)

    return {
        "distinct_documents_max_dev": max_dev(a.distinct_documents,
                                              b.distinct_documents),
        "total_requests_max_dev": max_dev(a.total_requests,
                                          b.total_requests),
        "requested_data_max_dev": max_dev(a.requested_data,
                                          b.requested_data),
        "request_volume_ratio": (len(twin) / len(original)
                                 if len(original) else math.nan),
    }
